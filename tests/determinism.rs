//! Reproducibility: every algorithm in the workspace is deterministic —
//! identical runs produce identical traces, so every number in
//! `EXPERIMENTS.md` is exactly regenerable.

use bfdn::{Bfdn, BfdnL, WriteReadBfdn};
use bfdn_baselines::Cte;
use bfdn_sim::{Explorer, Simulator, Trace};
use bfdn_trees::{generators, Tree};
use rand::SeedableRng;

fn trace_of(tree: &Tree, k: usize, explorer: &mut dyn Explorer) -> Trace {
    let mut sim = Simulator::new(tree, k).record_trace();
    sim.run(explorer).unwrap().trace.unwrap()
}

#[test]
fn identical_runs_produce_identical_traces() {
    type Factory = fn(usize) -> Box<dyn Explorer>;
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    let tree = generators::uniform_labeled(500, &mut rng);
    let k = 8;
    let factories: Vec<(&str, Factory)> = vec![
        ("bfdn", |k| Box::new(Bfdn::new(k))),
        ("write-read", |k| Box::new(WriteReadBfdn::new(k))),
        ("bfdn-l2", |k| Box::new(BfdnL::new(k, 2))),
        ("cte", |k| Box::new(Cte::new(k))),
    ];
    for (name, make) in factories {
        let a = trace_of(&tree, k, make(k).as_mut());
        let b = trace_of(&tree, k, make(k).as_mut());
        assert_eq!(a, b, "{name} is not deterministic");
    }
}

#[test]
fn seeded_generators_are_reproducible() {
    for seed in [0u64, 7, 99] {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(seed);
        let t1 = generators::uniform_labeled(400, &mut r1);
        let t2 = generators::uniform_labeled(400, &mut r2);
        for v in t1.node_ids() {
            assert_eq!(t1.parent(v), t2.parent(v));
        }
    }
}

#[test]
fn seeded_random_reanchor_rule_is_reproducible() {
    use bfdn::ReanchorRule;
    let tree = generators::comb(12, 3);
    let k = 5;
    let mut a1 = Bfdn::builder(k)
        .reanchor_rule(ReanchorRule::Random(42))
        .build();
    let mut a2 = Bfdn::builder(k)
        .reanchor_rule(ReanchorRule::Random(42))
        .build();
    let t1 = trace_of(&tree, k, &mut a1);
    let t2 = trace_of(&tree, k, &mut a2);
    assert_eq!(t1, t2);
}
