//! Proposition 7 end-to-end: adversarial break-down schedules never stop
//! the robust BFDN variant, and the allowed-move budget it consumes
//! respects the bound.

use bfdn::{proposition7_bound, Bfdn};
use bfdn_sim::{
    BurstStall, MoveSchedule, RandomStall, RoundRobinStall, Simulator, StopCondition, TargetedStall,
};
use bfdn_trees::generators::Family;
use bfdn_trees::NodeId;
use proptest::prelude::*;
use rand::SeedableRng;

#[test]
fn all_schedules_on_all_families() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let k = 8;
    for fam in Family::ALL {
        let tree = fam.instance(300, &mut rng);
        let depths: Vec<usize> = tree.node_ids().map(|v| tree.node_depth(v)).collect();
        let schedules: Vec<Box<dyn MoveSchedule>> = vec![
            Box::new(RandomStall::new(0.5, 1)),
            Box::new(RoundRobinStall::new(3)),
            Box::new(BurstStall::new(5, 2)),
            Box::new(TargetedStall::new(depths, 0.4, 2)),
        ];
        for mut schedule in schedules {
            let name = schedule.name().to_string();
            let mut algo = Bfdn::new_robust(k);
            let outcome = Simulator::new(&tree, k)
                .run_with(&mut algo, &mut *schedule, StopCondition::Explored)
                .unwrap_or_else(|e| panic!("{fam} under {name}: {e}"));
            assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
            let bound = proposition7_bound(tree.len(), tree.depth(), k);
            assert!(
                outcome.metrics.average_allowed() <= bound,
                "{fam} under {name}: A(M) {} > {bound}",
                outcome.metrics.average_allowed()
            );
        }
    }
}

/// An arbitrary finite schedule encoded as a bitstream: the adversary of
/// Section 4.2 is any binary matrix; we replay random ones and require
/// exploration to complete while allowed moves remain within budget.
#[derive(Debug)]
struct BitstreamSchedule {
    bits: Vec<bool>,
    cursor: usize,
}

impl MoveSchedule for BitstreamSchedule {
    fn fill(&mut self, _round: u64, _positions: &[NodeId], allowed: &mut [bool]) {
        for a in allowed.iter_mut() {
            // After the stream runs dry, always allow (the paper's
            // matrices have finitely many 1s; we need the complement so
            // runs terminate).
            *a = self.bits.get(self.cursor).copied().unwrap_or(true);
            self.cursor += 1;
        }
    }

    fn name(&self) -> &str {
        "bitstream"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_bitstream_schedules_cannot_stop_exploration(
        bits in prop::collection::vec(any::<bool>(), 0..4000),
        seed in any::<u64>(),
        k in 1usize..8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tree = bfdn_trees::generators::random_recursive(120, &mut rng);
        let mut schedule = BitstreamSchedule { bits, cursor: 0 };
        let mut algo = Bfdn::new_robust(k);
        let outcome = Simulator::new(&tree, k)
            .run_with(&mut algo, &mut schedule, StopCondition::Explored)
            .unwrap();
        prop_assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
        let bound = proposition7_bound(tree.len(), tree.depth(), k);
        prop_assert!(outcome.metrics.average_allowed() <= bound);
    }
}

/// Remark 8's stronger adversary, negative half: an adversary that sees
/// the selected moves and blocks every would-be discoverer *forever*
/// livelocks exploration while racking up unbounded allowed moves — so
/// Proposition 7's guarantee does **not** extend to the post-selection
/// model. (This is why the paper lists it as a different setting.)
#[test]
fn unrestricted_reactive_adversary_livelocks_bfdn() {
    use bfdn_sim::ReactiveStall;
    let tree = bfdn_trees::generators::comb(10, 3);
    let k = 4;
    let mut algo = Bfdn::new(k);
    let mut schedule = ReactiveStall::unrestricted();
    let err = Simulator::new(&tree, k)
        .with_max_rounds(5_000)
        .run_post(&mut algo, &mut schedule, StopCondition::Explored)
        .unwrap_err();
    assert!(matches!(
        err,
        bfdn_sim::SimError::RoundLimit { explored: 1, .. }
    ));
}

/// Remark 8, positive half: give the reactive adversary any finite
/// fairness cap (no robot stalled more than C rounds in a row) and
/// exploration completes, with the allowed-move budget inflated by at
/// most ~(C + 1)x.
#[test]
fn fair_reactive_adversary_cannot_stop_bfdn() {
    use bfdn_sim::ReactiveStall;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2027);
    let cap = 3u32;
    for fam in [Family::Comb, Family::RandomRecursive, Family::Star] {
        let tree = fam.instance(400, &mut rng);
        let k = 8;
        let mut algo = Bfdn::new(k);
        let mut schedule = ReactiveStall::with_fairness(cap);
        let outcome = Simulator::new(&tree, k)
            .run_post(&mut algo, &mut schedule, StopCondition::Explored)
            .unwrap_or_else(|e| panic!("{fam}: {e}"));
        assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
        let budget = f64::from(cap + 1) * proposition7_bound(tree.len(), tree.depth(), k);
        assert!(
            outcome.metrics.average_allowed() <= budget,
            "{fam}: A(M) {} beyond the (C+1)-inflated Prop. 7 envelope",
            outcome.metrics.average_allowed()
        );
    }
}
