//! Proposition 9 end-to-end: random connected graphs (random spanning
//! tree plus random chords) and grids, explored by the graph variant.

use bfdn::GraphBfdn;
use bfdn_trees::grid::{GridGraph, Rect};
use bfdn_trees::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// A connected graph from a parent-choice vector plus chord pairs.
fn graph_from(choices: &[usize], chords: &[(usize, usize)]) -> Graph {
    let n = choices.len() + 1;
    let mut b = GraphBuilder::new(n);
    for (i, &c) in choices.iter().enumerate() {
        b.add_edge(NodeId::new(i + 1), NodeId::new(c % (i + 1)));
    }
    let mut seen = std::collections::HashSet::new();
    for &(x, y) in chords {
        let (u, v) = (x % n, y % n);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            b.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proposition9_holds_on_random_graphs(
        choices in prop::collection::vec(any::<usize>(), 1..120),
        chords in prop::collection::vec((any::<usize>(), any::<usize>()), 0..60),
        k in 1usize..10,
    ) {
        let g = graph_from(&choices, &chords);
        prop_assert!(g.validate().is_ok());
        let out = GraphBfdn::explore(&g, NodeId::new(0), k).unwrap();
        prop_assert!((out.rounds as f64) <= out.bound, "{} > {}", out.rounds, out.bound);
        prop_assert_eq!(out.tree_edges + out.closed_edges, g.num_edges() as u64);
    }

    #[test]
    fn proposition9_holds_on_random_grids(
        w in 2usize..12,
        h in 2usize..12,
        ox in 1usize..10,
        oy in 1usize..10,
        ow in 1usize..5,
        oh in 1usize..5,
        k in 1usize..10,
    ) {
        let rect = Rect::new(ox.min(w - 1).max(1), oy.min(h - 1).max(1),
                             (ox + ow).min(w), (oy + oh).min(h));
        let grid = GridGraph::new(w, h, &[rect]);
        // Obstacles may disconnect the grid; only connected cases are in
        // scope for Proposition 9.
        if grid.graph().is_connected_from(grid.origin()) {
            let out = GraphBfdn::explore(grid.graph(), grid.origin(), k).unwrap();
            prop_assert!((out.rounds as f64) <= out.bound);
        }
    }
}

#[test]
fn big_grid_with_many_obstacles() {
    let grid = GridGraph::new(
        30,
        30,
        &[
            Rect::new(2, 2, 10, 5),
            Rect::new(14, 1, 16, 25),
            Rect::new(20, 10, 28, 12),
            Rect::new(4, 20, 12, 28),
        ],
    );
    assert!(grid.graph().is_connected_from(grid.origin()));
    for k in [1usize, 8, 64] {
        let out = GraphBfdn::explore(grid.graph(), grid.origin(), k).unwrap();
        assert!((out.rounds as f64) <= out.bound, "k={k}");
    }
}
