//! Cross-crate integration: every exploration algorithm in the workspace
//! runs on the same workloads, under the same simulator, and respects
//! its own guarantee plus the mutual consistency relations.

use bfdn::{offline_lower_bound, theorem10_bound, theorem1_bound, Bfdn, BfdnL, WriteReadBfdn};
use bfdn_baselines::{Cte, OfflineSplit, OnlineDfs, ScriptedExplorer};
use bfdn_sim::{Explorer, Simulator};
use bfdn_trees::generators::Family;
use bfdn_trees::Tree;
use rand::SeedableRng;

fn workloads() -> Vec<Tree> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    Family::ALL
        .iter()
        .map(|f| f.instance(400, &mut rng))
        .collect()
}

fn run(tree: &Tree, k: usize, explorer: &mut dyn Explorer) -> bfdn_sim::Outcome {
    Simulator::new(tree, k)
        .run(explorer)
        .unwrap_or_else(|e| panic!("{} stuck on {tree} k={k}: {e}", explorer.name()))
}

#[test]
fn every_algorithm_discovers_every_edge() {
    for tree in workloads() {
        for k in [2usize, 8] {
            let mut algos: Vec<Box<dyn Explorer>> = vec![
                Box::new(Bfdn::new(k)),
                Box::new(Bfdn::new_robust(k)),
                Box::new(WriteReadBfdn::new(k)),
                Box::new(BfdnL::new(k, 1)),
                Box::new(BfdnL::new(k, 2)),
                Box::new(Cte::new(k)),
            ];
            for algo in &mut algos {
                let outcome = run(&tree, k, algo.as_mut());
                assert_eq!(
                    outcome.metrics.edges_discovered,
                    tree.num_edges() as u64,
                    "{} on {tree} k={k}",
                    algo.name()
                );
                assert!(
                    outcome.metrics.edge_events <= 2 * tree.num_edges() as u64,
                    "{}: more edge events than 2(n-1)",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn nobody_beats_the_offline_lower_bound() {
    for tree in workloads() {
        for k in [2usize, 8, 32] {
            let lower = offline_lower_bound(tree.len(), tree.depth(), k);
            let mut bfdn = Bfdn::new(k);
            let rounds = run(&tree, k, &mut bfdn).rounds;
            assert!(
                rounds as f64 + 1e-9 >= lower,
                "BFDN on {tree} k={k}: {rounds} below the offline lower bound {lower}"
            );
            let offline = OfflineSplit::plan(&tree, k).rounds();
            assert!(offline as f64 + 1e-9 >= lower);
        }
    }
}

#[test]
fn all_bfdn_variants_respect_their_bounds() {
    for tree in workloads() {
        let (n, d, dg) = (tree.len(), tree.depth(), tree.max_degree());
        for k in [2usize, 8] {
            let t1 = theorem1_bound(n, d, k, dg);
            let mut cc = Bfdn::new(k);
            assert!((run(&tree, k, &mut cc).rounds as f64) <= t1);
            let mut wr = WriteReadBfdn::new(k);
            assert!((run(&tree, k, &mut wr).rounds as f64) <= t1);
            for ell in [1u32, 2] {
                let t10 = theorem10_bound(n, d, k, dg, ell);
                let mut rec = BfdnL::new(k, ell);
                assert!(
                    (run(&tree, k, &mut rec).rounds as f64) <= t10,
                    "BFDN_{ell} on {tree} k={k}"
                );
            }
        }
    }
}

#[test]
fn offline_split_replays_through_the_simulator() {
    for tree in workloads() {
        for k in [1usize, 4, 16] {
            let plan = OfflineSplit::plan(&tree, k);
            plan.validate(&tree).expect("plan is a valid cover");
            let routes = (0..k).map(|i| plan.route(i).to_vec()).collect();
            let mut script = ScriptedExplorer::from_routes(&tree, routes);
            let outcome = run(&tree, k, &mut script);
            assert_eq!(outcome.rounds, plan.rounds());
        }
    }
}

#[test]
fn single_robot_hierarchy() {
    // With one robot: DFS is optimal; BFDN matches it up to its (small)
    // reanchoring overhead; CTE with k = 1 is exactly DFS.
    for tree in workloads() {
        let dfs = run(&tree, 1, &mut OnlineDfs).rounds;
        assert_eq!(dfs, 2 * tree.num_edges() as u64);
        let cte = run(&tree, 1, &mut Cte::new(1)).rounds;
        assert_eq!(cte, dfs, "CTE with one robot degenerates to DFS");
        let bfdn = run(&tree, 1, &mut Bfdn::new(1)).rounds;
        assert!(bfdn >= dfs, "nothing beats DFS with one robot");
    }
}

#[test]
fn more_robots_never_hurt_much_on_bushy_trees() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let tree = bfdn_trees::generators::random_recursive(3000, &mut rng);
    let mut prev: Option<u64> = None;
    for k in [1usize, 4, 16, 64] {
        let rounds = run(&tree, k, &mut Bfdn::new(k)).rounds;
        if let Some(p) = prev {
            assert!(
                rounds <= p + p / 4 + 100,
                "k={k}: {rounds} much worse than previous {p}"
            );
        }
        prev = Some(rounds);
    }
}
