//! Property-based end-to-end tests: arbitrary trees, arbitrary team
//! sizes — the paper's guarantees must hold on every instance.

use bfdn::{lemma2_bound, theorem1_bound, Bfdn, WriteReadBfdn};
use bfdn_baselines::Cte;
use bfdn_sim::{Explorer, Simulator};
use bfdn_trees::{NodeId, Tree, TreeBuilder};
use proptest::prelude::*;

fn tree_from_choices(choices: &[usize]) -> Tree {
    let mut b = TreeBuilder::with_capacity(choices.len() + 1);
    for (i, &c) in choices.iter().enumerate() {
        b.add_child(NodeId::new(c % (i + 1)));
    }
    b.build()
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    prop::collection::vec(any::<usize>(), 1..250).prop_map(|c| tree_from_choices(&c))
}

/// Skewed tree: biased towards recent nodes, so depths grow.
fn arb_deep_tree() -> impl Strategy<Value = Tree> {
    prop::collection::vec(0usize..4, 1..250).prop_map(|c| {
        let mut b = TreeBuilder::with_capacity(c.len() + 1);
        for (i, &back) in c.iter().enumerate() {
            b.add_child(NodeId::new(i.saturating_sub(back)));
        }
        b.build()
    })
}

fn check_explorer(tree: &Tree, k: usize, explorer: &mut dyn Explorer) -> u64 {
    let outcome = Simulator::new(tree, k)
        .run(explorer)
        .unwrap_or_else(|e| panic!("{} stuck on {tree}: {e}", explorer.name()));
    assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
    outcome.rounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem1_holds_on_arbitrary_trees(tree in arb_tree(), k in 1usize..20) {
        let rounds = check_explorer(&tree, k, &mut Bfdn::new(k));
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        prop_assert!((rounds as f64) <= bound, "{rounds} > {bound} on {tree} k={k}");
    }

    #[test]
    fn theorem1_holds_on_deep_trees(tree in arb_deep_tree(), k in 1usize..20) {
        let rounds = check_explorer(&tree, k, &mut Bfdn::new(k));
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        prop_assert!((rounds as f64) <= bound);
    }

    #[test]
    fn proposition6_holds_on_arbitrary_trees(tree in arb_tree(), k in 1usize..12) {
        let rounds = check_explorer(&tree, k, &mut WriteReadBfdn::new(k));
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        prop_assert!((rounds as f64) <= bound);
    }

    #[test]
    fn lemma2_holds_on_arbitrary_trees(tree in arb_tree(), k in 1usize..16) {
        let mut algo = Bfdn::new(k);
        check_explorer(&tree, k, &mut algo);
        let bound = lemma2_bound(k, tree.max_degree());
        for (d, &count) in algo.reanchors_by_depth().iter().enumerate().skip(1) {
            prop_assert!(
                (count as f64) <= bound,
                "depth {d}: {count} reanchors > {bound} on {tree} k={k}"
            );
        }
    }

    #[test]
    fn cte_explores_arbitrary_trees(tree in arb_tree(), k in 1usize..16) {
        check_explorer(&tree, k, &mut Cte::new(k));
    }

    /// Claim 2: under BFDN each dangling edge is traversed by exactly one
    /// robot the round it is discovered — so total moves spent on
    /// discoveries equal n - 1, and all robots end at the root.
    #[test]
    fn bfdn_ends_with_everyone_home(tree in arb_tree(), k in 1usize..10) {
        let mut algo = Bfdn::new(k);
        let mut sim = Simulator::new(&tree, k);
        sim.run(&mut algo).unwrap();
        prop_assert!(sim.positions().iter().all(|p| p.is_root()));
        prop_assert!(sim.partial().is_complete());
        prop_assert!(sim.partial().validate().is_ok());
    }
}
