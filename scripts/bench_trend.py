#!/usr/bin/env python3
"""Compare a fresh `experiments --bench-json` record against the
committed quick-scale baseline in BENCH_experiments.json.

Usage:
    scripts/bench_trend.py CURRENT.json [--baseline BENCH_experiments.json]
                           [--section quick] [--factor 2.0] [--floor-ms 50]

Per experiment, the current wall-clock may not exceed
`factor * max(baseline_ms, floor_ms)` — the floor keeps sub-noise
timings (a 1 ms experiment jittering to 3 ms) from tripping the gate,
while a genuine perf regression (>2x on anything that takes real time)
fails CI. Row counts are deterministic at a fixed scale and must match
exactly; a drop means an experiment silently lost coverage.

Exit status: 0 clean, 1 regression(s) found, 2 usage/shape error.
Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_id(record, side):
    entries = {}
    for position, entry in enumerate(record.get("experiments", [])):
        if "id" not in entry:
            print(
                f"bench_trend: records incomparable — the {side} record's "
                f"experiment at position {position} has no `id` key",
                file=sys.stderr,
            )
            sys.exit(2)
        entries[entry["id"]] = entry
    return entries


def field(entry, exp_id, side, key):
    """A required key, or a shape error naming which side is missing it."""
    if key not in entry:
        print(
            f"bench_trend: records incomparable — the {side} record's "
            f"`{exp_id}` entry has no `{key}` key",
            file=sys.stderr,
        )
        sys.exit(2)
    return entry[key]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="bench json written by `experiments --bench-json`")
    ap.add_argument("--baseline", default="BENCH_experiments.json")
    ap.add_argument("--section", default="quick",
                    help="top-level key of the baseline file holding the reference record")
    ap.add_argument("--factor", type=float, default=2.0,
                    help="fail when current > factor * max(baseline, floor)")
    ap.add_argument("--floor-ms", type=float, default=50.0,
                    help="noise floor: baselines below this compare against the floor")
    args = ap.parse_args()

    current = load(args.current)
    baseline_file = load(args.baseline)
    baseline = baseline_file.get(args.section)
    if baseline is None:
        print(f"bench_trend: no `{args.section}` section in {args.baseline}", file=sys.stderr)
        sys.exit(2)

    if current.get("scale") != baseline.get("scale"):
        print(
            f"bench_trend: scale mismatch — current `{current.get('scale')}` "
            f"vs baseline `{baseline.get('scale')}`; comparison is meaningless",
            file=sys.stderr,
        )
        sys.exit(2)

    # Like with like: a record measured under a different intra-round
    # budget (BFDN_ROUND_THREADS) times different code paths — sharded
    # rounds carry per-round spawn overhead the sequential loop doesn't.
    base_rt = baseline.get("round_threads", 1)
    cur_rt = current.get("round_threads", 1)
    if base_rt != cur_rt:
        print(
            f"bench_trend: round_threads mismatch — current {cur_rt} vs "
            f"baseline {base_rt}; rerun with BFDN_ROUND_THREADS={base_rt} "
            "or re-record the baseline",
            file=sys.stderr,
        )
        sys.exit(2)

    base, cur = by_id(baseline, "baseline"), by_id(current, "current")
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"bench_trend: experiments missing from current run: {', '.join(missing)}",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    print(f"{'id':>10}  {'base ms':>8}  {'cur ms':>8}  {'limit':>8}  {'rows':>9}  verdict")
    for exp_id, b in sorted(base.items()):
        c = cur[exp_id]
        base_wall = field(b, exp_id, "baseline", "wall_clock_ms")
        limit = args.factor * max(float(base_wall), args.floor_ms)
        wall = float(field(c, exp_id, "current", "wall_clock_ms"))
        row_note = ""
        ok = True
        if wall > limit:
            ok = False
            failures.append(f"{exp_id}: {wall:.0f} ms > {limit:.0f} ms limit")
        if "rows" in b and c.get("rows") != b["rows"]:
            ok = False
            row_note = f" rows {c.get('rows')}≠{b['rows']}"
            failures.append(f"{exp_id}: row count {c.get('rows')} != baseline {b['rows']}")
        rows = f"{c.get('rows', '?')}/{b.get('rows', '?')}"
        print(f"{exp_id:>10}  {base_wall:>8}  {wall:>8.0f}  {limit:>8.0f}  "
              f"{rows:>9}  {'ok' if ok else 'FAIL' + row_note}")

    extra = sorted(set(cur) - set(base))
    if extra:
        print(f"note: experiments not in baseline (unchecked): {', '.join(extra)}")

    if failures:
        print(f"\nbench_trend: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\nbench_trend: all experiments within budget")


if __name__ == "__main__":
    main()
