/root/repo/target/release/deps/bfdn_service-89baa519ec05a0cd.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/exec.rs crates/service/src/jsonval.rs crates/service/src/parallel.rs crates/service/src/protocol.rs crates/service/src/server.rs crates/service/src/telemetry.rs

/root/repo/target/release/deps/libbfdn_service-89baa519ec05a0cd.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/exec.rs crates/service/src/jsonval.rs crates/service/src/parallel.rs crates/service/src/protocol.rs crates/service/src/server.rs crates/service/src/telemetry.rs

/root/repo/target/release/deps/libbfdn_service-89baa519ec05a0cd.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/exec.rs crates/service/src/jsonval.rs crates/service/src/parallel.rs crates/service/src/protocol.rs crates/service/src/server.rs crates/service/src/telemetry.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/exec.rs:
crates/service/src/jsonval.rs:
crates/service/src/parallel.rs:
crates/service/src/protocol.rs:
crates/service/src/server.rs:
crates/service/src/telemetry.rs:
