/root/repo/target/release/deps/proptests-2ccc93f1860c9d57.d: crates/urn-game/tests/proptests.rs

/root/repo/target/release/deps/proptests-2ccc93f1860c9d57: crates/urn-game/tests/proptests.rs

crates/urn-game/tests/proptests.rs:
