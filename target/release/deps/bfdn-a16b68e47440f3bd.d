/root/repo/target/release/deps/bfdn-a16b68e47440f3bd.d: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

/root/repo/target/release/deps/libbfdn-a16b68e47440f3bd.rlib: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

/root/repo/target/release/deps/libbfdn-a16b68e47440f3bd.rmeta: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

crates/bfdn/src/lib.rs:
crates/bfdn/src/bounds.rs:
crates/bfdn/src/complete.rs:
crates/bfdn/src/graph.rs:
crates/bfdn/src/recursive.rs:
crates/bfdn/src/write_read.rs:
