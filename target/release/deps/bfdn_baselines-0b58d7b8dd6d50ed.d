/root/repo/target/release/deps/bfdn_baselines-0b58d7b8dd6d50ed.d: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

/root/repo/target/release/deps/libbfdn_baselines-0b58d7b8dd6d50ed.rlib: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

/root/repo/target/release/deps/libbfdn_baselines-0b58d7b8dd6d50ed.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cte.rs:
crates/baselines/src/dfs.rs:
crates/baselines/src/offline.rs:
crates/baselines/src/scripted.rs:
