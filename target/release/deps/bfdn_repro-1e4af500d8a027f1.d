/root/repo/target/release/deps/bfdn_repro-1e4af500d8a027f1.d: src/lib.rs

/root/repo/target/release/deps/libbfdn_repro-1e4af500d8a027f1.rlib: src/lib.rs

/root/repo/target/release/deps/libbfdn_repro-1e4af500d8a027f1.rmeta: src/lib.rs

src/lib.rs:
