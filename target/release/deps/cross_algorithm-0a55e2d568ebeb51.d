/root/repo/target/release/deps/cross_algorithm-0a55e2d568ebeb51.d: tests/cross_algorithm.rs

/root/repo/target/release/deps/cross_algorithm-0a55e2d568ebeb51: tests/cross_algorithm.rs

tests/cross_algorithm.rs:
