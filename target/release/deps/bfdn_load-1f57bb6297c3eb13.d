/root/repo/target/release/deps/bfdn_load-1f57bb6297c3eb13.d: crates/loadgen/src/bin/bfdn_load.rs

/root/repo/target/release/deps/bfdn_load-1f57bb6297c3eb13: crates/loadgen/src/bin/bfdn_load.rs

crates/loadgen/src/bin/bfdn_load.rs:
