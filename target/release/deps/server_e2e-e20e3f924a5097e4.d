/root/repo/target/release/deps/server_e2e-e20e3f924a5097e4.d: crates/service/tests/server_e2e.rs

/root/repo/target/release/deps/server_e2e-e20e3f924a5097e4: crates/service/tests/server_e2e.rs

crates/service/tests/server_e2e.rs:
