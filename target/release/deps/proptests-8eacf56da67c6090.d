/root/repo/target/release/deps/proptests-8eacf56da67c6090.d: crates/sim/tests/proptests.rs

/root/repo/target/release/deps/proptests-8eacf56da67c6090: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
