/root/repo/target/release/deps/bfdn_loadgen-a49d5f9880262338.d: crates/loadgen/src/lib.rs crates/loadgen/src/chaos.rs crates/loadgen/src/measure.rs crates/loadgen/src/report.rs crates/loadgen/src/run.rs crates/loadgen/src/workload.rs

/root/repo/target/release/deps/bfdn_loadgen-a49d5f9880262338: crates/loadgen/src/lib.rs crates/loadgen/src/chaos.rs crates/loadgen/src/measure.rs crates/loadgen/src/report.rs crates/loadgen/src/run.rs crates/loadgen/src/workload.rs

crates/loadgen/src/lib.rs:
crates/loadgen/src/chaos.rs:
crates/loadgen/src/measure.rs:
crates/loadgen/src/report.rs:
crates/loadgen/src/run.rs:
crates/loadgen/src/workload.rs:
