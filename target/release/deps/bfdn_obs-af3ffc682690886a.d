/root/repo/target/release/deps/bfdn_obs-af3ffc682690886a.d: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/libbfdn_obs-af3ffc682690886a.rlib: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/libbfdn_obs-af3ffc682690886a.rmeta: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/bound.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/metrics.rs:
crates/obs/src/phase.rs:
crates/obs/src/sink.rs:
