/root/repo/target/release/deps/claims-9ad02cd777494d96.d: crates/bfdn/tests/claims.rs

/root/repo/target/release/deps/claims-9ad02cd777494d96: crates/bfdn/tests/claims.rs

crates/bfdn/tests/claims.rs:
