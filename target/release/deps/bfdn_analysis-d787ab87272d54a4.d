/root/repo/target/release/deps/bfdn_analysis-d787ab87272d54a4.d: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

/root/repo/target/release/deps/libbfdn_analysis-d787ab87272d54a4.rlib: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

/root/repo/target/release/deps/libbfdn_analysis-d787ab87272d54a4.rmeta: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

crates/analysis/src/lib.rs:
crates/analysis/src/appendix_a.rs:
crates/analysis/src/guarantees.rs:
crates/analysis/src/regions.rs:
