/root/repo/target/release/deps/explore-f332092c77642f38.d: crates/bench/src/bin/explore.rs

/root/repo/target/release/deps/explore-f332092c77642f38: crates/bench/src/bin/explore.rs

crates/bench/src/bin/explore.rs:
