/root/repo/target/release/deps/experiments-4de92c76c66e1119.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-4de92c76c66e1119: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
