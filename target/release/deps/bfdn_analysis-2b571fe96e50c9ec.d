/root/repo/target/release/deps/bfdn_analysis-2b571fe96e50c9ec.d: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

/root/repo/target/release/deps/bfdn_analysis-2b571fe96e50c9ec: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

crates/analysis/src/lib.rs:
crates/analysis/src/appendix_a.rs:
crates/analysis/src/guarantees.rs:
crates/analysis/src/regions.rs:
