/root/repo/target/release/deps/parallel_determinism-734a31fa31e77944.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-734a31fa31e77944: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
