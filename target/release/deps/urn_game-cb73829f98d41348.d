/root/repo/target/release/deps/urn_game-cb73829f98d41348.d: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

/root/repo/target/release/deps/urn_game-cb73829f98d41348: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

crates/urn-game/src/lib.rs:
crates/urn-game/src/adversary.rs:
crates/urn-game/src/allocation.rs:
crates/urn-game/src/board.rs:
crates/urn-game/src/dp.rs:
crates/urn-game/src/game.rs:
crates/urn-game/src/player.rs:
