/root/repo/target/release/deps/proptests-15492da72fcef330.d: crates/analysis/tests/proptests.rs

/root/repo/target/release/deps/proptests-15492da72fcef330: crates/analysis/tests/proptests.rs

crates/analysis/tests/proptests.rs:
