/root/repo/target/release/deps/bfdn_serve-ac40a4cc61c26835.d: crates/service/src/bin/bfdn_serve.rs

/root/repo/target/release/deps/bfdn_serve-ac40a4cc61c26835: crates/service/src/bin/bfdn_serve.rs

crates/service/src/bin/bfdn_serve.rs:
