/root/repo/target/release/deps/proptests-42146206a55db4f3.d: crates/trees/tests/proptests.rs

/root/repo/target/release/deps/proptests-42146206a55db4f3: crates/trees/tests/proptests.rs

crates/trees/tests/proptests.rs:
