/root/repo/target/release/deps/determinism-604b4112efca1d54.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-604b4112efca1d54: tests/determinism.rs

tests/determinism.rs:
