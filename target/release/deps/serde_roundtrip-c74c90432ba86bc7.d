/root/repo/target/release/deps/serde_roundtrip-c74c90432ba86bc7.d: crates/sim/tests/serde_roundtrip.rs

/root/repo/target/release/deps/serde_roundtrip-c74c90432ba86bc7: crates/sim/tests/serde_roundtrip.rs

crates/sim/tests/serde_roundtrip.rs:
