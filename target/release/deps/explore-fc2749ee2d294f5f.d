/root/repo/target/release/deps/explore-fc2749ee2d294f5f.d: crates/bench/src/bin/explore.rs

/root/repo/target/release/deps/explore-fc2749ee2d294f5f: crates/bench/src/bin/explore.rs

crates/bench/src/bin/explore.rs:
