/root/repo/target/release/deps/proptest_exploration-61dc593507794ec5.d: tests/proptest_exploration.rs

/root/repo/target/release/deps/proptest_exploration-61dc593507794ec5: tests/proptest_exploration.rs

tests/proptest_exploration.rs:
