/root/repo/target/release/deps/flat_differential-ccb524f9facaa104.d: crates/bfdn/tests/flat_differential.rs

/root/repo/target/release/deps/flat_differential-ccb524f9facaa104: crates/bfdn/tests/flat_differential.rs

crates/bfdn/tests/flat_differential.rs:
