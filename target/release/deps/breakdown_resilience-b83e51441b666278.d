/root/repo/target/release/deps/breakdown_resilience-b83e51441b666278.d: tests/breakdown_resilience.rs

/root/repo/target/release/deps/breakdown_resilience-b83e51441b666278: tests/breakdown_resilience.rs

tests/breakdown_resilience.rs:
