/root/repo/target/release/deps/framing_abuse-744b24b6f4cdeb5e.d: crates/service/tests/framing_abuse.rs

/root/repo/target/release/deps/framing_abuse-744b24b6f4cdeb5e: crates/service/tests/framing_abuse.rs

crates/service/tests/framing_abuse.rs:
