/root/repo/target/release/deps/bfdn_request-3a73a8f7fcc82308.d: crates/service/src/bin/bfdn_request.rs

/root/repo/target/release/deps/bfdn_request-3a73a8f7fcc82308: crates/service/src/bin/bfdn_request.rs

crates/service/src/bin/bfdn_request.rs:
