/root/repo/target/release/deps/urn_game-fc23294acbcc4757.d: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

/root/repo/target/release/deps/liburn_game-fc23294acbcc4757.rlib: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

/root/repo/target/release/deps/liburn_game-fc23294acbcc4757.rmeta: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

crates/urn-game/src/lib.rs:
crates/urn-game/src/adversary.rs:
crates/urn-game/src/allocation.rs:
crates/urn-game/src/board.rs:
crates/urn-game/src/dp.rs:
crates/urn-game/src/game.rs:
crates/urn-game/src/player.rs:
