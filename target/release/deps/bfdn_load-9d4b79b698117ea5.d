/root/repo/target/release/deps/bfdn_load-9d4b79b698117ea5.d: crates/loadgen/src/bin/bfdn_load.rs

/root/repo/target/release/deps/bfdn_load-9d4b79b698117ea5: crates/loadgen/src/bin/bfdn_load.rs

crates/loadgen/src/bin/bfdn_load.rs:
