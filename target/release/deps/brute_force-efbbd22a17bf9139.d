/root/repo/target/release/deps/brute_force-efbbd22a17bf9139.d: crates/urn-game/tests/brute_force.rs

/root/repo/target/release/deps/brute_force-efbbd22a17bf9139: crates/urn-game/tests/brute_force.rs

crates/urn-game/tests/brute_force.rs:
