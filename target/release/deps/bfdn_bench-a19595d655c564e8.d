/root/repo/target/release/deps/bfdn_bench-a19595d655c564e8.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/e01_theorem1.rs crates/bench/src/experiments/e02_overhead.rs crates/bench/src/experiments/e03_urn_game.rs crates/bench/src/experiments/e04_lemma2.rs crates/bench/src/experiments/e05_figure1.rs crates/bench/src/experiments/e06_cte_adversarial.rs crates/bench/src/experiments/e07_write_read.rs crates/bench/src/experiments/e08_breakdowns.rs crates/bench/src/experiments/e09_graphs.rs crates/bench/src/experiments/e10_recursive.rs crates/bench/src/experiments/e11_allocation.rs crates/bench/src/experiments/e12_ratio_curves.rs crates/bench/src/experiments/e13_statistics.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbfdn_bench-a19595d655c564e8.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/e01_theorem1.rs crates/bench/src/experiments/e02_overhead.rs crates/bench/src/experiments/e03_urn_game.rs crates/bench/src/experiments/e04_lemma2.rs crates/bench/src/experiments/e05_figure1.rs crates/bench/src/experiments/e06_cte_adversarial.rs crates/bench/src/experiments/e07_write_read.rs crates/bench/src/experiments/e08_breakdowns.rs crates/bench/src/experiments/e09_graphs.rs crates/bench/src/experiments/e10_recursive.rs crates/bench/src/experiments/e11_allocation.rs crates/bench/src/experiments/e12_ratio_curves.rs crates/bench/src/experiments/e13_statistics.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbfdn_bench-a19595d655c564e8.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/e01_theorem1.rs crates/bench/src/experiments/e02_overhead.rs crates/bench/src/experiments/e03_urn_game.rs crates/bench/src/experiments/e04_lemma2.rs crates/bench/src/experiments/e05_figure1.rs crates/bench/src/experiments/e06_cte_adversarial.rs crates/bench/src/experiments/e07_write_read.rs crates/bench/src/experiments/e08_breakdowns.rs crates/bench/src/experiments/e09_graphs.rs crates/bench/src/experiments/e10_recursive.rs crates/bench/src/experiments/e11_allocation.rs crates/bench/src/experiments/e12_ratio_curves.rs crates/bench/src/experiments/e13_statistics.rs crates/bench/src/sweep.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/e01_theorem1.rs:
crates/bench/src/experiments/e02_overhead.rs:
crates/bench/src/experiments/e03_urn_game.rs:
crates/bench/src/experiments/e04_lemma2.rs:
crates/bench/src/experiments/e05_figure1.rs:
crates/bench/src/experiments/e06_cte_adversarial.rs:
crates/bench/src/experiments/e07_write_read.rs:
crates/bench/src/experiments/e08_breakdowns.rs:
crates/bench/src/experiments/e09_graphs.rs:
crates/bench/src/experiments/e10_recursive.rs:
crates/bench/src/experiments/e11_allocation.rs:
crates/bench/src/experiments/e12_ratio_curves.rs:
crates/bench/src/experiments/e13_statistics.rs:
crates/bench/src/sweep.rs:
crates/bench/src/table.rs:
