/root/repo/target/release/deps/recursive_proptests-c361992902adf023.d: crates/bfdn/tests/recursive_proptests.rs

/root/repo/target/release/deps/recursive_proptests-c361992902adf023: crates/bfdn/tests/recursive_proptests.rs

crates/bfdn/tests/recursive_proptests.rs:
