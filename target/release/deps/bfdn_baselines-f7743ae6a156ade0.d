/root/repo/target/release/deps/bfdn_baselines-f7743ae6a156ade0.d: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

/root/repo/target/release/deps/bfdn_baselines-f7743ae6a156ade0: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cte.rs:
crates/baselines/src/dfs.rs:
crates/baselines/src/offline.rs:
crates/baselines/src/scripted.rs:
