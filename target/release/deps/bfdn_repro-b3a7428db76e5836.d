/root/repo/target/release/deps/bfdn_repro-b3a7428db76e5836.d: src/lib.rs

/root/repo/target/release/deps/bfdn_repro-b3a7428db76e5836: src/lib.rs

src/lib.rs:
