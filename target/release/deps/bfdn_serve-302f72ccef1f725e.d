/root/repo/target/release/deps/bfdn_serve-302f72ccef1f725e.d: crates/service/src/bin/bfdn_serve.rs

/root/repo/target/release/deps/bfdn_serve-302f72ccef1f725e: crates/service/src/bin/bfdn_serve.rs

crates/service/src/bin/bfdn_serve.rs:
