/root/repo/target/release/deps/bfdn_sim-67f789edded2bf00.d: crates/sim/src/lib.rs crates/sim/src/explorer.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/schedule.rs crates/sim/src/simulator.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/bfdn_sim-67f789edded2bf00: crates/sim/src/lib.rs crates/sim/src/explorer.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/schedule.rs crates/sim/src/simulator.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/explorer.rs:
crates/sim/src/metrics.rs:
crates/sim/src/render.rs:
crates/sim/src/schedule.rs:
crates/sim/src/simulator.rs:
crates/sim/src/trace.rs:
