/root/repo/target/release/deps/service_determinism-4f8846ed663a53df.d: crates/bench/tests/service_determinism.rs

/root/repo/target/release/deps/service_determinism-4f8846ed663a53df: crates/bench/tests/service_determinism.rs

crates/bench/tests/service_determinism.rs:
