/root/repo/target/release/deps/observability-0c7daa5f1eb19cd2.d: crates/bfdn/tests/observability.rs

/root/repo/target/release/deps/observability-0c7daa5f1eb19cd2: crates/bfdn/tests/observability.rs

crates/bfdn/tests/observability.rs:
