/root/repo/target/release/deps/proptest-ca34c7cc76f658d3.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ca34c7cc76f658d3.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ca34c7cc76f658d3.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
