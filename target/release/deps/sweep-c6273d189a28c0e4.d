/root/repo/target/release/deps/sweep-c6273d189a28c0e4.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-c6273d189a28c0e4: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
