/root/repo/target/release/deps/serde_roundtrip-c702d048c111bece.d: crates/trees/tests/serde_roundtrip.rs

/root/repo/target/release/deps/serde_roundtrip-c702d048c111bece: crates/trees/tests/serde_roundtrip.rs

crates/trees/tests/serde_roundtrip.rs:
