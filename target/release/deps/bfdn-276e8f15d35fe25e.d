/root/repo/target/release/deps/bfdn-276e8f15d35fe25e.d: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

/root/repo/target/release/deps/bfdn-276e8f15d35fe25e: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

crates/bfdn/src/lib.rs:
crates/bfdn/src/bounds.rs:
crates/bfdn/src/complete.rs:
crates/bfdn/src/graph.rs:
crates/bfdn/src/recursive.rs:
crates/bfdn/src/write_read.rs:
