/root/repo/target/release/deps/bfdn_request-b062a67612540da2.d: crates/service/src/bin/bfdn_request.rs

/root/repo/target/release/deps/bfdn_request-b062a67612540da2: crates/service/src/bin/bfdn_request.rs

crates/service/src/bin/bfdn_request.rs:
