/root/repo/target/release/deps/graph_exploration-ce6a43a8d1492e4b.d: tests/graph_exploration.rs

/root/repo/target/release/deps/graph_exploration-ce6a43a8d1492e4b: tests/graph_exploration.rs

tests/graph_exploration.rs:
