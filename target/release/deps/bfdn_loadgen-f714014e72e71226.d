/root/repo/target/release/deps/bfdn_loadgen-f714014e72e71226.d: crates/loadgen/src/lib.rs crates/loadgen/src/chaos.rs crates/loadgen/src/measure.rs crates/loadgen/src/report.rs crates/loadgen/src/run.rs crates/loadgen/src/workload.rs

/root/repo/target/release/deps/libbfdn_loadgen-f714014e72e71226.rlib: crates/loadgen/src/lib.rs crates/loadgen/src/chaos.rs crates/loadgen/src/measure.rs crates/loadgen/src/report.rs crates/loadgen/src/run.rs crates/loadgen/src/workload.rs

/root/repo/target/release/deps/libbfdn_loadgen-f714014e72e71226.rmeta: crates/loadgen/src/lib.rs crates/loadgen/src/chaos.rs crates/loadgen/src/measure.rs crates/loadgen/src/report.rs crates/loadgen/src/run.rs crates/loadgen/src/workload.rs

crates/loadgen/src/lib.rs:
crates/loadgen/src/chaos.rs:
crates/loadgen/src/measure.rs:
crates/loadgen/src/report.rs:
crates/loadgen/src/run.rs:
crates/loadgen/src/workload.rs:
