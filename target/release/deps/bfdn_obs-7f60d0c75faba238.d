/root/repo/target/release/deps/bfdn_obs-7f60d0c75faba238.d: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

/root/repo/target/release/deps/bfdn_obs-7f60d0c75faba238: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/bound.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/metrics.rs:
crates/obs/src/phase.rs:
crates/obs/src/sink.rs:
