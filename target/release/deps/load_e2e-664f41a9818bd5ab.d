/root/repo/target/release/deps/load_e2e-664f41a9818bd5ab.d: crates/loadgen/tests/load_e2e.rs

/root/repo/target/release/deps/load_e2e-664f41a9818bd5ab: crates/loadgen/tests/load_e2e.rs

crates/loadgen/tests/load_e2e.rs:
