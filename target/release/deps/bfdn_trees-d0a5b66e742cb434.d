/root/repo/target/release/deps/bfdn_trees-d0a5b66e742cb434.d: crates/trees/src/lib.rs crates/trees/src/builder.rs crates/trees/src/generators/mod.rs crates/trees/src/generators/adversarial.rs crates/trees/src/generators/basic.rs crates/trees/src/generators/random.rs crates/trees/src/graph.rs crates/trees/src/grid.rs crates/trees/src/node.rs crates/trees/src/partial.rs crates/trees/src/tree.rs

/root/repo/target/release/deps/libbfdn_trees-d0a5b66e742cb434.rlib: crates/trees/src/lib.rs crates/trees/src/builder.rs crates/trees/src/generators/mod.rs crates/trees/src/generators/adversarial.rs crates/trees/src/generators/basic.rs crates/trees/src/generators/random.rs crates/trees/src/graph.rs crates/trees/src/grid.rs crates/trees/src/node.rs crates/trees/src/partial.rs crates/trees/src/tree.rs

/root/repo/target/release/deps/libbfdn_trees-d0a5b66e742cb434.rmeta: crates/trees/src/lib.rs crates/trees/src/builder.rs crates/trees/src/generators/mod.rs crates/trees/src/generators/adversarial.rs crates/trees/src/generators/basic.rs crates/trees/src/generators/random.rs crates/trees/src/graph.rs crates/trees/src/grid.rs crates/trees/src/node.rs crates/trees/src/partial.rs crates/trees/src/tree.rs

crates/trees/src/lib.rs:
crates/trees/src/builder.rs:
crates/trees/src/generators/mod.rs:
crates/trees/src/generators/adversarial.rs:
crates/trees/src/generators/basic.rs:
crates/trees/src/generators/random.rs:
crates/trees/src/graph.rs:
crates/trees/src/grid.rs:
crates/trees/src/node.rs:
crates/trees/src/partial.rs:
crates/trees/src/tree.rs:
