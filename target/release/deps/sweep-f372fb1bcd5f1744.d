/root/repo/target/release/deps/sweep-f372fb1bcd5f1744.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-f372fb1bcd5f1744: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
