/root/repo/target/release/deps/experiments-1a50dc85d8456252.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-1a50dc85d8456252: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
