/root/repo/target/release/deps/proptests-7b1ad4aa17cef9c0.d: crates/baselines/tests/proptests.rs

/root/repo/target/release/deps/proptests-7b1ad4aa17cef9c0: crates/baselines/tests/proptests.rs

crates/baselines/tests/proptests.rs:
