/root/repo/target/release/examples/margin_scan-ca4618ea8b9f9999.d: crates/service/examples/margin_scan.rs

/root/repo/target/release/examples/margin_scan-ca4618ea8b9f9999: crates/service/examples/margin_scan.rs

crates/service/examples/margin_scan.rs:
