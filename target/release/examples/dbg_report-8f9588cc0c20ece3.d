/root/repo/target/release/examples/dbg_report-8f9588cc0c20ece3.d: crates/loadgen/examples/dbg_report.rs

/root/repo/target/release/examples/dbg_report-8f9588cc0c20ece3: crates/loadgen/examples/dbg_report.rs

crates/loadgen/examples/dbg_report.rs:
