/root/repo/target/release/examples/watch_bfdn-92eb6d1aee161344.d: examples/watch_bfdn.rs

/root/repo/target/release/examples/watch_bfdn-92eb6d1aee161344: examples/watch_bfdn.rs

examples/watch_bfdn.rs:
