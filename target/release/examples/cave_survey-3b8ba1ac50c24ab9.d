/root/repo/target/release/examples/cave_survey-3b8ba1ac50c24ab9.d: examples/cave_survey.rs

/root/repo/target/release/examples/cave_survey-3b8ba1ac50c24ab9: examples/cave_survey.rs

examples/cave_survey.rs:
