/root/repo/target/release/examples/resource_allocation-bc6c94d827568852.d: examples/resource_allocation.rs

/root/repo/target/release/examples/resource_allocation-bc6c94d827568852: examples/resource_allocation.rs

examples/resource_allocation.rs:
