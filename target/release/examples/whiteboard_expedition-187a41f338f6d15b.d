/root/repo/target/release/examples/whiteboard_expedition-187a41f338f6d15b.d: examples/whiteboard_expedition.rs

/root/repo/target/release/examples/whiteboard_expedition-187a41f338f6d15b: examples/whiteboard_expedition.rs

examples/whiteboard_expedition.rs:
