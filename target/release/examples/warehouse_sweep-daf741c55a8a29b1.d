/root/repo/target/release/examples/warehouse_sweep-daf741c55a8a29b1.d: examples/warehouse_sweep.rs

/root/repo/target/release/examples/warehouse_sweep-daf741c55a8a29b1: examples/warehouse_sweep.rs

examples/warehouse_sweep.rs:
