/root/repo/target/release/examples/quickstart-6cbb971cbf3f638a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6cbb971cbf3f638a: examples/quickstart.rs

examples/quickstart.rs:
