/root/repo/target/debug/examples/quickstart-85aeee98b132229c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-85aeee98b132229c: examples/quickstart.rs

examples/quickstart.rs:
