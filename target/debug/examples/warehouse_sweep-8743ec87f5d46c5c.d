/root/repo/target/debug/examples/warehouse_sweep-8743ec87f5d46c5c.d: examples/warehouse_sweep.rs

/root/repo/target/debug/examples/warehouse_sweep-8743ec87f5d46c5c: examples/warehouse_sweep.rs

examples/warehouse_sweep.rs:
