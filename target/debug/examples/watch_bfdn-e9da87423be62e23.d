/root/repo/target/debug/examples/watch_bfdn-e9da87423be62e23.d: examples/watch_bfdn.rs

/root/repo/target/debug/examples/watch_bfdn-e9da87423be62e23: examples/watch_bfdn.rs

examples/watch_bfdn.rs:
