/root/repo/target/debug/examples/resource_allocation-a34c3b9b73c42e55.d: examples/resource_allocation.rs

/root/repo/target/debug/examples/resource_allocation-a34c3b9b73c42e55: examples/resource_allocation.rs

examples/resource_allocation.rs:
