/root/repo/target/debug/examples/cave_survey-5b8f2fe542b9736e.d: examples/cave_survey.rs

/root/repo/target/debug/examples/cave_survey-5b8f2fe542b9736e: examples/cave_survey.rs

examples/cave_survey.rs:
