/root/repo/target/debug/examples/whiteboard_expedition-509a34a548bc8978.d: examples/whiteboard_expedition.rs

/root/repo/target/debug/examples/whiteboard_expedition-509a34a548bc8978: examples/whiteboard_expedition.rs

examples/whiteboard_expedition.rs:
