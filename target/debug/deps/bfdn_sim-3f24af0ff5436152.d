/root/repo/target/debug/deps/bfdn_sim-3f24af0ff5436152.d: crates/sim/src/lib.rs crates/sim/src/explorer.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/schedule.rs crates/sim/src/simulator.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libbfdn_sim-3f24af0ff5436152.rlib: crates/sim/src/lib.rs crates/sim/src/explorer.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/schedule.rs crates/sim/src/simulator.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libbfdn_sim-3f24af0ff5436152.rmeta: crates/sim/src/lib.rs crates/sim/src/explorer.rs crates/sim/src/metrics.rs crates/sim/src/render.rs crates/sim/src/schedule.rs crates/sim/src/simulator.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/explorer.rs:
crates/sim/src/metrics.rs:
crates/sim/src/render.rs:
crates/sim/src/schedule.rs:
crates/sim/src/simulator.rs:
crates/sim/src/trace.rs:
