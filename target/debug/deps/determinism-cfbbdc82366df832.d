/root/repo/target/debug/deps/determinism-cfbbdc82366df832.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-cfbbdc82366df832: tests/determinism.rs

tests/determinism.rs:
