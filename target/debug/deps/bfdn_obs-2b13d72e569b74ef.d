/root/repo/target/debug/deps/bfdn_obs-2b13d72e569b74ef.d: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/libbfdn_obs-2b13d72e569b74ef.rlib: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

/root/repo/target/debug/deps/libbfdn_obs-2b13d72e569b74ef.rmeta: crates/obs/src/lib.rs crates/obs/src/bound.rs crates/obs/src/event.rs crates/obs/src/json.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/phase.rs crates/obs/src/sink.rs

crates/obs/src/lib.rs:
crates/obs/src/bound.rs:
crates/obs/src/event.rs:
crates/obs/src/json.rs:
crates/obs/src/manifest.rs:
crates/obs/src/metrics.rs:
crates/obs/src/phase.rs:
crates/obs/src/sink.rs:
