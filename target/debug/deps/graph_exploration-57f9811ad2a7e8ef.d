/root/repo/target/debug/deps/graph_exploration-57f9811ad2a7e8ef.d: tests/graph_exploration.rs

/root/repo/target/debug/deps/graph_exploration-57f9811ad2a7e8ef: tests/graph_exploration.rs

tests/graph_exploration.rs:
