/root/repo/target/debug/deps/bfdn_repro-74039b1b557e9ac9.d: src/lib.rs

/root/repo/target/debug/deps/bfdn_repro-74039b1b557e9ac9: src/lib.rs

src/lib.rs:
