/root/repo/target/debug/deps/urn_game-86bf26a262c90673.d: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

/root/repo/target/debug/deps/liburn_game-86bf26a262c90673.rlib: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

/root/repo/target/debug/deps/liburn_game-86bf26a262c90673.rmeta: crates/urn-game/src/lib.rs crates/urn-game/src/adversary.rs crates/urn-game/src/allocation.rs crates/urn-game/src/board.rs crates/urn-game/src/dp.rs crates/urn-game/src/game.rs crates/urn-game/src/player.rs

crates/urn-game/src/lib.rs:
crates/urn-game/src/adversary.rs:
crates/urn-game/src/allocation.rs:
crates/urn-game/src/board.rs:
crates/urn-game/src/dp.rs:
crates/urn-game/src/game.rs:
crates/urn-game/src/player.rs:
