/root/repo/target/debug/deps/proptest_exploration-9b124bb1848de601.d: tests/proptest_exploration.rs

/root/repo/target/debug/deps/proptest_exploration-9b124bb1848de601: tests/proptest_exploration.rs

tests/proptest_exploration.rs:
