/root/repo/target/debug/deps/breakdown_resilience-1f072ad2a06ee4d9.d: tests/breakdown_resilience.rs

/root/repo/target/debug/deps/breakdown_resilience-1f072ad2a06ee4d9: tests/breakdown_resilience.rs

tests/breakdown_resilience.rs:
