/root/repo/target/debug/deps/cross_algorithm-fd54f54f99e0d6d1.d: tests/cross_algorithm.rs

/root/repo/target/debug/deps/cross_algorithm-fd54f54f99e0d6d1: tests/cross_algorithm.rs

tests/cross_algorithm.rs:
