/root/repo/target/debug/deps/proptest-89af3472eccc2d40.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-89af3472eccc2d40.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-89af3472eccc2d40.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
