/root/repo/target/debug/deps/bfdn_repro-df79fe9987fd1619.d: src/lib.rs

/root/repo/target/debug/deps/libbfdn_repro-df79fe9987fd1619.rlib: src/lib.rs

/root/repo/target/debug/deps/libbfdn_repro-df79fe9987fd1619.rmeta: src/lib.rs

src/lib.rs:
