/root/repo/target/debug/deps/bfdn_trees-6ac114106b508e88.d: crates/trees/src/lib.rs crates/trees/src/builder.rs crates/trees/src/generators/mod.rs crates/trees/src/generators/adversarial.rs crates/trees/src/generators/basic.rs crates/trees/src/generators/random.rs crates/trees/src/graph.rs crates/trees/src/grid.rs crates/trees/src/node.rs crates/trees/src/partial.rs crates/trees/src/tree.rs

/root/repo/target/debug/deps/libbfdn_trees-6ac114106b508e88.rlib: crates/trees/src/lib.rs crates/trees/src/builder.rs crates/trees/src/generators/mod.rs crates/trees/src/generators/adversarial.rs crates/trees/src/generators/basic.rs crates/trees/src/generators/random.rs crates/trees/src/graph.rs crates/trees/src/grid.rs crates/trees/src/node.rs crates/trees/src/partial.rs crates/trees/src/tree.rs

/root/repo/target/debug/deps/libbfdn_trees-6ac114106b508e88.rmeta: crates/trees/src/lib.rs crates/trees/src/builder.rs crates/trees/src/generators/mod.rs crates/trees/src/generators/adversarial.rs crates/trees/src/generators/basic.rs crates/trees/src/generators/random.rs crates/trees/src/graph.rs crates/trees/src/grid.rs crates/trees/src/node.rs crates/trees/src/partial.rs crates/trees/src/tree.rs

crates/trees/src/lib.rs:
crates/trees/src/builder.rs:
crates/trees/src/generators/mod.rs:
crates/trees/src/generators/adversarial.rs:
crates/trees/src/generators/basic.rs:
crates/trees/src/generators/random.rs:
crates/trees/src/graph.rs:
crates/trees/src/grid.rs:
crates/trees/src/node.rs:
crates/trees/src/partial.rs:
crates/trees/src/tree.rs:
