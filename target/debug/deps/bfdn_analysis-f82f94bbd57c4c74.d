/root/repo/target/debug/deps/bfdn_analysis-f82f94bbd57c4c74.d: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

/root/repo/target/debug/deps/libbfdn_analysis-f82f94bbd57c4c74.rlib: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

/root/repo/target/debug/deps/libbfdn_analysis-f82f94bbd57c4c74.rmeta: crates/analysis/src/lib.rs crates/analysis/src/appendix_a.rs crates/analysis/src/guarantees.rs crates/analysis/src/regions.rs

crates/analysis/src/lib.rs:
crates/analysis/src/appendix_a.rs:
crates/analysis/src/guarantees.rs:
crates/analysis/src/regions.rs:
