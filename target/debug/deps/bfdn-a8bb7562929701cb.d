/root/repo/target/debug/deps/bfdn-a8bb7562929701cb.d: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

/root/repo/target/debug/deps/libbfdn-a8bb7562929701cb.rlib: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

/root/repo/target/debug/deps/libbfdn-a8bb7562929701cb.rmeta: crates/bfdn/src/lib.rs crates/bfdn/src/bounds.rs crates/bfdn/src/complete.rs crates/bfdn/src/graph.rs crates/bfdn/src/recursive.rs crates/bfdn/src/write_read.rs

crates/bfdn/src/lib.rs:
crates/bfdn/src/bounds.rs:
crates/bfdn/src/complete.rs:
crates/bfdn/src/graph.rs:
crates/bfdn/src/recursive.rs:
crates/bfdn/src/write_read.rs:
