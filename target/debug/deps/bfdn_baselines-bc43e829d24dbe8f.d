/root/repo/target/debug/deps/bfdn_baselines-bc43e829d24dbe8f.d: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

/root/repo/target/debug/deps/libbfdn_baselines-bc43e829d24dbe8f.rlib: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

/root/repo/target/debug/deps/libbfdn_baselines-bc43e829d24dbe8f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cte.rs crates/baselines/src/dfs.rs crates/baselines/src/offline.rs crates/baselines/src/scripted.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cte.rs:
crates/baselines/src/dfs.rs:
crates/baselines/src/offline.rs:
crates/baselines/src/scripted.rs:
