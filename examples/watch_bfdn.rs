//! Watch BFDN work: an ASCII animation of three robots lifting the fog
//! of war on a small comb — the Rust counterpart of the Python demo the
//! paper credits.
//!
//! ```text
//! cargo run --example watch_bfdn
//! ```

use bfdn::Bfdn;
use bfdn_sim::render::TraceRenderer;
use bfdn_sim::Simulator;
use bfdn_trees::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = generators::comb(3, 2);
    let k = 3;
    println!("{tree}, k = {k} robots (o = explored, ? = still hidden)\n");

    let mut algo = Bfdn::new(k);
    let mut sim = Simulator::new(&tree, k).record_trace();
    let outcome = sim.run(&mut algo)?;
    let trace = outcome.trace.as_ref().expect("tracing was enabled");
    let renderer = TraceRenderer::new(&tree, trace);
    println!("{}", renderer.animate(2));
    println!(
        "explored {} edges in {} rounds with {} reanchorings",
        outcome.metrics.edges_discovered,
        outcome.rounds,
        algo.total_reanchors(),
    );
    Ok(())
}
