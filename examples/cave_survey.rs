//! Surveying a deep cave system: a kilometer-long descent with side
//! chambers branching off at every level — the deep-tree regime where
//! the recursive `BFDN_ℓ` (Section 5) outperforms plain BFDN, because
//! plain BFDN pays a full round-trip to the entrance for every chamber
//! while the recursion re-roots its survey teams deeper and deeper.
//! Robot break-downs (Section 4.2) must not halt the survey either.
//!
//! ```text
//! cargo run --release --example cave_survey
//! ```

use bfdn::{proposition7_bound, theorem10_bound, Bfdn, BfdnL};
use bfdn_sim::{RandomStall, Simulator, StopCondition};
use bfdn_trees::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 500-level descent with 16 side chambers per level.
    let k = 16;
    let cave = generators::caterpillar(500, k);
    println!("cave: {cave}, surveyed by {k} robots\n");

    let mut plain = Bfdn::new(k);
    let plain_rounds = Simulator::new(&cave, k).run(&mut plain)?.rounds;
    println!("BFDN    : {plain_rounds:>6} rounds (every chamber costs a trip from the entrance)");
    for ell in [1u32, 2, 3] {
        let mut algo = BfdnL::new(k, ell);
        let outcome = Simulator::new(&cave, k).run(&mut algo)?;
        let bound = theorem10_bound(cave.len(), cave.depth(), k, cave.max_degree(), ell);
        println!(
            "BFDN_{ell}  : {:>6} rounds ({} escalating calls, Theorem 10 bound {:.0})",
            outcome.rounds,
            algo.calls(),
            bound,
        );
        assert!((outcome.rounds as f64) <= bound);
    }

    // Now with flaky robots: an adversary stalls each robot 30% of the
    // time. The robust variant (Proposition 7) still finishes, and the
    // *allowed moves* it consumed stay within the Prop. 7 budget.
    let mut robust = Bfdn::new_robust(k);
    let mut stalls = RandomStall::new(0.3, 2024);
    let outcome =
        Simulator::new(&cave, k).run_with(&mut robust, &mut stalls, StopCondition::Explored)?;
    let budget = proposition7_bound(cave.len(), cave.depth(), k);
    println!(
        "\nwith 30% random break-downs: explored in {} rounds, \
         A(M) = {:.0} allowed moves per robot (Prop. 7 budget {budget:.0})",
        outcome.rounds,
        outcome.metrics.average_allowed(),
    );
    assert!(outcome.metrics.average_allowed() <= budget);
    Ok(())
}
