//! The Section 3 interpretation of the balls-in-urns game: `k` build
//! workers share `k` compilation jobs of unknown length. Reassigning an
//! idle worker to the *least crowded* unfinished job keeps the total
//! number of job switches below `k·log k + 2k`, no matter how the job
//! lengths are rigged.
//!
//! ```text
//! cargo run --example resource_allocation
//! ```

use urn_game::allocation::{run, ReassignPolicy};
use urn_game::{play, theorem3_bound, GameValue, GreedyAdversary, LeastLoadedPlayer, UrnGame};

fn main() {
    let k = 64;

    // An adversarial job mix: geometric lengths release workers in waves.
    let jobs: Vec<u64> = (0..k).map(|i| 1u64 << (i % 11)).collect();
    println!(
        "{} workers, {} jobs, total work {}",
        k,
        k,
        jobs.iter().sum::<u64>()
    );

    for policy in [
        ReassignPolicy::LeastCrowded,
        ReassignPolicy::MostCrowded,
        ReassignPolicy::random(7),
        ReassignPolicy::RoundRobin { next: 0 },
    ] {
        let name = policy.name();
        let out = run(&jobs, k, policy);
        println!(
            "{name:>13}: makespan {:>5} rounds, {:>4} switches, {:>5} wasted worker-rounds",
            out.rounds, out.switches, out.wasted_work,
        );
    }

    let bound = theorem3_bound(k, k);
    println!("\nTheorem 3 switch bound for the least-crowded policy: {bound:.0}");

    // The underlying two-player game: the exact optimum (by dynamic
    // programming) and the greedy adversary that achieves it.
    let exact = GameValue::new(k, k).value();
    let played = play(
        UrnGame::new(k, k),
        &mut LeastLoadedPlayer,
        &mut GreedyAdversary,
    );
    println!(
        "urn game with k = Δ = {k}: optimal adversary lasts {exact} steps \
         (simulated greedy: {}), bound {bound:.0}",
        played.steps,
    );
    assert_eq!(exact as u64, played.steps);
    assert!((played.steps as f64) <= bound);
}
