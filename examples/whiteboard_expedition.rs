//! The distributed expedition: robots that can only talk to base camp
//! (the root) and scribble on whiteboards at the nodes they visit — the
//! write-read model of Section 4.1. Proposition 6: same guarantee as
//! with complete communication.
//!
//! ```text
//! cargo run --example whiteboard_expedition
//! ```

use bfdn::{theorem1_bound, Bfdn, WriteReadBfdn};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let terrain = generators::uniform_labeled(3_000, &mut rng);
    println!("terrain: {terrain}\n");

    println!(
        "{:>4} {:>10} {:>12} {:>10}",
        "k", "complete", "write-read", "bound"
    );
    for k in [2usize, 8, 32] {
        let mut cc = Bfdn::new(k);
        let cc_rounds = Simulator::new(&terrain, k).run(&mut cc)?.rounds;

        let mut wr = WriteReadBfdn::new(k);
        let wr_rounds = Simulator::new(&terrain, k).run(&mut wr)?.rounds;

        let bound = theorem1_bound(terrain.len(), terrain.depth(), k, terrain.max_degree());
        println!("{k:>4} {cc_rounds:>10} {wr_rounds:>12} {bound:>10.0}");
        assert!(
            (wr_rounds as f64) <= bound,
            "Proposition 6: the restricted model keeps the Theorem 1 bound"
        );
    }
    println!("\nthe whiteboard-only implementation stayed within the Theorem 1 bound ✓");
    Ok(())
}
