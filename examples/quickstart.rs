//! Quickstart: explore an unknown tree with a team of robots and check
//! the paper's Theorem 1 guarantee on the way out.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bfdn::{theorem1_bound, Bfdn};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A random 5 000-node tree the robots have never seen.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let tree = generators::random_recursive(5_000, &mut rng);
    println!("ground truth: {tree} (hidden from the robots)");

    for k in [1usize, 4, 16, 64] {
        // Breadth-First Depth-Next with k robots.
        let mut algo = Bfdn::new(k);
        let outcome = Simulator::new(&tree, k).run(&mut algo)?;
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        println!(
            "k = {k:>3}: explored in {:>6} rounds \
             (Theorem 1 bound {:>7.0}, 2n/k = {:>6.0}, {} reanchorings)",
            outcome.rounds,
            bound,
            2.0 * tree.len() as f64 / k as f64,
            algo.total_reanchors(),
        );
        assert!((outcome.rounds as f64) <= bound, "Theorem 1 must hold");
    }
    println!("every run stayed within 2n/k + D^2(min(log Δ, log k) + 3) ✓");
    Ok(())
}
