//! A robot fleet sweeps a warehouse floor: a grid graph whose shelving
//! racks are rectangular obstacles — the Section 4.3 setting where
//! robots always know their distance to the loading dock (Manhattan
//! distance on nice grids).
//!
//! ```text
//! cargo run --example warehouse_sweep
//! ```

use bfdn::GraphBfdn;
use bfdn_trees::grid::{GridGraph, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 24x14 floor with three shelving racks.
    let racks = [
        Rect::new(3, 3, 9, 5),
        Rect::new(12, 6, 21, 8),
        Rect::new(5, 9, 16, 11),
    ];
    let grid = GridGraph::new(24, 14, &racks);
    println!("{}", grid.to_ascii()); // D = the loading dock
    let g = grid.graph();
    println!(
        "floor: {} cells, {} aisles (edges), radius {} from the dock, manhattan: {}",
        g.len(),
        g.num_edges(),
        g.radius_from(grid.origin()),
        grid.distances_are_manhattan(),
    );

    for k in [1usize, 4, 12, 32] {
        let outcome = GraphBfdn::explore(g, grid.origin(), k)?;
        println!(
            "k = {k:>2}: swept every aisle in {:>4} rounds \
             ({} non-tree aisles probed+closed, Prop. 9 bound {:.0})",
            outcome.rounds, outcome.closed_edges, outcome.bound,
        );
        assert!((outcome.rounds as f64) <= outcome.bound);
    }
    println!("all sweeps within 2m/k + D^2(min(log Δ, log k) + 3) ✓");
    Ok(())
}
