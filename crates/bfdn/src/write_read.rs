//! Algorithm 2: BFDN under restricted memory and communication
//! (Section 4.1, Proposition 6).
//!
//! In this model a robot may communicate with the central planner **only
//! while standing at the root**. Away from the root it can only
//!
//! * read/update the node-local whiteboard of its current node — the
//!   `PARTITION` routine's sent-port cursor and the list of *finished*
//!   ports (ports from which some robot has returned), and
//! * use its own `Δ + D·log Δ`-bit memory: a stack of port numbers
//!   leading to its anchor plus a snapshot of the anchor's finished
//!   ports, taken when it departs the anchor towards the root.
//!
//! The central planner (Algorithm 2 of the paper) tracks a working depth
//! `d`, the anchor list `A` at that depth, the set `R ⊆ A` of anchors a
//! robot has returned from, the candidate children `A'` and the finished
//! children `R'`. When `A \ R = ∅` every port of every anchor has been
//! sent (a robot leaves its anchor upward only once `PARTITION` is
//! exhausted), so all children of anchors are explored and `A ← A' \ R'`
//! advances the working depth.
//!
//! Implementation notes (documented deviations, none of which leak
//! non-local information):
//!
//! * Nodes are denoted by their [`NodeId`] instead of a port sequence;
//!   the two are in bijection, and the planner only ever names nodes it
//!   could address by a port path.
//! * The planner sits at the root, so the root's whiteboard (sent ports)
//!   is directly visible to it; the root joins `R` as soon as all of its
//!   ports have been sent. This replaces the bootstrap at `d = 0`.

use bfdn_sim::{parallel, Explorer, Move, RoundContext};
use bfdn_trees::{NodeId, PartialTree, Port};
use std::collections::{BTreeSet, HashSet};

/// The whiteboard of one node: which down-ports have been *sent* a robot
/// by `PARTITION` and which are *finished* (a robot returned up through
/// them).
#[derive(Clone, Debug)]
struct NodeLocal {
    /// Port index offset of the first down port (0 at the root, 1
    /// elsewhere).
    off: usize,
    sent: Vec<bool>,
    finished: Vec<bool>,
}

impl NodeLocal {
    fn new(tree: &PartialTree, v: NodeId) -> Self {
        let deg = tree.degree(v);
        let off = usize::from(!v.is_root());
        let downs = deg - off;
        NodeLocal {
            off,
            sent: vec![false; downs],
            finished: vec![false; downs],
        }
    }

    /// `PARTITION(v)`: the highest never-sent down port, marking it sent;
    /// `None` once all ports have been sent (the robot must go up).
    fn partition(&mut self) -> Option<Port> {
        for idx in (0..self.sent.len()).rev() {
            if !self.sent[idx] {
                self.sent[idx] = true;
                return Some(Port::new(idx + self.off));
            }
        }
        None
    }

    fn all_sent(&self) -> bool {
        self.sent.iter().all(|&s| s)
    }

    fn mark_finished(&mut self, port: Port) {
        self.finished[port.index() - self.off] = true;
    }
}

/// What a returning robot carries to the planner.
#[derive(Clone, Debug)]
struct Report {
    anchor: NodeId,
    /// Finished flags of the anchor's down ports at departure time,
    /// indexed from the anchor's first down port.
    finished: Vec<bool>,
    /// Port offset of the anchor (to reconstruct port numbers).
    off: usize,
}

#[derive(Clone, Debug)]
enum RobotState {
    /// Waiting at the root for an assignment.
    AtRoot,
    /// At the root with a pending report to deliver.
    Reporting(Report),
    /// Descending to the anchor through the stacked ports.
    Bf { anchor: NodeId, stack: Vec<Port> },
    /// Depth-next walking inside the anchor's subtree; `rel` is the depth
    /// below the anchor.
    Dn { anchor: NodeId, rel: usize },
    /// Travelling straight up to the root with a report in hand.
    Return(Report),
}

/// Central-planner state (Algorithm 2).
#[derive(Clone, Debug)]
struct Planner {
    /// Working depth `d`.
    depth: usize,
    /// Anchor list `A` (depth `d`).
    anchors: BTreeSet<NodeId>,
    /// `R`: anchors a robot has returned from.
    returned: HashSet<NodeId>,
    /// `A'`: children of anchors, as `(anchor, port)` pairs.
    children: BTreeSet<(NodeId, Port)>,
    /// `R'`: children known finished.
    finished_children: HashSet<(NodeId, Port)>,
    /// Robots currently assigned per anchor, indexed by the dense
    /// [`NodeId`] arena index (grown on demand).
    loads: Vec<u32>,
    /// Exploration declared finished.
    done: bool,
}

impl Planner {
    fn new() -> Self {
        Planner {
            depth: 0,
            anchors: BTreeSet::from([NodeId::ROOT]),
            returned: HashSet::new(),
            children: BTreeSet::new(),
            finished_children: HashSet::new(),
            loads: Vec::new(),
            done: false,
        }
    }

    fn load(&self, v: NodeId) -> u32 {
        self.loads.get(v.index()).copied().unwrap_or(0)
    }

    fn drop_load(&mut self, v: NodeId) {
        if let Some(l) = self.loads.get_mut(v.index()) {
            *l = l.saturating_sub(1);
        }
    }

    fn bump_load(&mut self, v: NodeId) {
        if self.loads.len() <= v.index() {
            self.loads.resize(v.index() + 1, 0);
        }
        self.loads[v.index()] += 1;
    }

    /// Ingests a returning robot's memory.
    fn ingest(&mut self, report: &Report, tree: &PartialTree) {
        self.drop_load(report.anchor);
        // Stale reports (anchor from an older layer) carry no new
        // planner-relevant information.
        if !self.anchors.contains(&report.anchor) {
            return;
        }
        if tree.depth(report.anchor) != self.depth {
            return;
        }
        self.returned.insert(report.anchor);
        for (idx, &fin) in report.finished.iter().enumerate() {
            let pair = (report.anchor, Port::new(idx + report.off));
            self.children.insert(pair);
            if fin {
                self.finished_children.insert(pair);
            }
        }
    }

    /// Advances the working depth when every anchor has been returned
    /// from (Algorithm 2 lines 7–13).
    fn advance_if_ready(&mut self, tree: &PartialTree) {
        if self.done || self.anchors.iter().any(|a| !self.returned.contains(a)) {
            return;
        }
        let fresh: BTreeSet<NodeId> = self
            .children
            .iter()
            .filter(|pair| !self.finished_children.contains(pair))
            .map(|&(a, p)| {
                tree.child_at(a, p)
                    .expect("children of returned anchors are explored")
            })
            .collect();
        if fresh.is_empty() {
            self.done = true;
            return;
        }
        self.depth += 1;
        self.anchors = fresh;
        self.returned.clear();
        self.children.clear();
        self.finished_children.clear();
    }

    /// Picks the anchor of minimum load among `A \ R`.
    fn assign(&mut self) -> Option<NodeId> {
        let pick = self
            .anchors
            .iter()
            .filter(|a| !self.returned.contains(a))
            .min_by_key(|a| (self.load(**a), a.index()))
            .copied()?;
        self.bump_load(pick);
        Some(pick)
    }
}

/// BFDN in the write-read / restricted-communication model
/// (Proposition 6): same guarantee as Theorem 1, achieved while robots
/// communicate only at the root and through node-local whiteboards.
///
/// # Example
///
/// ```
/// use bfdn::WriteReadBfdn;
/// use bfdn_sim::Simulator;
/// use bfdn_trees::generators;
///
/// let tree = generators::comb(10, 4);
/// let k = 5;
/// let mut algo = WriteReadBfdn::new(k);
/// let outcome = Simulator::new(&tree, k).run(&mut algo)?;
/// let bound = bfdn::theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
/// assert!((outcome.rounds as f64) <= bound);
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct WriteReadBfdn {
    k: usize,
    states: Vec<RobotState>,
    /// Node-local whiteboards, indexed by the dense [`NodeId`] arena
    /// index; `None` until a robot first writes at that node.
    whiteboards: Vec<Option<NodeLocal>>,
    planner: Planner,
    reanchors_by_depth: Vec<u64>,
    /// Largest port stack any robot ever held (≤ D).
    max_stack: usize,
    /// Largest finished-port snapshot any robot ever carried (≤ Δ).
    max_snapshot: usize,
    /// Intra-round thread budget; 1 = the sequential per-robot pass.
    threads: usize,
}

/// Phase A's per-robot fill slot for the write-read round: decisions a
/// robot makes from its own memory alone, or the whiteboard/planner
/// interaction it defers to the sequential merge.
#[derive(Clone, Copy, Debug)]
enum WrSlot {
    /// Fully resolved in phase A (a `BF` descent hop or an idle stay).
    Resolved(Move),
    /// Moving up: the move itself is fixed, but marking the parent's
    /// whiteboard port *finished* must interleave with this round's
    /// `PARTITION` snapshots in robot order.
    UpMarking { parent: NodeId, port: Port },
    /// Needs `PARTITION` at its node (whiteboard contention, resolves
    /// in merge order).
    Dn,
    /// Waiting at the root for a planner assignment (load-balanced
    /// `assign` resolves in merge order).
    Assign,
}

impl WriteReadBfdn {
    /// Creates the explorer for `k` robots.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one robot");
        WriteReadBfdn {
            k,
            states: vec![RobotState::AtRoot; k],
            whiteboards: Vec::new(),
            planner: Planner::new(),
            reanchors_by_depth: Vec::new(),
            max_stack: 0,
            max_snapshot: 0,
            threads: parallel::round_threads(),
        }
    }

    /// Sets the intra-round thread budget (clamped to at least 1; the
    /// constructor defaults to the `BFDN_ROUND_THREADS` knob). Budgets
    /// above 1 shard the per-robot pass and merge whiteboard/planner
    /// effects deterministically — identical traces at any budget.
    pub fn with_round_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The intra-round thread budget this explorer runs with.
    pub fn round_threads(&self) -> usize {
        self.threads
    }

    /// Number of robots `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Anchor assignments per depth (the write-read analogue of
    /// [`Bfdn::reanchors_by_depth`](crate::Bfdn::reanchors_by_depth)).
    pub fn reanchors_by_depth(&self) -> &[u64] {
        &self.reanchors_by_depth
    }

    /// The current working depth `d` of the planner.
    pub fn working_depth(&self) -> usize {
        self.planner.depth
    }

    /// Whether the planner has declared exploration finished.
    pub fn planner_done(&self) -> bool {
        self.planner.done
    }

    /// The robot-memory profile actually used over the run: the largest
    /// port stack and the largest finished-port snapshot any robot held.
    ///
    /// Proposition 6 allots each robot `Δ + D·log Δ` bits; this returns
    /// the measured `(stack entries ≤ D, snapshot bits ≤ Δ)` so tests can
    /// assert the implementation stays inside the model's budget.
    pub fn memory_profile(&self) -> (usize, usize) {
        (self.max_stack, self.max_snapshot)
    }

    fn board<'a>(
        whiteboards: &'a mut Vec<Option<NodeLocal>>,
        tree: &PartialTree,
        v: NodeId,
    ) -> &'a mut NodeLocal {
        if whiteboards.len() < tree.capacity() {
            whiteboards.resize_with(tree.capacity(), || None);
        }
        whiteboards[v.index()].get_or_insert_with(|| NodeLocal::new(tree, v))
    }

    /// Selects the up move for a robot at `pos`, marking the parent's
    /// port as finished (the parent observes the robot returning).
    fn go_up(&mut self, tree: &PartialTree, pos: NodeId) -> Move {
        let parent = tree.parent(pos).expect("go_up never called at the root");
        let port = tree.parent_port(pos).expect("non-root has a parent port");
        Self::board(&mut self.whiteboards, tree, parent).mark_finished(port);
        Move::Up
    }

    /// The ports leading from the root to `anchor`, pop-ordered.
    fn stack_to(tree: &PartialTree, anchor: NodeId) -> Vec<Port> {
        let mut ports = Vec::with_capacity(tree.depth(anchor));
        let mut cur = anchor;
        while let Some(port) = tree.parent_port(cur) {
            ports.push(port);
            cur = tree.parent(cur).expect("non-root has a parent");
        }
        ports
    }

    fn record_assignment(&mut self, depth: usize) {
        if self.reanchors_by_depth.len() <= depth {
            self.reanchors_by_depth.resize(depth + 1, 0);
        }
        self.reanchors_by_depth[depth] += 1;
    }
}

impl Explorer for WriteReadBfdn {
    #[allow(clippy::needless_range_loop)]
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        debug_assert_eq!(ctx.k(), self.k, "robot count changed mid-run");
        let tree = ctx.tree;

        // Pass 1: returning robots deliver their memory to the planner.
        for i in 0..self.k {
            if let RobotState::Reporting(report) = &self.states[i] {
                self.planner.ingest(report, tree);
                self.states[i] = RobotState::AtRoot;
            }
        }
        // The planner can read the root's whiteboard directly.
        if !self.planner.returned.contains(&NodeId::ROOT)
            && self.planner.anchors.contains(&NodeId::ROOT)
        {
            let root_board = Self::board(&mut self.whiteboards, tree, NodeId::ROOT);
            if root_board.all_sent() {
                self.planner.returned.insert(NodeId::ROOT);
                let fins = root_board.finished.clone();
                let off = root_board.off;
                self.planner.ingest(
                    &Report {
                        anchor: NodeId::ROOT,
                        finished: fins,
                        off,
                    },
                    tree,
                );
            }
        }
        self.planner.advance_if_ready(tree);

        // Pass 2: per-robot moves — sharded when the thread budget and
        // team size warrant it, the paper's sequential loop otherwise.
        if self.threads > 1 && self.k >= 2 * self.threads {
            self.pass2_sharded(ctx, out);
        } else {
            self.pass2_sequential(ctx, out);
        }
    }

    fn name(&self) -> &str {
        "bfdn-write-read"
    }
}

impl WriteReadBfdn {
    /// Pass 2 of [`Explorer::select_moves`], the paper's sequential
    /// per-robot loop. The sharded pass below must replay its decisions
    /// byte-for-byte.
    #[allow(clippy::needless_range_loop)]
    fn pass2_sequential(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        let tree = ctx.tree;
        for i in 0..self.k {
            let pos = ctx.positions[i];
            out[i] = match std::mem::replace(&mut self.states[i], RobotState::AtRoot) {
                RobotState::AtRoot => {
                    if self.planner.done {
                        self.states[i] = RobotState::AtRoot;
                        Move::Stay
                    } else {
                        match self.planner.assign() {
                            Some(anchor) if anchor.is_root() => {
                                // Bootstrap: anchored at the root itself.
                                self.record_assignment(0);
                                self.states[i] = RobotState::Dn { anchor, rel: 0 };
                                // Fall through to DN behaviour below via a
                                // direct partition call.
                                let board = Self::board(&mut self.whiteboards, tree, pos);
                                match board.partition() {
                                    Some(port) => {
                                        self.states[i] = RobotState::Dn { anchor, rel: 1 };
                                        Move::Down(port)
                                    }
                                    None => {
                                        // Nothing left to hand out; report
                                        // (the planner reads the root board
                                        // itself next round).
                                        self.planner.drop_load(anchor);
                                        self.states[i] = RobotState::AtRoot;
                                        Move::Stay
                                    }
                                }
                            }
                            Some(anchor) => {
                                self.record_assignment(tree.depth(anchor));
                                let mut stack = Self::stack_to(tree, anchor);
                                self.max_stack = self.max_stack.max(stack.len());
                                let port = stack.pop().expect("non-root anchor has a path");
                                self.states[i] = if stack.is_empty() {
                                    RobotState::Dn { anchor, rel: 0 }
                                } else {
                                    RobotState::Bf { anchor, stack }
                                };
                                Move::Down(port)
                            }
                            None => {
                                // No eligible anchor (all returned-from but
                                // stale robots still below): wait.
                                self.states[i] = RobotState::AtRoot;
                                Move::Stay
                            }
                        }
                    }
                }
                RobotState::Reporting(_) => unreachable!("reports delivered in pass 1"),
                RobotState::Bf { anchor, mut stack } => {
                    let port = stack.pop().expect("BF state implies pending hops");
                    self.states[i] = if stack.is_empty() {
                        RobotState::Dn { anchor, rel: 0 }
                    } else {
                        RobotState::Bf { anchor, stack }
                    };
                    Move::Down(port)
                }
                RobotState::Dn { anchor, rel } => self.dn_step(tree, pos, i, anchor, rel),
                RobotState::Return(report) => {
                    if tree.parent(pos) == Some(NodeId::ROOT) {
                        self.states[i] = RobotState::Reporting(report);
                    } else {
                        self.states[i] = RobotState::Return(report);
                    }
                    self.go_up(tree, pos)
                }
            };
        }
    }

    /// Pass 2, sharded: a parallel map over robot index ranges resolves
    /// every decision a robot can make from its own memory (`BF` stack
    /// pops, `Return` transitions) into index-stable slots; a
    /// sequential merge then applies the whiteboard and planner
    /// interactions in robot order, exactly as
    /// [`Self::pass2_sequential`] would; finally the root→anchor port
    /// stacks committed by the merge are built in parallel (pure in the
    /// explored tree).
    fn pass2_sharded(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        let tree = ctx.tree;
        let positions = ctx.positions;
        let planner_done = self.planner.done;
        // Phase A over contiguous robot-state shards.
        let slots: Vec<WrSlot> =
            parallel::par_shards_mut(&mut self.states, self.threads, |first, shard| {
                let mut slots = Vec::with_capacity(shard.len());
                for (offset, state) in shard.iter_mut().enumerate() {
                    let pos = positions[first + offset];
                    let slot = match state {
                        RobotState::AtRoot if planner_done => WrSlot::Resolved(Move::Stay),
                        RobotState::AtRoot => WrSlot::Assign,
                        RobotState::Reporting(_) => unreachable!("reports delivered in pass 1"),
                        RobotState::Bf { .. } => {
                            let RobotState::Bf { anchor, mut stack } =
                                std::mem::replace(state, RobotState::AtRoot)
                            else {
                                unreachable!("matched above");
                            };
                            let port = stack.pop().expect("BF state implies pending hops");
                            *state = if stack.is_empty() {
                                RobotState::Dn { anchor, rel: 0 }
                            } else {
                                RobotState::Bf { anchor, stack }
                            };
                            WrSlot::Resolved(Move::Down(port))
                        }
                        RobotState::Dn { .. } => WrSlot::Dn,
                        RobotState::Return(_) => {
                            let parent = tree
                                .parent(pos)
                                .expect("returning robots are not at the root");
                            let port = tree.parent_port(pos).expect("non-root has a parent port");
                            if parent.is_root() {
                                let RobotState::Return(report) =
                                    std::mem::replace(state, RobotState::AtRoot)
                                else {
                                    unreachable!("matched above");
                                };
                                *state = RobotState::Reporting(report);
                            }
                            WrSlot::UpMarking { parent, port }
                        }
                    };
                    slots.push(slot);
                }
                slots
            })
            .concat();
        // Merge: whiteboard writes and planner assignments in robot
        // order. Non-root anchor assignments defer their O(depth) stack
        // build to the parallel phase C.
        let mut pending_stacks: Vec<(usize, NodeId)> = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let pos = positions[i];
            match slot {
                WrSlot::Resolved(mv) => out[i] = mv,
                WrSlot::UpMarking { parent, port } => {
                    Self::board(&mut self.whiteboards, tree, parent).mark_finished(port);
                    out[i] = Move::Up;
                }
                WrSlot::Dn => {
                    let &RobotState::Dn { anchor, rel } = &self.states[i] else {
                        unreachable!("slot recorded a DN state");
                    };
                    out[i] = self.dn_step(tree, pos, i, anchor, rel);
                }
                WrSlot::Assign => {
                    out[i] = match self.planner.assign() {
                        Some(anchor) if anchor.is_root() => {
                            self.record_assignment(0);
                            self.states[i] = RobotState::Dn { anchor, rel: 0 };
                            let board = Self::board(&mut self.whiteboards, tree, pos);
                            match board.partition() {
                                Some(port) => {
                                    self.states[i] = RobotState::Dn { anchor, rel: 1 };
                                    Move::Down(port)
                                }
                                None => {
                                    self.planner.drop_load(anchor);
                                    self.states[i] = RobotState::AtRoot;
                                    Move::Stay
                                }
                            }
                        }
                        Some(anchor) => {
                            self.record_assignment(tree.depth(anchor));
                            pending_stacks.push((i, anchor));
                            Move::Stay // overwritten in phase C
                        }
                        None => {
                            self.states[i] = RobotState::AtRoot;
                            Move::Stay
                        }
                    };
                }
            }
        }
        // Phase C: build the committed port stacks in parallel and take
        // each robot's first hop.
        if !pending_stacks.is_empty() {
            let stacks =
                parallel::par_map_with_threads(&pending_stacks, self.threads, |&(_, anchor)| {
                    Self::stack_to(tree, anchor)
                });
            for (&(i, anchor), mut stack) in pending_stacks.iter().zip(stacks) {
                self.max_stack = self.max_stack.max(stack.len());
                let port = stack.pop().expect("non-root anchor has a path");
                self.states[i] = if stack.is_empty() {
                    RobotState::Dn { anchor, rel: 0 }
                } else {
                    RobotState::Bf { anchor, stack }
                };
                out[i] = Move::Down(port);
            }
        }
    }

    /// One `DN` step at `pos` for robot `i` (shared by the sequential
    /// loop and the sharded merge): hand out the next `PARTITION` port,
    /// climb while the walk below is unfinished, or snapshot the
    /// anchor's finished ports and head home.
    fn dn_step(
        &mut self,
        tree: &PartialTree,
        pos: NodeId,
        i: usize,
        anchor: NodeId,
        rel: usize,
    ) -> Move {
        let board = Self::board(&mut self.whiteboards, tree, pos);
        match board.partition() {
            Some(port) => {
                self.states[i] = RobotState::Dn {
                    anchor,
                    rel: rel + 1,
                };
                Move::Down(port)
            }
            None if rel > 0 => {
                self.states[i] = RobotState::Dn {
                    anchor,
                    rel: rel - 1,
                };
                self.go_up(tree, pos)
            }
            None => {
                // At the anchor with PARTITION exhausted: snapshot the
                // finished ports and head home.
                let board = Self::board(&mut self.whiteboards, tree, pos);
                let report = Report {
                    anchor,
                    finished: board.finished.clone(),
                    off: board.off,
                };
                self.max_snapshot = self.max_snapshot.max(report.finished.len());
                if pos.is_root() {
                    self.states[i] = RobotState::Reporting(report);
                    Move::Stay
                } else if tree.parent(pos) == Some(NodeId::ROOT) {
                    self.states[i] = RobotState::Reporting(report);
                    self.go_up(tree, pos)
                } else {
                    self.states[i] = RobotState::Return(report);
                    self.go_up(tree, pos)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{theorem1_bound, Bfdn};
    use bfdn_sim::Simulator;
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    fn run_wr(tree: &bfdn_trees::Tree, k: usize) -> (u64, WriteReadBfdn) {
        let mut algo = WriteReadBfdn::new(k);
        let outcome = Simulator::new(tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("write-read bfdn stuck on {tree} with k={k}: {e}"));
        (outcome.rounds, algo)
    }

    #[test]
    fn explores_tiny_trees() {
        for tree in [
            generators::path(1),
            generators::path(6),
            generators::star(5),
            generators::binary(3),
            generators::comb(4, 3),
        ] {
            for k in [1usize, 2, 3, 9] {
                // `run_wr` itself asserts completion: the simulator stops
                // only when every edge is traversed and all robots are
                // home (the planner may still hold undelivered reports at
                // that instant).
                let (rounds, _) = run_wr(&tree, k);
                assert!(rounds > 0);
            }
        }
    }

    #[test]
    fn proposition6_bound_holds_across_families() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for fam in Family::ALL {
            for n in [40usize, 250] {
                let tree = fam.instance(n, &mut rng);
                for k in [1usize, 3, 16] {
                    let (rounds, _) = run_wr(&tree, k);
                    let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
                    assert!(
                        (rounds as f64) <= bound,
                        "{fam} n={} k={k}: {rounds} > {bound}",
                        tree.len()
                    );
                }
            }
        }
    }

    #[test]
    fn comparable_to_complete_communication() {
        // The write-read version pays for layer-by-layer advancement but
        // must stay within the same Theorem 1 envelope; on bushy trees it
        // lands within a small factor of the complete-comm version.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let tree = generators::random_recursive(2000, &mut rng);
        let k = 16;
        let (wr_rounds, _) = run_wr(&tree, k);
        let mut cc = Bfdn::new(k);
        let cc_rounds = Simulator::new(&tree, k).run(&mut cc).unwrap().rounds;
        assert!(
            wr_rounds <= 6 * cc_rounds + 200,
            "write-read {wr_rounds} vs complete {cc_rounds}"
        );
    }

    #[test]
    fn working_depth_advances_layer_by_layer() {
        // On a path a single DN walk finishes everything below the first
        // anchor, so the working depth stays near the top...
        let tree = generators::path(12);
        let (_, algo) = run_wr(&tree, 2);
        assert!(algo.working_depth() >= 1);
        // ...whereas a vine (pendant leaf at every spine node) keeps
        // producing unfinished children, forcing the planner downward.
        let vine = generators::lopsided_vine(10);
        let (_, algo) = run_wr(&vine, 3);
        assert!(
            algo.working_depth() >= 3,
            "depth stalled at {}",
            algo.working_depth()
        );
    }

    #[test]
    fn single_robot_write_read_explores() {
        let tree = generators::binary(4);
        let (rounds, _) = run_wr(&tree, 1);
        // A single robot pays one root round trip per layer at worst.
        assert!(rounds >= 2 * tree.num_edges() as u64);
    }

    #[test]
    fn partition_hands_out_descending_unique_ports() {
        let tree = generators::star(4);
        let pt = {
            // Reveal the root only.
            bfdn_trees::PartialTree::new(tree.len(), tree.degree(NodeId::ROOT))
        };
        let mut board = NodeLocal::new(&pt, NodeId::ROOT);
        let p1 = board.partition().unwrap();
        let p2 = board.partition().unwrap();
        let p3 = board.partition().unwrap();
        let p4 = board.partition().unwrap();
        assert_eq!(
            vec![p1, p2, p3, p4],
            vec![Port::new(3), Port::new(2), Port::new(1), Port::new(0)]
        );
        assert_eq!(board.partition(), None);
        assert!(board.all_sent());
    }
}

#[cfg(test)]
mod planner_tests {
    use super::*;

    /// Reveal: root(2 ports) -> a(2 ports), b(1 port); a -> c(1 port).
    fn sample_tree() -> PartialTree {
        let mut pt = PartialTree::new(8, 2);
        pt.attach(NodeId::ROOT, Port::new(0), NodeId::new(1), 2); // a
        pt.attach(NodeId::ROOT, Port::new(1), NodeId::new(2), 1); // b
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(3), 1); // c
        pt
    }

    #[test]
    fn assign_balances_loads() {
        let mut p = Planner::new();
        p.anchors = BTreeSet::from([NodeId::new(1), NodeId::new(2)]);
        let first = p.assign().unwrap();
        let second = p.assign().unwrap();
        assert_ne!(first, second, "min-load must spread the first two robots");
        let third = p.assign().unwrap();
        assert!(third == first || third == second);
    }

    #[test]
    fn assign_skips_returned_anchors() {
        let mut p = Planner::new();
        p.anchors = BTreeSet::from([NodeId::new(1), NodeId::new(2)]);
        p.returned.insert(NodeId::new(1));
        for _ in 0..4 {
            assert_eq!(p.assign(), Some(NodeId::new(2)));
        }
    }

    #[test]
    fn ingest_tracks_children_and_advance_moves_down() {
        let tree = sample_tree();
        let mut p = Planner::new();
        p.depth = 1;
        p.anchors = BTreeSet::from([NodeId::new(1), NodeId::new(2)]);
        // Robot returns from anchor a: its only down port (to c) is
        // finished; b returns with no down ports.
        p.ingest(
            &Report {
                anchor: NodeId::new(1),
                finished: vec![true],
                off: 1,
            },
            &tree,
        );
        p.ingest(
            &Report {
                anchor: NodeId::new(2),
                finished: vec![],
                off: 1,
            },
            &tree,
        );
        p.advance_if_ready(&tree);
        // Every child is finished: the planner declares completion.
        assert!(p.done);
    }

    #[test]
    fn unfinished_children_become_the_next_layer() {
        let tree = sample_tree();
        let mut p = Planner::new();
        p.depth = 1;
        p.anchors = BTreeSet::from([NodeId::new(1), NodeId::new(2)]);
        p.ingest(
            &Report {
                anchor: NodeId::new(1),
                finished: vec![false], // c not finished
                off: 1,
            },
            &tree,
        );
        p.ingest(
            &Report {
                anchor: NodeId::new(2),
                finished: vec![],
                off: 1,
            },
            &tree,
        );
        p.advance_if_ready(&tree);
        assert!(!p.done);
        assert_eq!(p.depth, 2);
        assert_eq!(p.anchors, BTreeSet::from([NodeId::new(3)]));
    }

    #[test]
    fn stale_reports_are_ignored() {
        let tree = sample_tree();
        let mut p = Planner::new();
        p.depth = 2;
        p.anchors = BTreeSet::from([NodeId::new(3)]);
        // A report about depth-1 node a arrives late.
        p.ingest(
            &Report {
                anchor: NodeId::new(1),
                finished: vec![true],
                off: 1,
            },
            &tree,
        );
        assert!(p.returned.is_empty());
        assert!(p.children.is_empty());
    }

    #[test]
    fn advance_requires_every_anchor_returned() {
        let tree = sample_tree();
        let mut p = Planner::new();
        p.depth = 1;
        p.anchors = BTreeSet::from([NodeId::new(1), NodeId::new(2)]);
        p.ingest(
            &Report {
                anchor: NodeId::new(1),
                finished: vec![false],
                off: 1,
            },
            &tree,
        );
        p.advance_if_ready(&tree);
        assert_eq!(p.depth, 1, "anchor b has not returned yet");
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use bfdn_sim::Simulator;
    use bfdn_trees::generators::Family;
    use rand::SeedableRng;

    /// Proposition 6's memory model: a robot's stack never exceeds the
    /// tree depth and its snapshot never exceeds the maximum degree.
    #[test]
    fn robot_memory_stays_within_the_model_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for fam in Family::ALL {
            let tree = fam.instance(300, &mut rng);
            let k = 6;
            let mut algo = WriteReadBfdn::new(k);
            Simulator::new(&tree, k).run(&mut algo).unwrap();
            let (stack, snapshot) = algo.memory_profile();
            assert!(
                stack <= tree.depth(),
                "{fam}: stack {stack} exceeds D = {}",
                tree.depth()
            );
            assert!(
                snapshot <= tree.max_degree(),
                "{fam}: snapshot {snapshot} exceeds Δ = {}",
                tree.max_degree()
            );
        }
    }
}
