//! Collaborative exploration of non-tree graphs (Section 4.3,
//! Proposition 9).
//!
//! BFDN runs on a general graph after one modification: a robot that
//! traverses a dangling (never-traversed) edge and arrives at a node that
//! is (1) already explored, or (2) not strictly farther from the origin
//! than the edge's first endpoint, goes back where it came from and
//! *closes* the edge — it is never used again. In case (2) the reached
//! node does not count as explored.
//!
//! Under the assumption that robots always know their distance to the
//! origin in the underlying graph (true e.g. for grid graphs with
//! rectangular obstacles, where the distance is the Manhattan distance),
//! the never-closed edges form a breadth-first tree of the graph, which
//! BFDN explores with its usual guarantee; closed edges cost at most two
//! traversals each. Proposition 9: at most
//! `2m/k + D²(min{log Δ, log k} + 3)` rounds for a graph with `m` edges
//! and radius `D`.
//!
//! The exploration loop is self-contained (complete-communication model);
//! the fog of war is maintained in the `Known` structure below, and every
//! decision reads only `Known` plus the current robot's own distance —
//! exactly the information the model grants.
//!
//! # Intra-round sharding
//!
//! Like [`crate::Bfdn`], the selection phase can shard its per-robot
//! loop across threads ([`GraphBfdn::explore_with_threads`]): a parallel
//! phase resolves robot-local decisions (backtrack hops, BF-stack pops)
//! into index-stable slots, unknown-port prefixes are gathered in
//! parallel from the immutable fog of war, and a sequential merge
//! replays the order-dependent reanchors (load scans) and DN claims in
//! robot order — outcomes are identical to the sequential loop at any
//! thread count. The probe-resolution phase mutates `Known` and stays
//! sequential.

use crate::bounds::proposition9_bound;
use bfdn_sim::parallel;
use bfdn_trees::{Graph, NodeId, Port};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// What the team knows about one port of an explored node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum PortStatus {
    /// Never traversed — the graph analogue of a dangling edge.
    #[default]
    Unknown,
    /// The BFS-tree edge towards the origin.
    Parent,
    /// A BFS-tree edge to a child.
    Child(NodeId),
    /// Probed and closed (led to an explored or not-strictly-farther
    /// node).
    Closed,
}

/// Fog-of-war state for the graph setting. All per-node tables are
/// dense arrays indexed by the [`NodeId`] arena index — node count is
/// known up front (it is the ground-truth graph's arena), and exploration
/// touches nodes densely, so flat indexing beats hashing on the per-round
/// path.
#[derive(Clone, Debug)]
struct Known {
    /// Per node: status of each port; `None` while unexplored.
    ports: Vec<Option<Vec<PortStatus>>>,
    /// BFS-tree parent (node, port-at-child-towards-parent); `None` at
    /// the origin and at unexplored nodes.
    parent: Vec<Option<(NodeId, Port)>>,
    /// Depth = known distance to the origin (meaningful once explored).
    depth: Vec<usize>,
    /// Half-edges closed from afar (the far endpoint was unexplored at
    /// closing time); inner vec allocated on first use per node.
    closed_halves: Vec<Vec<bool>>,
    /// Open nodes (≥ 1 unknown port) by depth.
    open_by_depth: Vec<BTreeSet<NodeId>>,
    /// Total unknown ports.
    unknown: usize,
}

impl Known {
    fn new(graph: &Graph, origin: NodeId) -> Self {
        let n = graph.len();
        let mut k = Known {
            ports: vec![None; n],
            parent: vec![None; n],
            depth: vec![0; n],
            closed_halves: vec![Vec::new(); n],
            open_by_depth: Vec::new(),
            unknown: 0,
        };
        k.explore_node(graph, origin, 0, None);
        k
    }

    fn is_explored(&self, v: NodeId) -> bool {
        self.ports[v.index()].is_some()
    }

    fn explore_node(
        &mut self,
        graph: &Graph,
        v: NodeId,
        depth: usize,
        parent: Option<(NodeId, Port)>,
    ) {
        let deg = graph.degree(v);
        let mut statuses = vec![PortStatus::Unknown; deg];
        let mut unknown_here = deg;
        if let Some((_, back)) = parent {
            statuses[back.index()] = PortStatus::Parent;
            unknown_here -= 1;
        }
        let pre_closed = &mut self.closed_halves[v.index()];
        for (p, s) in statuses.iter_mut().enumerate() {
            if *s == PortStatus::Unknown && pre_closed.get(p).copied().unwrap_or(false) {
                *s = PortStatus::Closed;
                unknown_here -= 1;
            }
        }
        // Pre-exploration closes are consumed; free the marks.
        pre_closed.clear();
        pre_closed.shrink_to_fit();
        self.ports[v.index()] = Some(statuses);
        self.depth[v.index()] = depth;
        self.parent[v.index()] = parent;
        self.unknown += unknown_here;
        if self.open_by_depth.len() <= depth {
            self.open_by_depth.resize_with(depth + 1, BTreeSet::new);
        }
        if unknown_here > 0 {
            self.open_by_depth[depth].insert(v);
        }
    }

    fn set_status(&mut self, v: NodeId, p: Port, status: PortStatus) {
        let d = self.depth[v.index()];
        let ports = self.ports[v.index()]
            .as_mut()
            .expect("status of explored node");
        debug_assert_eq!(ports[p.index()], PortStatus::Unknown);
        ports[p.index()] = status;
        self.unknown -= 1;
        if !ports.contains(&PortStatus::Unknown) {
            self.open_by_depth[d].remove(&v);
        }
    }

    /// Closes the half-edge `(v, p)`; works whether or not `v` is
    /// explored yet.
    fn close_half(&mut self, v: NodeId, p: Port) {
        if let Some(ports) = &self.ports[v.index()] {
            if ports[p.index()] == PortStatus::Unknown {
                self.set_status(v, p, PortStatus::Closed);
            }
        } else {
            let marks = &mut self.closed_halves[v.index()];
            if marks.len() <= p.index() {
                marks.resize(p.index() + 1, false);
            }
            marks[p.index()] = true;
        }
    }

    fn unknown_ports(&self, v: NodeId) -> impl Iterator<Item = Port> + '_ {
        self.ports[v.index()]
            .as_deref()
            .expect("unknown ports of explored node")
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == PortStatus::Unknown)
            .map(|(i, _)| Port::new(i))
    }

    fn parent_of(&self, v: NodeId) -> (NodeId, Port) {
        self.parent[v.index()].expect("non-origin explored node")
    }

    fn min_open_depth(&self) -> Option<usize> {
        self.open_by_depth.iter().position(|s| !s.is_empty())
    }
}

/// Per-robot control state.
#[derive(Clone, Debug)]
enum RState {
    /// Descending to the anchor along BFS-tree edges.
    Bf(Vec<Port>),
    /// Depth-next walking.
    Dn,
    /// Returning through `port` after probing a closing edge.
    Backtrack(Port),
}

/// Result of a graph exploration run.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphOutcome {
    /// Rounds until every edge was resolved and all robots returned.
    pub rounds: u64,
    /// Edges that ended up in the breadth-first tree.
    pub tree_edges: u64,
    /// Edges that were probed and closed.
    pub closed_edges: u64,
    /// The Proposition 9 bound for this instance.
    pub bound: f64,
}

impl fmt::Display for GraphOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} tree_edges={} closed_edges={} bound={:.1}",
            self.rounds, self.tree_edges, self.closed_edges, self.bound
        )
    }
}

/// Errors of [`GraphBfdn::explore`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Some node is unreachable from the origin.
    Disconnected,
    /// The safety round limit was exceeded (indicates a bug).
    RoundLimit(u64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Disconnected => write!(f, "graph is not connected from the origin"),
            GraphError::RoundLimit(l) => write!(f, "round limit {l} exceeded"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The BFDN variant for non-tree graphs (Proposition 9).
///
/// # Example
///
/// ```
/// use bfdn::GraphBfdn;
/// use bfdn_trees::grid::{GridGraph, Rect};
///
/// let grid = GridGraph::new(8, 6, &[Rect::new(2, 2, 4, 4)]);
/// let outcome = GraphBfdn::explore(grid.graph(), grid.origin(), 4)?;
/// assert!((outcome.rounds as f64) <= outcome.bound);
/// # Ok::<(), bfdn::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GraphBfdn;

impl GraphBfdn {
    /// Explores `graph` from `origin` with `k` robots; robots know their
    /// distance to the origin at all times (Proposition 9's assumption).
    ///
    /// # Errors
    ///
    /// [`GraphError::Disconnected`] if some node is unreachable from
    /// `origin`; [`GraphError::RoundLimit`] if exploration stalls (a
    /// bug, not an expected outcome).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn explore(graph: &Graph, origin: NodeId, k: usize) -> Result<GraphOutcome, GraphError> {
        Self::explore_with_threads(graph, origin, k, parallel::round_threads())
    }

    /// [`Self::explore`] with an explicit intra-round thread budget
    /// (instead of the `BFDN_ROUND_THREADS` default). `threads == 1`, or
    /// any `k < 2 * threads`, runs the sequential selection loop; the
    /// outcome is identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`Self::explore`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn explore_with_threads(
        graph: &Graph,
        origin: NodeId,
        k: usize,
        threads: usize,
    ) -> Result<GraphOutcome, GraphError> {
        assert!(k >= 1, "need at least one robot");
        let dist_table = graph.bfs_distances(origin);
        if dist_table.iter().any(Option::is_none) {
            return Err(GraphError::Disconnected);
        }
        // `dist(v)` below is only consulted for the node a robot stands
        // on or arrives at — the knowledge Proposition 9 grants.
        let dist = |v: NodeId| dist_table[v.index()].expect("connected");

        let mut loads = vec![0u32; graph.len()];
        loads[origin.index()] = k as u32;
        let mut run = Run {
            graph,
            origin,
            k,
            threads: threads.max(1),
            known: Known::new(graph, origin),
            positions: vec![origin; k],
            states: vec![RState::Dn; k],
            anchors: vec![origin; k],
            loads,
            claims: vec![0u32; graph.len()],
            claimed: Vec::new(),
        };
        let m = graph.num_edges() as u64;
        let radius = graph.radius_from(origin);
        let max_rounds = 64 * (m + 2) * (radius as u64 + 2) + 1024;
        let mut rounds = 0u64;
        let mut closed_edges = 0u64;
        let mut moves: Vec<Option<Port>> = vec![None; k];

        loop {
            let done = run.known.unknown == 0 && run.positions.iter().all(|&p| p == origin);
            if done {
                break;
            }
            if rounds >= max_rounds {
                return Err(GraphError::RoundLimit(max_rounds));
            }
            // Selection phase (as in Algorithm 1).
            moves.iter_mut().for_each(|m| *m = None);
            if run.threads > 1 && k >= 2 * run.threads {
                run.select_sharded(&mut moves);
            } else {
                run.select_sequential(&mut moves);
            }
            for v in run.claimed.drain(..) {
                run.claims[v.index()] = 0;
            }
            // Move phase: apply synchronously; resolve probe arrivals in
            // robot order.
            for (i, mv) in moves.iter().enumerate() {
                let Some(port) = *mv else { continue };
                let u = run.positions[i];
                // Backtracking robots may stand on an unexplored node
                // (case 2) — their return hop is never a probe.
                let was_unknown = run.known.ports[u.index()]
                    .as_ref()
                    .is_some_and(|ps| ps[port.index()] == PortStatus::Unknown);
                let e = graph.endpoint(u, port).expect("valid port");
                run.positions[i] = e.node;
                if !was_unknown {
                    continue;
                }
                // Probe resolution.
                let w = e.node;
                if run.known.is_explored(w) {
                    // Case (1): already explored — close both halves.
                    run.known.set_status(u, port, PortStatus::Closed);
                    run.known.close_half(w, e.back);
                    closed_edges += 1;
                    run.states[i] = RState::Backtrack(e.back);
                } else if dist(w) <= dist(u) {
                    // Case (2): not strictly farther — close; `w` stays
                    // unexplored.
                    run.known.set_status(u, port, PortStatus::Closed);
                    run.known.close_half(w, e.back);
                    closed_edges += 1;
                    run.states[i] = RState::Backtrack(e.back);
                } else {
                    // A BFS-tree edge: `w` becomes explored.
                    run.known.set_status(u, port, PortStatus::Child(w));
                    run.known.explore_node(graph, w, dist(w), Some((u, e.back)));
                }
            }
            rounds += 1;
        }

        Ok(GraphOutcome {
            rounds,
            tree_edges: graph.len() as u64 - 1,
            closed_edges,
            bound: proposition9_bound(graph.num_edges(), radius, k, graph.max_degree()),
        })
    }
}

/// Phase A's per-robot fill slot for the graph round.
#[derive(Clone, Copy, Debug)]
enum GSlot {
    /// The move is fully determined by the robot's own state.
    Resolved(Option<Port>),
    /// At the origin in DN state: needs the sequential reanchor scan.
    Reanchor,
    /// Needs a DN claim at the robot's position.
    Claim,
}

/// Mutable state of one graph exploration run; selection methods live
/// here so the sharded and sequential paths share it.
struct Run<'g> {
    graph: &'g Graph,
    origin: NodeId,
    k: usize,
    threads: usize,
    known: Known,
    positions: Vec<NodeId>,
    states: Vec<RState>,
    anchors: Vec<NodeId>,
    loads: Vec<u32>,
    /// Round-local DN claim counters (see `Bfdn::dn` for the
    /// equivalence argument), reset via the touched list each round.
    claims: Vec<u32>,
    claimed: Vec<NodeId>,
}

impl Run<'_> {
    /// Reanchor for robot `i`: open node of minimum depth, least load.
    /// Order-dependent (reads and writes the shared load table), so both
    /// selection paths call it in robot order.
    fn reanchor(&mut self, i: usize) -> NodeId {
        let new_anchor = match self.known.min_open_depth() {
            Some(d) => {
                let mut best: Option<(u32, NodeId)> = None;
                for v in self.known.open_by_depth[d].iter().copied() {
                    let load = self.loads[v.index()];
                    if load == 0 {
                        best = Some((0, v));
                        break;
                    }
                    if best.is_none_or(|(bl, _)| load < bl) {
                        best = Some((load, v));
                    }
                }
                best.expect("open depth has nodes").1
            }
            None => self.origin,
        };
        let old = self.anchors[i];
        if old != new_anchor {
            self.loads[old.index()] = self.loads[old.index()].saturating_sub(1);
            self.loads[new_anchor.index()] += 1;
            self.anchors[i] = new_anchor;
        }
        new_anchor
    }

    /// The BF descent stack from the origin to `anchor` along BFS-tree
    /// parent links (pure in the fog of war; safe to build in parallel).
    fn bf_stack(known: &Known, graph: &Graph, origin: NodeId, anchor: NodeId) -> Vec<Port> {
        let mut stack = Vec::new();
        let mut cur = anchor;
        while cur != origin {
            let (par, back) = known.parent_of(cur);
            // The port at the parent leading to `cur`:
            let down = graph.endpoint(cur, back).expect("parent edge").back;
            stack.push(down);
            cur = par;
        }
        stack
    }

    /// One DN claim at `pos`: the c-th claimer takes the c-th unknown
    /// port (the scan order is shared, so this equals the old HashSet
    /// logic); `nth` resolves the port from the fog of war directly.
    fn claim(&mut self, pos: NodeId) -> Option<Port> {
        let c = self.claims[pos.index()];
        let chosen = self.known.unknown_ports(pos).nth(c as usize);
        if chosen.is_some() {
            if c == 0 {
                self.claimed.push(pos);
            }
            self.claims[pos.index()] = c + 1;
        }
        chosen
    }

    /// [`Self::claim`] against a pre-gathered unknown-port prefix (the
    /// prefix covers every contender counted for `pos`, so indexing it
    /// equals the sequential `nth` scan).
    fn claim_gathered(&mut self, pos: NodeId, prefix: &[Port]) -> Option<Port> {
        let c = self.claims[pos.index()];
        let chosen = prefix.get(c as usize).copied();
        if chosen.is_some() {
            if c == 0 {
                self.claimed.push(pos);
            }
            self.claims[pos.index()] = c + 1;
        }
        chosen
    }

    /// The move for a robot at `pos` whose DN claim came up empty:
    /// retreat towards the parent, or `⊥` (stay) at the origin.
    fn retreat(&self, pos: NodeId) -> Option<Port> {
        if pos == self.origin {
            None // ⊥
        } else {
            Some(self.known.parent_of(pos).1)
        }
    }

    /// The paper's sequential selection loop. The sharded path must
    /// replay its decisions exactly.
    fn select_sequential(&mut self, moves: &mut [Option<Port>]) {
        for (i, mv) in moves.iter_mut().enumerate().take(self.k) {
            let pos = self.positions[i];
            if let RState::Backtrack(port) = self.states[i] {
                *mv = Some(port);
                self.states[i] = RState::Dn;
                continue;
            }
            let is_bf_empty = matches!(&self.states[i], RState::Bf(s) if s.is_empty());
            if is_bf_empty {
                self.states[i] = RState::Dn;
            }
            if pos == self.origin && matches!(self.states[i], RState::Dn) {
                let new_anchor = self.reanchor(i);
                let stack = Self::bf_stack(&self.known, self.graph, self.origin, new_anchor);
                self.states[i] = RState::Bf(stack);
            }
            match &mut self.states[i] {
                RState::Bf(stack) => {
                    if let Some(port) = stack.pop() {
                        *mv = Some(port);
                        continue;
                    }
                    self.states[i] = RState::Dn;
                }
                RState::Dn => {}
                RState::Backtrack(_) => unreachable!("handled above"),
            }
            // DN: lowest unknown unselected port, else up.
            *mv = match self.claim(pos) {
                Some(p) => Some(p),
                None => self.retreat(pos),
            };
        }
    }

    /// The sharded selection: parallel per-robot resolution into
    /// index-stable slots, parallel unknown-port gathering, then a
    /// sequential merge replaying reanchors and claims in robot order.
    fn select_sharded(&mut self, moves: &mut [Option<Port>]) {
        let positions = &self.positions;
        let origin = self.origin;
        // Phase A over contiguous robot-state shards: resolve everything
        // a robot decides from its own control state.
        let slots: Vec<GSlot> = parallel::par_shards_mut(&mut self.states, self.threads, {
            |first, shard| {
                let mut slots = Vec::with_capacity(shard.len());
                for (offset, state) in shard.iter_mut().enumerate() {
                    let pos = positions[first + offset];
                    let slot = (|| {
                        if let RState::Backtrack(port) = state {
                            let port = *port;
                            *state = RState::Dn;
                            return GSlot::Resolved(Some(port));
                        }
                        if matches!(state, RState::Bf(s) if s.is_empty()) {
                            *state = RState::Dn;
                        }
                        if pos == origin && matches!(state, RState::Dn) {
                            return GSlot::Reanchor;
                        }
                        if let RState::Bf(stack) = state {
                            let port = stack.pop().expect("empty BF normalized above");
                            return GSlot::Resolved(Some(port));
                        }
                        GSlot::Claim
                    })();
                    slots.push(slot);
                }
                slots
            }
        })
        .concat();
        // Gather: per contended node, the prefix of unknown ports long
        // enough to cover every claim that can land there this round.
        // Reanchoring robots may fall through to a claim at the origin,
        // so they count as origin contenders (over-counting only makes
        // the prefix longer).
        let mut caps: HashMap<NodeId, usize> = HashMap::new();
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                GSlot::Claim => *caps.entry(positions[i]).or_insert(0) += 1,
                GSlot::Reanchor => *caps.entry(origin).or_insert(0) += 1,
                GSlot::Resolved(_) => {}
            }
        }
        let mut wanted: Vec<(NodeId, usize)> = caps.into_iter().collect();
        wanted.sort_unstable_by_key(|&(v, _)| v.index());
        let known = &self.known;
        let prefixes: Vec<Vec<Port>> =
            parallel::par_map_with_threads(&wanted, self.threads, |&(v, cap)| {
                known.unknown_ports(v).take(cap).collect()
            });
        let gathered: HashMap<NodeId, Vec<Port>> =
            wanted.iter().map(|&(v, _)| v).zip(prefixes).collect();
        // Merge: reanchors and claims in robot order. Non-origin
        // reanchors defer their O(depth) stack build to phase C.
        let mut pending_stacks: Vec<(usize, NodeId)> = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let pos = self.positions[i];
            match slot {
                GSlot::Resolved(mv) => moves[i] = mv,
                GSlot::Reanchor => {
                    let new_anchor = self.reanchor(i);
                    if new_anchor == origin {
                        // Empty descent: fall through to a DN claim at
                        // the origin, exactly like the sequential loop.
                        self.states[i] = RState::Dn;
                        moves[i] = match self.claim_gathered(pos, &gathered[&pos]) {
                            Some(p) => Some(p),
                            None => self.retreat(pos),
                        };
                    } else {
                        pending_stacks.push((i, new_anchor));
                    }
                }
                GSlot::Claim => {
                    moves[i] = match self.claim_gathered(pos, &gathered[&pos]) {
                        Some(p) => Some(p),
                        None => self.retreat(pos),
                    };
                }
            }
        }
        // Phase C: build the committed descent stacks in parallel and
        // take each robot's first hop.
        if !pending_stacks.is_empty() {
            let known = &self.known;
            let graph = self.graph;
            let stacks =
                parallel::par_map_with_threads(&pending_stacks, self.threads, |&(_, anchor)| {
                    Self::bf_stack(known, graph, origin, anchor)
                });
            for (&(i, _), mut stack) in pending_stacks.iter().zip(stacks) {
                let port = stack.pop().expect("non-origin anchor has a descent");
                self.states[i] = RState::Bf(stack);
                moves[i] = Some(port);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_trees::grid::{GridGraph, Rect};
    use bfdn_trees::GraphBuilder;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
        }
        b.build()
    }

    #[test]
    fn explores_a_cycle() {
        for n in [3usize, 4, 7, 20] {
            for k in [1usize, 2, 5] {
                let g = cycle(n);
                let out = GraphBfdn::explore(&g, NodeId::new(0), k)
                    .unwrap_or_else(|e| panic!("cycle n={n} k={k}: {e}"));
                assert!((out.rounds as f64) <= out.bound, "n={n} k={k}");
                // A cycle has exactly one non-tree edge.
                assert_eq!(out.closed_edges, 1, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn explores_complete_graphs() {
        for n in [3usize, 5, 8] {
            let mut b = GraphBuilder::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    b.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
            let g = b.build();
            for k in [1usize, 4] {
                let out = GraphBfdn::explore(&g, NodeId::new(0), k).unwrap();
                assert!((out.rounds as f64) <= out.bound);
                assert_eq!(
                    out.closed_edges as usize,
                    g.num_edges() - (n - 1),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn explores_grids_with_obstacles() {
        let grids = [
            GridGraph::new(6, 6, &[]),
            GridGraph::new(8, 5, &[Rect::new(2, 1, 4, 3)]),
            GridGraph::new(10, 10, &[Rect::new(1, 1, 3, 8), Rect::new(5, 2, 9, 4)]),
        ];
        for grid in &grids {
            for k in [1usize, 3, 8, 16] {
                let out = GraphBfdn::explore(grid.graph(), grid.origin(), k).unwrap();
                assert!(
                    (out.rounds as f64) <= out.bound,
                    "{}x{} k={k}: {} > {}",
                    grid.width(),
                    grid.height(),
                    out.rounds,
                    out.bound
                );
            }
        }
    }

    #[test]
    fn tree_graphs_close_nothing() {
        // A path as a graph: no cycles, no closed edges.
        let mut b = GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let g = b.build();
        let out = GraphBfdn::explore(&g, NodeId::new(0), 2).unwrap();
        assert_eq!(out.closed_edges, 0);
    }

    #[test]
    fn disconnected_graph_is_an_error() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let g = b.build();
        assert_eq!(
            GraphBfdn::explore(&g, NodeId::new(0), 2),
            Err(GraphError::Disconnected)
        );
    }

    #[test]
    fn every_edge_is_resolved() {
        // tree edges + closed edges == total edges on a mixed graph.
        let grid = GridGraph::new(7, 4, &[Rect::new(3, 1, 4, 3)]);
        let g = grid.graph();
        let out = GraphBfdn::explore(g, grid.origin(), 5).unwrap();
        assert_eq!(out.tree_edges + out.closed_edges, g.num_edges() as u64);
    }

    #[test]
    fn single_node_graph() {
        let g = GraphBuilder::new(1).build();
        let out = GraphBfdn::explore(&g, NodeId::new(0), 3).unwrap();
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn sharded_selection_matches_sequential() {
        let grids = [
            GridGraph::new(6, 6, &[]),
            GridGraph::new(8, 5, &[Rect::new(2, 1, 4, 3)]),
            GridGraph::new(10, 10, &[Rect::new(1, 1, 3, 8), Rect::new(5, 2, 9, 4)]),
        ];
        for (gi, grid) in grids.iter().enumerate() {
            for k in [4usize, 9, 16, 33] {
                let seq =
                    GraphBfdn::explore_with_threads(grid.graph(), grid.origin(), k, 1).unwrap();
                for threads in [2usize, 4, 7] {
                    let par =
                        GraphBfdn::explore_with_threads(grid.graph(), grid.origin(), k, threads)
                            .unwrap();
                    assert_eq!(seq, par, "grid {gi} k={k} threads={threads}");
                }
            }
        }
        for n in [7usize, 20] {
            let g = cycle(n);
            let seq = GraphBfdn::explore_with_threads(&g, NodeId::new(0), 12, 1).unwrap();
            let par = GraphBfdn::explore_with_threads(&g, NodeId::new(0), 12, 4).unwrap();
            assert_eq!(seq, par, "cycle n={n}");
        }
    }
}
