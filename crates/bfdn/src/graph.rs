//! Collaborative exploration of non-tree graphs (Section 4.3,
//! Proposition 9).
//!
//! BFDN runs on a general graph after one modification: a robot that
//! traverses a dangling (never-traversed) edge and arrives at a node that
//! is (1) already explored, or (2) not strictly farther from the origin
//! than the edge's first endpoint, goes back where it came from and
//! *closes* the edge — it is never used again. In case (2) the reached
//! node does not count as explored.
//!
//! Under the assumption that robots always know their distance to the
//! origin in the underlying graph (true e.g. for grid graphs with
//! rectangular obstacles, where the distance is the Manhattan distance),
//! the never-closed edges form a breadth-first tree of the graph, which
//! BFDN explores with its usual guarantee; closed edges cost at most two
//! traversals each. Proposition 9: at most
//! `2m/k + D²(min{log Δ, log k} + 3)` rounds for a graph with `m` edges
//! and radius `D`.
//!
//! The exploration loop is self-contained (complete-communication model);
//! the fog of war is maintained in the `Known` structure below, and every
//! decision reads only `Known` plus the current robot's own distance —
//! exactly the information the model grants.

use crate::bounds::proposition9_bound;
use bfdn_trees::{Graph, NodeId, Port};
use std::collections::BTreeSet;
use std::fmt;

/// What the team knows about one port of an explored node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum PortStatus {
    /// Never traversed — the graph analogue of a dangling edge.
    #[default]
    Unknown,
    /// The BFS-tree edge towards the origin.
    Parent,
    /// A BFS-tree edge to a child.
    Child(NodeId),
    /// Probed and closed (led to an explored or not-strictly-farther
    /// node).
    Closed,
}

/// Fog-of-war state for the graph setting. All per-node tables are
/// dense arrays indexed by the [`NodeId`] arena index — node count is
/// known up front (it is the ground-truth graph's arena), and exploration
/// touches nodes densely, so flat indexing beats hashing on the per-round
/// path.
#[derive(Clone, Debug)]
struct Known {
    /// Per node: status of each port; `None` while unexplored.
    ports: Vec<Option<Vec<PortStatus>>>,
    /// BFS-tree parent (node, port-at-child-towards-parent); `None` at
    /// the origin and at unexplored nodes.
    parent: Vec<Option<(NodeId, Port)>>,
    /// Depth = known distance to the origin (meaningful once explored).
    depth: Vec<usize>,
    /// Half-edges closed from afar (the far endpoint was unexplored at
    /// closing time); inner vec allocated on first use per node.
    closed_halves: Vec<Vec<bool>>,
    /// Open nodes (≥ 1 unknown port) by depth.
    open_by_depth: Vec<BTreeSet<NodeId>>,
    /// Total unknown ports.
    unknown: usize,
}

impl Known {
    fn new(graph: &Graph, origin: NodeId) -> Self {
        let n = graph.len();
        let mut k = Known {
            ports: vec![None; n],
            parent: vec![None; n],
            depth: vec![0; n],
            closed_halves: vec![Vec::new(); n],
            open_by_depth: Vec::new(),
            unknown: 0,
        };
        k.explore_node(graph, origin, 0, None);
        k
    }

    fn is_explored(&self, v: NodeId) -> bool {
        self.ports[v.index()].is_some()
    }

    fn explore_node(
        &mut self,
        graph: &Graph,
        v: NodeId,
        depth: usize,
        parent: Option<(NodeId, Port)>,
    ) {
        let deg = graph.degree(v);
        let mut statuses = vec![PortStatus::Unknown; deg];
        let mut unknown_here = deg;
        if let Some((_, back)) = parent {
            statuses[back.index()] = PortStatus::Parent;
            unknown_here -= 1;
        }
        let pre_closed = &mut self.closed_halves[v.index()];
        for (p, s) in statuses.iter_mut().enumerate() {
            if *s == PortStatus::Unknown && pre_closed.get(p).copied().unwrap_or(false) {
                *s = PortStatus::Closed;
                unknown_here -= 1;
            }
        }
        // Pre-exploration closes are consumed; free the marks.
        pre_closed.clear();
        pre_closed.shrink_to_fit();
        self.ports[v.index()] = Some(statuses);
        self.depth[v.index()] = depth;
        self.parent[v.index()] = parent;
        self.unknown += unknown_here;
        if self.open_by_depth.len() <= depth {
            self.open_by_depth.resize_with(depth + 1, BTreeSet::new);
        }
        if unknown_here > 0 {
            self.open_by_depth[depth].insert(v);
        }
    }

    fn set_status(&mut self, v: NodeId, p: Port, status: PortStatus) {
        let d = self.depth[v.index()];
        let ports = self.ports[v.index()]
            .as_mut()
            .expect("status of explored node");
        debug_assert_eq!(ports[p.index()], PortStatus::Unknown);
        ports[p.index()] = status;
        self.unknown -= 1;
        if !ports.contains(&PortStatus::Unknown) {
            self.open_by_depth[d].remove(&v);
        }
    }

    /// Closes the half-edge `(v, p)`; works whether or not `v` is
    /// explored yet.
    fn close_half(&mut self, v: NodeId, p: Port) {
        if let Some(ports) = &self.ports[v.index()] {
            if ports[p.index()] == PortStatus::Unknown {
                self.set_status(v, p, PortStatus::Closed);
            }
        } else {
            let marks = &mut self.closed_halves[v.index()];
            if marks.len() <= p.index() {
                marks.resize(p.index() + 1, false);
            }
            marks[p.index()] = true;
        }
    }

    fn unknown_ports(&self, v: NodeId) -> impl Iterator<Item = Port> + '_ {
        self.ports[v.index()]
            .as_deref()
            .expect("unknown ports of explored node")
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == PortStatus::Unknown)
            .map(|(i, _)| Port::new(i))
    }

    fn parent_of(&self, v: NodeId) -> (NodeId, Port) {
        self.parent[v.index()].expect("non-origin explored node")
    }

    fn min_open_depth(&self) -> Option<usize> {
        self.open_by_depth.iter().position(|s| !s.is_empty())
    }
}

/// Per-robot control state.
#[derive(Clone, Debug)]
enum RState {
    /// Descending to the anchor along BFS-tree edges.
    Bf(Vec<Port>),
    /// Depth-next walking.
    Dn,
    /// Returning through `port` after probing a closing edge.
    Backtrack(Port),
}

/// Result of a graph exploration run.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphOutcome {
    /// Rounds until every edge was resolved and all robots returned.
    pub rounds: u64,
    /// Edges that ended up in the breadth-first tree.
    pub tree_edges: u64,
    /// Edges that were probed and closed.
    pub closed_edges: u64,
    /// The Proposition 9 bound for this instance.
    pub bound: f64,
}

impl fmt::Display for GraphOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} tree_edges={} closed_edges={} bound={:.1}",
            self.rounds, self.tree_edges, self.closed_edges, self.bound
        )
    }
}

/// Errors of [`GraphBfdn::explore`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Some node is unreachable from the origin.
    Disconnected,
    /// The safety round limit was exceeded (indicates a bug).
    RoundLimit(u64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Disconnected => write!(f, "graph is not connected from the origin"),
            GraphError::RoundLimit(l) => write!(f, "round limit {l} exceeded"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The BFDN variant for non-tree graphs (Proposition 9).
///
/// # Example
///
/// ```
/// use bfdn::GraphBfdn;
/// use bfdn_trees::grid::{GridGraph, Rect};
///
/// let grid = GridGraph::new(8, 6, &[Rect::new(2, 2, 4, 4)]);
/// let outcome = GraphBfdn::explore(grid.graph(), grid.origin(), 4)?;
/// assert!((outcome.rounds as f64) <= outcome.bound);
/// # Ok::<(), bfdn::GraphError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct GraphBfdn;

impl GraphBfdn {
    /// Explores `graph` from `origin` with `k` robots; robots know their
    /// distance to the origin at all times (Proposition 9's assumption).
    ///
    /// # Errors
    ///
    /// [`GraphError::Disconnected`] if some node is unreachable from
    /// `origin`; [`GraphError::RoundLimit`] if exploration stalls (a
    /// bug, not an expected outcome).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn explore(graph: &Graph, origin: NodeId, k: usize) -> Result<GraphOutcome, GraphError> {
        assert!(k >= 1, "need at least one robot");
        let dist_table = graph.bfs_distances(origin);
        if dist_table.iter().any(Option::is_none) {
            return Err(GraphError::Disconnected);
        }
        // `dist(v)` below is only consulted for the node a robot stands
        // on or arrives at — the knowledge Proposition 9 grants.
        let dist = |v: NodeId| dist_table[v.index()].expect("connected");

        let mut known = Known::new(graph, origin);
        let mut positions = vec![origin; k];
        let mut states: Vec<RState> = vec![RState::Dn; k];
        let mut anchors = vec![origin; k];
        let mut loads = vec![0u32; graph.len()];
        loads[origin.index()] = k as u32;
        // Round-local DN claim counters (see `Bfdn::dn` for the
        // equivalence argument), reset via the touched list each round.
        let mut claims = vec![0u32; graph.len()];
        let mut claimed: Vec<NodeId> = Vec::new();
        let m = graph.num_edges() as u64;
        let radius = graph.radius_from(origin);
        let max_rounds = 64 * (m + 2) * (radius as u64 + 2) + 1024;
        let mut rounds = 0u64;
        let mut closed_edges = 0u64;

        loop {
            let done = known.unknown == 0 && positions.iter().all(|&p| p == origin);
            if done {
                break;
            }
            if rounds >= max_rounds {
                return Err(GraphError::RoundLimit(max_rounds));
            }
            // Selection phase (sequential, as in Algorithm 1).
            let mut moves: Vec<Option<Port>> = vec![None; k];
            for i in 0..k {
                let pos = positions[i];
                if let RState::Backtrack(port) = states[i] {
                    moves[i] = Some(port);
                    states[i] = RState::Dn;
                    continue;
                }
                let is_bf_empty = matches!(&states[i], RState::Bf(s) if s.is_empty());
                if is_bf_empty {
                    states[i] = RState::Dn;
                }
                if pos == origin && matches!(states[i], RState::Dn) {
                    // Reanchor: open node of minimum depth, least load.
                    let new_anchor = match known.min_open_depth() {
                        Some(d) => {
                            let mut best: Option<(u32, NodeId)> = None;
                            for v in known.open_by_depth[d].iter().copied() {
                                let load = loads[v.index()];
                                if load == 0 {
                                    best = Some((0, v));
                                    break;
                                }
                                if best.is_none_or(|(bl, _)| load < bl) {
                                    best = Some((load, v));
                                }
                            }
                            best.expect("open depth has nodes").1
                        }
                        None => origin,
                    };
                    let old = anchors[i];
                    if old != new_anchor {
                        loads[old.index()] = loads[old.index()].saturating_sub(1);
                        loads[new_anchor.index()] += 1;
                        anchors[i] = new_anchor;
                    }
                    // Build the BF stack along BFS-tree parent links.
                    let mut stack = Vec::new();
                    let mut cur = new_anchor;
                    while cur != origin {
                        let (par, back) = known.parent_of(cur);
                        // The port at the parent leading to `cur`:
                        let down = graph.endpoint(cur, back).expect("parent edge").back;
                        stack.push(down);
                        cur = par;
                    }
                    states[i] = RState::Bf(stack);
                }
                match &mut states[i] {
                    RState::Bf(stack) => {
                        if let Some(port) = stack.pop() {
                            moves[i] = Some(port);
                            continue;
                        }
                        states[i] = RState::Dn;
                    }
                    RState::Dn => {}
                    RState::Backtrack(_) => unreachable!("handled above"),
                }
                // DN: lowest unknown unselected port, else up. The c-th
                // claimer at a node takes its c-th unknown port (the scan
                // order is shared, so this equals the old HashSet logic).
                let c = claims[pos.index()];
                let chosen = known.unknown_ports(pos).nth(c as usize);
                if chosen.is_some() {
                    if c == 0 {
                        claimed.push(pos);
                    }
                    claims[pos.index()] = c + 1;
                }
                moves[i] = match chosen {
                    Some(p) => Some(p),
                    None => {
                        if pos == origin {
                            None // ⊥
                        } else {
                            Some(known.parent_of(pos).1)
                        }
                    }
                };
            }
            for v in claimed.drain(..) {
                claims[v.index()] = 0;
            }
            // Move phase: apply synchronously; resolve probe arrivals in
            // robot order.
            for i in 0..k {
                let Some(port) = moves[i] else { continue };
                let u = positions[i];
                // Backtracking robots may stand on an unexplored node
                // (case 2) — their return hop is never a probe.
                let was_unknown = known.ports[u.index()]
                    .as_ref()
                    .is_some_and(|ps| ps[port.index()] == PortStatus::Unknown);
                let e = graph.endpoint(u, port).expect("valid port");
                positions[i] = e.node;
                if !was_unknown {
                    continue;
                }
                // Probe resolution.
                let w = e.node;
                if known.is_explored(w) {
                    // Case (1): already explored — close both halves.
                    known.set_status(u, port, PortStatus::Closed);
                    known.close_half(w, e.back);
                    closed_edges += 1;
                    states[i] = RState::Backtrack(e.back);
                } else if dist(w) <= dist(u) {
                    // Case (2): not strictly farther — close; `w` stays
                    // unexplored.
                    known.set_status(u, port, PortStatus::Closed);
                    known.close_half(w, e.back);
                    closed_edges += 1;
                    states[i] = RState::Backtrack(e.back);
                } else {
                    // A BFS-tree edge: `w` becomes explored.
                    known.set_status(u, port, PortStatus::Child(w));
                    known.explore_node(graph, w, dist(w), Some((u, e.back)));
                }
            }
            rounds += 1;
        }

        Ok(GraphOutcome {
            rounds,
            tree_edges: graph.len() as u64 - 1,
            closed_edges,
            bound: proposition9_bound(graph.num_edges(), radius, k, graph.max_degree()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_trees::grid::{GridGraph, Rect};
    use bfdn_trees::GraphBuilder;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
        }
        b.build()
    }

    #[test]
    fn explores_a_cycle() {
        for n in [3usize, 4, 7, 20] {
            for k in [1usize, 2, 5] {
                let g = cycle(n);
                let out = GraphBfdn::explore(&g, NodeId::new(0), k)
                    .unwrap_or_else(|e| panic!("cycle n={n} k={k}: {e}"));
                assert!((out.rounds as f64) <= out.bound, "n={n} k={k}");
                // A cycle has exactly one non-tree edge.
                assert_eq!(out.closed_edges, 1, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn explores_complete_graphs() {
        for n in [3usize, 5, 8] {
            let mut b = GraphBuilder::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    b.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
            let g = b.build();
            for k in [1usize, 4] {
                let out = GraphBfdn::explore(&g, NodeId::new(0), k).unwrap();
                assert!((out.rounds as f64) <= out.bound);
                assert_eq!(
                    out.closed_edges as usize,
                    g.num_edges() - (n - 1),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn explores_grids_with_obstacles() {
        let grids = [
            GridGraph::new(6, 6, &[]),
            GridGraph::new(8, 5, &[Rect::new(2, 1, 4, 3)]),
            GridGraph::new(10, 10, &[Rect::new(1, 1, 3, 8), Rect::new(5, 2, 9, 4)]),
        ];
        for grid in &grids {
            for k in [1usize, 3, 8, 16] {
                let out = GraphBfdn::explore(grid.graph(), grid.origin(), k).unwrap();
                assert!(
                    (out.rounds as f64) <= out.bound,
                    "{}x{} k={k}: {} > {}",
                    grid.width(),
                    grid.height(),
                    out.rounds,
                    out.bound
                );
            }
        }
    }

    #[test]
    fn tree_graphs_close_nothing() {
        // A path as a graph: no cycles, no closed edges.
        let mut b = GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(NodeId::new(i), NodeId::new(i + 1));
        }
        let g = b.build();
        let out = GraphBfdn::explore(&g, NodeId::new(0), 2).unwrap();
        assert_eq!(out.closed_edges, 0);
    }

    #[test]
    fn disconnected_graph_is_an_error() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        let g = b.build();
        assert_eq!(
            GraphBfdn::explore(&g, NodeId::new(0), 2),
            Err(GraphError::Disconnected)
        );
    }

    #[test]
    fn every_edge_is_resolved() {
        // tree edges + closed edges == total edges on a mixed graph.
        let grid = GridGraph::new(7, 4, &[Rect::new(3, 1, 4, 3)]);
        let g = grid.graph();
        let out = GraphBfdn::explore(g, grid.origin(), 5).unwrap();
        assert_eq!(out.tree_edges + out.closed_edges, g.num_edges() as u64);
    }

    #[test]
    fn single_node_graph() {
        let g = GraphBuilder::new(1).build();
        let out = GraphBfdn::explore(&g, NodeId::new(0), 3).unwrap();
        assert_eq!(out.rounds, 0);
    }
}
