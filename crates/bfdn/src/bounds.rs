//! The paper's runtime guarantees as executable formulas.
//!
//! Every experiment checks measured round counts against these bounds;
//! they must therefore be transcribed exactly (natural logarithms, the
//! `+3` constants, etc.).

/// Theorem 1: BFDN explores any tree with `n` nodes, depth `D` and
/// maximum degree `Δ` using `k` robots within
/// `2n/k + D²·(min{log Δ, log k} + 3)` rounds.
///
/// # Example
///
/// ```
/// let b = bfdn::theorem1_bound(1000, 10, 16, 3);
/// assert!(b >= 2.0 * 1000.0 / 16.0);
/// ```
pub fn theorem1_bound(n: usize, depth: usize, k: usize, max_degree: usize) -> f64 {
    let d = depth as f64;
    let log = log_min(k, max_degree);
    2.0 * n as f64 / k as f64 + d * d * (log + 3.0)
}

/// Proposition 7: under adversarial break-downs, all edges are visited
/// once the average number of allowed moves per robot reaches
/// `2n/k + D²·(log k + 3)` (the `log Δ` improvement is forfeited).
pub fn proposition7_bound(n: usize, depth: usize, k: usize) -> f64 {
    let d = depth as f64;
    2.0 * n as f64 / k as f64 + d * d * ((k.max(1) as f64).ln() + 3.0)
}

/// Proposition 9: the graph variant explores a graph with `m` edges,
/// radius `D` and maximum degree `Δ` within
/// `2m/k + D²·(min{log Δ, log k} + 3)` rounds.
pub fn proposition9_bound(m: usize, radius: usize, k: usize, max_degree: usize) -> f64 {
    let d = radius as f64;
    2.0 * m as f64 / k as f64 + d * d * (log_min(k, max_degree) + 3.0)
}

/// Theorem 10: `BFDN_ℓ` explores within
/// `4n/k^{1/ℓ} + 2^{ℓ+1}·(ℓ + 1 + min{log Δ, log(k)/ℓ})·D^{1+1/ℓ}` rounds.
///
/// # Panics
///
/// Panics if `ell == 0`.
pub fn theorem10_bound(n: usize, depth: usize, k: usize, max_degree: usize, ell: u32) -> f64 {
    assert!(ell >= 1, "ℓ must be at least 1");
    let l = ell as f64;
    let d = depth as f64;
    let k_f = k.max(1) as f64;
    let log = ((max_degree.max(1) as f64).ln()).min(k_f.ln() / l);
    4.0 * n as f64 / k_f.powf(1.0 / l)
        + 2f64.powf(l + 1.0) * (l + 1.0 + log) * d.powf(1.0 + 1.0 / l)
}

/// Lemma 2: during a BFDN run, the number of reanchorings at any fixed
/// depth `d ∈ {1, …, D-1}` is at most `k·(min{log k, log Δ} + 3)`.
pub fn lemma2_bound(k: usize, max_degree: usize) -> f64 {
    k as f64 * (log_min(k, max_degree) + 3.0)
}

/// The offline lower bound `max{2n/k, 2D}` on traversing all edges and
/// returning (Section 1).
pub fn offline_lower_bound(n: usize, depth: usize, k: usize) -> f64 {
    let edges = (n.saturating_sub(1)) as f64;
    (2.0 * edges / k as f64).max(2.0 * depth as f64)
}

fn log_min(k: usize, max_degree: usize) -> f64 {
    ((k.max(1) as f64).ln()).min((max_degree.max(1) as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_uses_smaller_log() {
        // Δ = 2 caps the log term below log k.
        let narrow = theorem1_bound(100, 10, 1024, 2);
        let wide = theorem1_bound(100, 10, 1024, 1024);
        assert!(narrow < wide);
    }

    #[test]
    fn theorem10_at_ell1_is_within_factor_4_of_theorem1() {
        // For ℓ = 1 Theorem 10 reads 4n/k + 4(2 + min{log Δ, log k})·D².
        let t1 = theorem1_bound(10_000, 50, 64, 64);
        let t10 = theorem10_bound(10_000, 50, 64, 64, 1);
        assert!(t10 <= 4.0 * t1 + 1e-9);
    }

    #[test]
    fn theorem10_improves_depth_dependence() {
        // Deep skinny tree: n = 2D, large k. Larger ℓ helps.
        let n = 200_000;
        let d = 100_000;
        let k = 4096;
        let b1 = theorem10_bound(n, d, k, 3, 1);
        let b2 = theorem10_bound(n, d, k, 3, 2);
        assert!(b2 < b1);
    }

    #[test]
    fn offline_lower_bound_regimes() {
        // Work-dominated.
        assert_eq!(offline_lower_bound(1001, 5, 10), 200.0);
        // Depth-dominated.
        assert_eq!(offline_lower_bound(11, 10, 10), 20.0);
    }

    #[test]
    fn proposition7_drops_delta() {
        // Prop 7 ignores Δ: equals Theorem 1 with Δ = ∞.
        let p7 = proposition7_bound(500, 8, 32);
        let t1 = theorem1_bound(500, 8, 32, usize::MAX >> 1);
        assert!((p7 - t1).abs() < 1e-6);
    }

    #[test]
    fn lemma2_scale() {
        assert!((lemma2_bound(1, 1) - 3.0).abs() < 1e-12);
        assert!(lemma2_bound(100, 100) > 100.0 * 4.0);
    }
}
