//! Algorithm 1: Breadth-First Depth-Next in the complete-communication
//! model, plus the break-down-robust variant of Section 4.2 and the
//! configurable ablation variants benchmarked by the workspace.
//!
//! # Intra-round sharding
//!
//! Within a round, robots act independently given the shared view
//! (Section 2's synchronous model), so selection decomposes into a
//! parallel map over robot index ranges plus a sequential merge of the
//! order-dependent state. [`Bfdn`] exploits that when built with a
//! round-thread budget > 1 ([`BfdnBuilder::round_threads`], defaulting
//! to the `BFDN_ROUND_THREADS` environment knob):
//!
//! 1. **Phase A** (parallel, [`parallel::par_shards_mut`]): each shard
//!    reconciles its robots' scripted walks and resolves every decision
//!    that depends only on that robot's own state — walk pops, blocked
//!    robots — into an index-stable slot per robot.
//! 2. **Gather** (parallel): for each distinct node where some robot
//!    needs a depth-next edge, the dangling-port prefix is scanned once
//!    instead of once per robot.
//! 3. **Merge** (sequential, in selection order): reanchors (which
//!    mutate the shared load table, the RNG, and the event stream) and
//!    depth-next claims (which race per node) are applied in exactly
//!    the order the sequential loop would, so traces, metrics, and
//!    event streams are byte-identical at any thread count.
//! 4. **Phase C** (parallel): the `BF` descents the merge committed to
//!    are materialised per robot — path construction is pure given the
//!    chosen anchor.
//!
//! With a budget of 1 the original sequential loop runs unchanged; the
//! `flat_differential` suite pins the two paths to identical traces.

use bfdn_obs::{Event, EventSink, NullSink};
use bfdn_sim::{parallel, Explorer, Move, RoundContext};
use bfdn_trees::{NodeId, PartialTree, Port};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How `Reanchor` picks among the minimum-depth open nodes.
///
/// The paper's rule is [`ReanchorRule::LeastLoaded`] — it is what makes
/// the balls-in-urns analysis (Theorem 3, hence Lemma 2 and Theorem 1)
/// go through. The others are ablation foils.
#[derive(Clone, Debug, Default)]
pub enum ReanchorRule {
    /// The paper's rule: the candidate with the fewest anchored robots.
    #[default]
    LeastLoaded,
    /// Always the first candidate (smallest node id).
    FirstCandidate,
    /// Cycle through candidates regardless of load.
    RoundRobin,
    /// A uniformly random candidate (seeded).
    Random(u64),
}

/// The order in which robots make their sequential selections each round
/// (Algorithm 1's `for i = 1 to k`). An ablation knob: the analysis is
/// insensitive to it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionOrder {
    /// Always `0..k` (the paper's loop).
    #[default]
    Fixed,
    /// Rotate the starting robot every round.
    Rotating,
}

/// One scripted hop of a relocation walk.
#[derive(Clone, Copy, Debug)]
enum Step {
    Up,
    Down(Port),
}

impl Step {
    /// The move this hop performs.
    fn as_move(self) -> Move {
        match self {
            Step::Up => Move::Up,
            Step::Down(port) => Move::Down(port),
        }
    }
}

/// Per-robot state, consolidated so the round loop can hand each shard
/// a disjoint `&mut [Robot]` window.
#[derive(Clone, Debug)]
struct Robot {
    /// Current anchor `v_i`.
    anchor: NodeId,
    /// Pending scripted hops (popped from the back): the `BF` descent,
    /// or a shortcut/LCA relocation walk.
    walk: Vec<Step>,
    /// The scripted hop this robot committed to last round, with its
    /// origin — used to reconcile when a post-selection adversary
    /// (Remark 8, [`Simulator::run_post`](bfdn_sim::Simulator::run_post))
    /// cancels a move after selection.
    last_intent: Option<(NodeId, Step)>,
}

/// Phase A's index-stable per-robot fill slot: everything a robot can
/// decide from its own state alone, or the order-dependent step it
/// defers to the merge.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Blocked by the adversary (robust variant): takes no part in
    /// selection this round.
    Skip,
    /// Fully resolved in phase A (a scripted walk hop).
    Resolved(Move),
    /// Walk exhausted at this node: needs a depth-next claim, which
    /// races with other robots here and resolves in merge order.
    Dn(NodeId),
    /// At the root with an empty walk: needs `Reanchor`, which mutates
    /// the shared load table and resolves in merge order.
    Reanchor,
}

/// Configures a [`Bfdn`] variant.
///
/// # Example
///
/// ```
/// use bfdn::{Bfdn, ReanchorRule};
/// let algo = Bfdn::builder(8)
///     .reanchor_rule(ReanchorRule::LeastLoaded)
///     .shortcut(true)
///     .build();
/// assert_eq!(algo.k(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct BfdnBuilder {
    k: usize,
    rule: ReanchorRule,
    order: SelectionOrder,
    shortcut: bool,
    robust: bool,
    round_threads: Option<usize>,
}

impl BfdnBuilder {
    /// Sets the reanchoring rule (default: the paper's least-loaded).
    pub fn reanchor_rule(mut self, rule: ReanchorRule) -> Self {
        self.rule = rule;
        self
    }

    /// Sets the per-round robot selection order (default: fixed).
    pub fn selection_order(mut self, order: SelectionOrder) -> Self {
        self.order = order;
        self
    }

    /// When `true`, a robot that finishes its depth-next walk reanchors
    /// from its current anchor through the shortest explored path (via
    /// the lowest common ancestor) instead of returning to the root
    /// first. Valid only in the complete-communication model — the paper
    /// keeps the root return precisely so the write-read planner works
    /// (Section 2) — and benchmarked as the `ablation_shortcut` arm.
    pub fn shortcut(mut self, shortcut: bool) -> Self {
        self.shortcut = shortcut;
        self
    }

    /// When `true`, the selection loop iterates only over robots the
    /// movement adversary allows to move (the Section 4.2 modification).
    pub fn robust(mut self, robust: bool) -> Self {
        self.robust = robust;
        self
    }

    /// Sets the intra-round thread budget (clamped to at least 1). With
    /// a budget of 1 the round loop is the paper's sequential `for i =
    /// 1 to k`; with more, the loop shards over robot index ranges and
    /// merges deterministically — same moves, traces, and metrics at
    /// any budget. Defaults to the `BFDN_ROUND_THREADS` environment
    /// knob ([`parallel::round_threads`], itself defaulting to 1).
    pub fn round_threads(mut self, threads: usize) -> Self {
        self.round_threads = Some(threads.max(1));
        self
    }

    /// Builds the explorer.
    pub fn build(self) -> Bfdn {
        let rng = match self.rule {
            ReanchorRule::Random(seed) => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Bfdn {
            k: self.k,
            robots: vec![
                Robot {
                    anchor: NodeId::ROOT,
                    walk: Vec::new(),
                    last_intent: None,
                };
                self.k
            ],
            // Slot 0 is the root; the table grows to the arena capacity
            // on the first round.
            loads: vec![self.k as u32],
            dn_claims: Vec::new(),
            dn_claimed: Vec::new(),
            reanchors_by_depth: Vec::new(),
            rule: self.rule,
            order: self.order,
            shortcut: self.shortcut,
            respect_allowed: self.robust,
            rng,
            rr_counter: 0,
            threads: self.round_threads.unwrap_or_else(parallel::round_threads),
        }
    }
}

/// The Breadth-First Depth-Next explorer (Algorithm 1 of the paper).
///
/// Behaviour per robot: when located at the root, the robot is
/// (re)anchored by procedure `Reanchor` to an open node of minimum depth
/// with the least number of anchored robots; it then reaches the anchor
/// through explored edges in a series of breadth-first (`BF`) moves;
/// from there it performs depth-next (`DN`) moves — through an adjacent
/// dangling edge not selected by another robot if one exists, one step
/// towards the root otherwise — until it is back at the root.
///
/// **Theorem 1.** Exploration finishes within
/// `2n/k + D²(min{log Δ, log k} + 3)` rounds.
///
/// The explorer counts its `Reanchor` calls per returned depth, which is
/// what Lemma 2 bounds (experiment E4). Ablation variants (reanchor
/// rule, selection order, shortcut relocation) are available through
/// [`Bfdn::builder`].
///
/// # Example
///
/// ```
/// use bfdn::Bfdn;
/// use bfdn_sim::Simulator;
/// use bfdn_trees::generators;
///
/// let tree = generators::caterpillar(20, 3);
/// let k = 8;
/// let mut algo = Bfdn::new(k);
/// let outcome = Simulator::new(&tree, k).run(&mut algo)?;
/// let bound = bfdn::theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
/// assert!((outcome.rounds as f64) <= bound);
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Bfdn {
    k: usize,
    /// Per-robot state (anchor `v_i`, scripted walk, committed hop),
    /// kept in one vector so round sharding hands out disjoint windows.
    robots: Vec<Robot>,
    /// `n_v`: number of robots currently anchored at each node, indexed
    /// by the dense [`NodeId`] arena index (grown to the tree's capacity
    /// on the first round; unexplored nodes sit at zero).
    loads: Vec<u32>,
    /// Per-node count of dangling ports claimed by `DN` this round —
    /// reusable scratch, reset via `dn_claimed` after selection instead
    /// of reallocating.
    dn_claims: Vec<u32>,
    /// Nodes with a non-zero `dn_claims` entry this round.
    dn_claimed: Vec<NodeId>,
    /// `Reanchor` calls that returned an anchor at each depth.
    reanchors_by_depth: Vec<u64>,
    rule: ReanchorRule,
    order: SelectionOrder,
    shortcut: bool,
    /// Iterate only over robots allowed to move (the Section 4.2
    /// modification).
    respect_allowed: bool,
    rng: Option<StdRng>,
    rr_counter: usize,
    /// Intra-round thread budget; 1 = the sequential selection loop.
    threads: usize,
}

impl Bfdn {
    /// Creates the paper's explorer for `k` robots (standard setting:
    /// every robot moves every round).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Bfdn::builder(k).build()
    }

    /// Creates the break-down-robust variant (Proposition 7): the
    /// selection loop iterates only over robots the adversary allows to
    /// move, so blocked robots neither reanchor nor reserve dangling
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new_robust(k: usize) -> Self {
        Bfdn::builder(k).robust(true).build()
    }

    /// Starts configuring a variant.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn builder(k: usize) -> BfdnBuilder {
        assert!(k >= 1, "need at least one robot");
        BfdnBuilder {
            k,
            rule: ReanchorRule::default(),
            order: SelectionOrder::default(),
            shortcut: false,
            robust: false,
            round_threads: None,
        }
    }

    /// Number of robots `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// `Reanchor` calls that returned an anchor at each depth (index =
    /// depth). Lemma 2 bounds every entry at depth ≥ 1 by
    /// `k·(min{log k, log Δ} + 3)`.
    pub fn reanchors_by_depth(&self) -> &[u64] {
        &self.reanchors_by_depth
    }

    /// Total `Reanchor` calls over the run.
    pub fn total_reanchors(&self) -> u64 {
        self.reanchors_by_depth.iter().sum()
    }

    /// Current anchor of robot `i`.
    pub fn anchor(&self, i: usize) -> NodeId {
        self.robots[i].anchor
    }

    /// The intra-round thread budget this explorer was built with.
    pub fn round_threads(&self) -> usize {
        self.threads
    }

    /// Picks among the minimum-depth open candidates per the configured
    /// rule.
    fn pick_candidate(&mut self, tree: &PartialTree, depth: usize) -> NodeId {
        match &self.rule {
            ReanchorRule::LeastLoaded => {
                // Least-loaded candidate, ties broken by node id. Nodes
                // with zero load win immediately (candidates are scanned
                // in id order).
                let mut best: Option<(u32, NodeId)> = None;
                for v in tree.open_nodes_at_depth(depth) {
                    let load = self.loads[v.index()];
                    if load == 0 {
                        best = Some((0, v));
                        break;
                    }
                    if best.is_none_or(|(bl, _)| load < bl) {
                        best = Some((load, v));
                    }
                }
                best.expect("an open depth has an open node").1
            }
            ReanchorRule::FirstCandidate => tree
                .open_nodes_at_depth(depth)
                .next()
                .expect("an open depth has an open node"),
            ReanchorRule::RoundRobin => {
                let candidates: Vec<NodeId> = tree.open_nodes_at_depth(depth).collect();
                let pick = candidates[self.rr_counter % candidates.len()];
                self.rr_counter = self.rr_counter.wrapping_add(1);
                pick
            }
            ReanchorRule::Random(_) => {
                let candidates: Vec<NodeId> = tree.open_nodes_at_depth(depth).collect();
                let rng = self.rng.as_mut().expect("random rule carries an rng");
                candidates[rng.random_range(0..candidates.len())]
            }
        }
    }

    /// Procedure `Reanchor(i)`: pick an open node of minimum depth; the
    /// root if the tree is explored. Updates loads and counters, and
    /// emits [`Event::Reanchor`] exactly when `reanchors_by_depth` is
    /// incremented — the trailing root-return is neither counted nor
    /// reported.
    fn reanchor(&mut self, i: usize, tree: &PartialTree, sink: &mut dyn EventSink) -> NodeId {
        let new_anchor = match tree.min_open_depth() {
            Some(depth) => {
                let v = self.pick_candidate(tree, depth);
                if self.reanchors_by_depth.len() <= depth {
                    self.reanchors_by_depth.resize(depth + 1, 0);
                }
                self.reanchors_by_depth[depth] += 1;
                if sink.enabled() {
                    sink.emit(&Event::Reanchor {
                        robot: i as u32,
                        depth: depth as u32,
                        anchor: v.index() as u32,
                    });
                }
                v
            }
            None => NodeId::ROOT,
        };
        let old = self.robots[i].anchor;
        if old != new_anchor {
            self.loads[old.index()] = self.loads[old.index()].saturating_sub(1);
            self.loads[new_anchor.index()] += 1;
            self.robots[i].anchor = new_anchor;
        }
        new_anchor
    }

    /// The `BF` descent from the root to `anchor`, pop-ordered.
    fn descent(tree: &PartialTree, anchor: NodeId) -> Vec<Step> {
        let mut steps = Vec::with_capacity(tree.depth(anchor));
        let mut cur = anchor;
        while let Some(port) = tree.parent_port(cur) {
            // Walking up collects deepest-first — exactly pop order.
            steps.push(Step::Down(port));
            cur = tree.parent(cur).expect("non-root has a parent");
        }
        steps
    }

    /// A relocation walk from `from` to `to` through explored edges (up
    /// to the LCA, then down), pop-ordered.
    fn lca_walk(tree: &PartialTree, from: NodeId, to: NodeId) -> Vec<Step> {
        let mut a = from;
        let mut b = to;
        let mut downs: Vec<Port> = Vec::new();
        let mut ups = 0usize;
        while tree.depth(a) > tree.depth(b) {
            a = tree.parent(a).expect("deeper node has a parent");
            ups += 1;
        }
        while tree.depth(b) > tree.depth(a) {
            downs.push(tree.parent_port(b).expect("deeper node has a parent port"));
            b = tree.parent(b).expect("deeper node has a parent");
        }
        while a != b {
            a = tree.parent(a).expect("non-root has a parent");
            ups += 1;
            downs.push(tree.parent_port(b).expect("non-root has a parent port"));
            b = tree.parent(b).expect("non-root has a parent");
        }
        // Pop order: ups execute first, so they go last.
        let mut steps: Vec<Step> = downs.into_iter().map(Step::Down).collect();
        steps.extend(std::iter::repeat_n(Step::Up, ups));
        steps
    }

    /// Procedure `DN(i)`: take an adjacent dangling edge not selected by
    /// another robot this round, otherwise go up.
    ///
    /// Within a round every robot standing at `pos` scans the same
    /// dangling-port list in the same (increasing) order, so "first port
    /// not selected by an earlier robot" is exactly "the `c`-th dangling
    /// port" where `c` robots claimed one here already — a per-node
    /// counter replaces the old `HashSet<(NodeId, Port)>`.
    fn dn(
        pos: NodeId,
        tree: &PartialTree,
        claims: &mut [u32],
        claimed: &mut Vec<NodeId>,
    ) -> Option<Move> {
        let c = claims[pos.index()];
        let port = tree.dangling_ports(pos).nth(c as usize)?;
        if c == 0 {
            claimed.push(pos);
        }
        claims[pos.index()] = c + 1;
        Some(Move::Down(port))
    }

    /// [`Self::dn`] against the pre-gathered dangling-port prefixes:
    /// the `c`-th dangling port comes from the gather when the prefix
    /// covers it, from a direct scan otherwise (a prefix shorter than
    /// its request cap means the iterator was exhausted — definitively
    /// no port). Claim bookkeeping is identical, so interleaving
    /// gathered and direct claims at one node stays consistent.
    fn dn_gathered(
        pos: NodeId,
        tree: &PartialTree,
        gathered: &HashMap<NodeId, (usize, Vec<Port>)>,
        claims: &mut [u32],
        claimed: &mut Vec<NodeId>,
    ) -> Option<Move> {
        let c = claims[pos.index()] as usize;
        let port = match gathered.get(&pos) {
            Some((_, ports)) if c < ports.len() => Some(ports[c]),
            Some((cap, ports)) if ports.len() < *cap => None,
            _ => tree.dangling_ports(pos).nth(c),
        }?;
        if c == 0 {
            claimed.push(pos);
        }
        claims[pos.index()] = (c + 1) as u32;
        Some(Move::Down(port))
    }

    /// The paper's sequential selection loop (`for i = 1 to k`), run
    /// when the round-thread budget is 1. The sharded path below must
    /// replay these decisions byte-for-byte.
    fn select_sequential(
        &mut self,
        ctx: &RoundContext<'_>,
        out: &mut [Move],
        sink: &mut dyn EventSink,
        start: usize,
    ) {
        for i in 0..self.k {
            if let Some((from, step)) = self.robots[i].last_intent.take() {
                if ctx.positions[i] == from {
                    self.robots[i].walk.push(step);
                }
            }
        }
        for idx in 0..self.k {
            let i = (start + idx) % self.k;
            if self.respect_allowed && !ctx.allowed[i] {
                continue; // blocked robots take no part in selection
            }
            let pos = ctx.positions[i];
            if self.robots[i].walk.is_empty() && !self.shortcut && pos.is_root() {
                let anchor = self.reanchor(i, ctx.tree, sink);
                self.robots[i].walk = Self::descent(ctx.tree, anchor);
            }
            out[i] = match self.robots[i].walk.pop() {
                Some(step) => {
                    self.robots[i].last_intent = Some((pos, step));
                    step.as_move()
                }
                None => match Self::dn(pos, ctx.tree, &mut self.dn_claims, &mut self.dn_claimed) {
                    Some(mv) => mv,
                    None if self.shortcut && (pos == self.robots[i].anchor || pos.is_root()) => {
                        // Shortcut variant: relocate directly from the
                        // exhausted anchor through the LCA path.
                        let anchor = self.reanchor(i, ctx.tree, sink);
                        self.robots[i].walk = Self::lca_walk(ctx.tree, pos, anchor);
                        match self.robots[i].walk.pop() {
                            Some(step) => {
                                self.robots[i].last_intent = Some((pos, step));
                                step.as_move()
                            }
                            None => Move::Stay, // anchored where it stands
                        }
                    }
                    None => Move::Up,
                },
            };
        }
    }

    /// The sharded round loop: parallel per-robot resolution into
    /// index-stable slots, a parallel dangling-port gather, a
    /// sequential merge in selection order, and a parallel descent
    /// build for the anchors the merge committed to. Equivalent to
    /// [`Self::select_sequential`] decision for decision — the
    /// order-dependent state (loads, RNG, claim counters, the event
    /// stream) is only ever touched from the merge.
    fn select_sharded(
        &mut self,
        ctx: &RoundContext<'_>,
        out: &mut [Move],
        sink: &mut dyn EventSink,
        start: usize,
    ) {
        let tree = ctx.tree;
        let positions = ctx.positions;
        let allowed = ctx.allowed;
        let respect_allowed = self.respect_allowed;
        let shortcut = self.shortcut;
        // Phase A: reconcile last round's committed hops and resolve
        // everything robot-local. Shards are contiguous robot windows;
        // concatenating per-shard slot vectors in shard order yields
        // one slot per robot, in robot order.
        let slots: Vec<Slot> =
            parallel::par_shards_mut(&mut self.robots, self.threads, |first, shard| {
                let mut slots = Vec::with_capacity(shard.len());
                for (offset, robot) in shard.iter_mut().enumerate() {
                    let i = first + offset;
                    if let Some((from, step)) = robot.last_intent.take() {
                        if positions[i] == from {
                            robot.walk.push(step);
                        }
                    }
                    if respect_allowed && !allowed[i] {
                        slots.push(Slot::Skip);
                        continue;
                    }
                    let pos = positions[i];
                    if robot.walk.is_empty() && !shortcut && pos.is_root() {
                        slots.push(Slot::Reanchor);
                        continue;
                    }
                    slots.push(match robot.walk.pop() {
                        Some(step) => {
                            robot.last_intent = Some((pos, step));
                            Slot::Resolved(step.as_move())
                        }
                        None => Slot::Dn(pos),
                    });
                }
                slots
            })
            .concat();
        // Gather: scan each contested node's dangling-port prefix once,
        // in parallel, instead of once per robot in the merge. The cap
        // is the number of robots contending there — claims cannot
        // outrun it.
        let mut caps: HashMap<NodeId, usize> = HashMap::new();
        for slot in &slots {
            if let Slot::Dn(pos) = slot {
                *caps.entry(*pos).or_insert(0) += 1;
            }
        }
        let mut wanted: Vec<(NodeId, usize)> = caps.into_iter().collect();
        wanted.sort_unstable_by_key(|&(v, _)| v.index());
        let lists = parallel::par_map_with_threads(&wanted, self.threads, |&(v, cap)| {
            tree.dangling_ports(v).take(cap).collect::<Vec<Port>>()
        });
        let gathered: HashMap<NodeId, (usize, Vec<Port>)> = wanted
            .into_iter()
            .zip(lists)
            .map(|((v, cap), ports)| (v, (cap, ports)))
            .collect();
        // Merge: walk the slots in selection order, applying the
        // order-dependent effects exactly as the sequential loop would.
        let mut pending_descents: Vec<(usize, NodeId)> = Vec::new();
        for idx in 0..self.k {
            let i = (start + idx) % self.k;
            match slots[i] {
                Slot::Skip => {}
                Slot::Resolved(mv) => out[i] = mv,
                Slot::Reanchor => {
                    let anchor = self.reanchor(i, tree, sink);
                    if anchor.is_root() {
                        // Empty descent: the sequential loop falls
                        // through to `DN` at the root this round.
                        out[i] = match Self::dn_gathered(
                            NodeId::ROOT,
                            tree,
                            &gathered,
                            &mut self.dn_claims,
                            &mut self.dn_claimed,
                        ) {
                            Some(mv) => mv,
                            None => Move::Up,
                        };
                    } else {
                        // The descent is pure in (tree, anchor): defer
                        // the O(depth) build to the parallel phase C.
                        pending_descents.push((i, anchor));
                    }
                }
                Slot::Dn(pos) => {
                    out[i] = match Self::dn_gathered(
                        pos,
                        tree,
                        &gathered,
                        &mut self.dn_claims,
                        &mut self.dn_claimed,
                    ) {
                        Some(mv) => mv,
                        None if shortcut && (pos == self.robots[i].anchor || pos.is_root()) => {
                            let anchor = self.reanchor(i, tree, sink);
                            self.robots[i].walk = Self::lca_walk(tree, pos, anchor);
                            match self.robots[i].walk.pop() {
                                Some(step) => {
                                    self.robots[i].last_intent = Some((pos, step));
                                    step.as_move()
                                }
                                None => Move::Stay, // anchored where it stands
                            }
                        }
                        None => Move::Up,
                    };
                }
            }
        }
        // Phase C: materialise the committed descents in parallel; the
        // first hop each reanchored robot takes is the walk's tail.
        if !pending_descents.is_empty() {
            let walks =
                parallel::par_map_with_threads(&pending_descents, self.threads, |&(_, anchor)| {
                    Self::descent(tree, anchor)
                });
            for (&(i, _), mut walk) in pending_descents.iter().zip(walks) {
                let step = walk
                    .pop()
                    .expect("a non-root anchor has a non-empty descent");
                let robot = &mut self.robots[i];
                robot.walk = walk;
                robot.last_intent = Some((positions[i], step));
                out[i] = step.as_move();
            }
        }
    }
}

impl Explorer for Bfdn {
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        self.select_moves_observed(ctx, out, &mut NullSink);
    }

    fn select_moves_observed(
        &mut self,
        ctx: &RoundContext<'_>,
        out: &mut [Move],
        sink: &mut dyn EventSink,
    ) {
        debug_assert_eq!(ctx.k(), self.k, "robot count changed mid-run");
        // Size the dense per-node tables once; the arena capacity is
        // fixed for the lifetime of a run.
        let cap = ctx.tree.capacity();
        if self.loads.len() < cap {
            self.loads.resize(cap, 0);
        }
        if self.dn_claims.len() < cap {
            self.dn_claims.resize(cap, 0);
        }
        let start = match self.order {
            SelectionOrder::Fixed => 0,
            SelectionOrder::Rotating => (ctx.round as usize) % self.k,
        };
        // Sharding only pays for itself with enough robots per shard;
        // below that, take the sequential loop verbatim.
        if self.threads > 1 && self.k >= 2 * self.threads {
            self.select_sharded(ctx, out, sink, start);
        } else {
            self.select_sequential(ctx, out, sink, start);
        }
        // Reset the round-local claim counters without touching the rest
        // of the (mostly zero) table.
        for v in self.dn_claimed.drain(..) {
            self.dn_claims[v.index()] = 0;
        }
    }

    fn name(&self) -> &str {
        match (self.respect_allowed, self.shortcut) {
            (true, _) => "bfdn-robust",
            (false, true) => "bfdn-shortcut",
            (false, false) => "bfdn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lemma2_bound, theorem1_bound};
    use bfdn_sim::{Simulator, StopCondition};
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    fn run_bfdn(tree: &bfdn_trees::Tree, k: usize) -> (u64, Bfdn) {
        let mut algo = Bfdn::new(k);
        let outcome = Simulator::new(tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("bfdn stuck on {tree}: {e}"));
        (outcome.rounds, algo)
    }

    #[test]
    fn explores_tiny_trees() {
        for tree in [
            generators::path(1),
            generators::path(5),
            generators::star(4),
            generators::binary(3),
        ] {
            for k in [1usize, 2, 3, 8] {
                let (rounds, _) = run_bfdn(&tree, k);
                assert!(rounds > 0);
            }
        }
    }

    #[test]
    fn single_robot_bfdn_is_dfs_fast() {
        let tree = generators::path(30);
        let (rounds, _) = run_bfdn(&tree, 1);
        assert_eq!(rounds, 60);
    }

    #[test]
    fn theorem1_bound_holds_across_families() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for fam in Family::ALL {
            for n in [50usize, 300] {
                let tree = fam.instance(n, &mut rng);
                for k in [1usize, 2, 7, 32] {
                    let (rounds, _) = run_bfdn(&tree, k);
                    let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
                    assert!(
                        (rounds as f64) <= bound,
                        "{fam} n={} k={k}: {rounds} > {bound}",
                        tree.len()
                    );
                }
            }
        }
    }

    #[test]
    fn lemma2_bound_holds_per_depth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for fam in [
            Family::Comb,
            Family::RandomRecursive,
            Family::UniformLabeled,
        ] {
            let tree = fam.instance(400, &mut rng);
            for k in [4usize, 16] {
                let (_, algo) = run_bfdn(&tree, k);
                let bound = lemma2_bound(k, tree.max_degree());
                for (d, &count) in algo.reanchors_by_depth().iter().enumerate().skip(1) {
                    assert!(
                        (count as f64) <= bound,
                        "{fam} k={k} depth {d}: {count} reanchors > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn many_robots_on_star_finish_in_two_rounds_per_wave() {
        let tree = generators::star(16);
        let (rounds, _) = run_bfdn(&tree, 16);
        assert_eq!(rounds, 2);
    }

    #[test]
    fn overhead_term_shrinks_with_k_on_bushy_trees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let tree = generators::random_recursive(4000, &mut rng);
        let (r1, _) = run_bfdn(&tree, 1);
        let (r16, _) = run_bfdn(&tree, 16);
        assert!(r16 * 4 < r1, "r1={r1} r16={r16}");
    }

    #[test]
    fn robust_variant_ignores_blocked_robots() {
        use bfdn_sim::{BurstStall, RandomStall};
        let tree = generators::comb(15, 4);
        let k = 6;
        for schedule in [0, 1] {
            let mut algo = Bfdn::new_robust(k);
            let mut sim = Simulator::new(&tree, k);
            let outcome = match schedule {
                0 => sim.run_with(
                    &mut algo,
                    &mut RandomStall::new(0.3, 5),
                    StopCondition::Explored,
                ),
                _ => sim.run_with(
                    &mut algo,
                    &mut BurstStall::new(7, 3),
                    StopCondition::Explored,
                ),
            }
            .expect("robust bfdn must finish");
            assert!(outcome.rounds > 0);
        }
    }

    #[test]
    fn anchors_start_at_root() {
        let algo = Bfdn::new(3);
        for i in 0..3 {
            assert_eq!(algo.anchor(i), NodeId::ROOT);
        }
    }

    #[test]
    fn reanchor_counts_are_recorded() {
        let tree = generators::comb(10, 3);
        let (_, algo) = run_bfdn(&tree, 4);
        assert!(algo.total_reanchors() > 0);
        assert!(!algo.reanchors_by_depth().is_empty());
    }

    #[test]
    fn all_reanchor_rules_explore_everything() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let tree = generators::uniform_labeled(400, &mut rng);
        let k = 8;
        for rule in [
            ReanchorRule::LeastLoaded,
            ReanchorRule::FirstCandidate,
            ReanchorRule::RoundRobin,
            ReanchorRule::Random(11),
        ] {
            let mut algo = Bfdn::builder(k).reanchor_rule(rule.clone()).build();
            let outcome = Simulator::new(&tree, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("{rule:?}: {e}"));
            assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
        }
    }

    #[test]
    fn rotating_selection_order_changes_nothing_essential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let tree = generators::random_recursive(500, &mut rng);
        let k = 8;
        let mut fixed = Bfdn::new(k);
        let fr = Simulator::new(&tree, k).run(&mut fixed).unwrap().rounds;
        let mut rot = Bfdn::builder(k)
            .selection_order(SelectionOrder::Rotating)
            .build();
        let rr = Simulator::new(&tree, k).run(&mut rot).unwrap().rounds;
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        assert!((fr as f64) <= bound && (rr as f64) <= bound);
    }

    #[test]
    fn shortcut_variant_explores_and_usually_saves_rounds() {
        // Deep caterpillar: root returns dominate, shortcutting helps.
        let tree = generators::caterpillar(120, 8);
        let k = 8;
        let mut plain = Bfdn::new(k);
        let pr = Simulator::new(&tree, k).run(&mut plain).unwrap().rounds;
        let mut short = Bfdn::builder(k).shortcut(true).build();
        let outcome = Simulator::new(&tree, k).run(&mut short).unwrap();
        assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
        assert!(
            outcome.rounds <= pr,
            "shortcut ({}) should not lose to root-returns ({pr}) here",
            outcome.rounds
        );
    }
}
