//! Breadth-First Depth-Next (BFDN): collaborative exploration of unknown
//! trees by `k` robots, after Cosson, Massoulié and Viennot (PODC 2023).
//!
//! The crate implements the paper's contribution end to end:
//!
//! * [`Bfdn`] — Algorithm 1 in the complete-communication model, with the
//!   Theorem 1 guarantee `2n/k + D²(min{log Δ, log k} + 3)`, and its
//!   break-down-robust variant (Proposition 7),
//! * [`WriteReadBfdn`] — Algorithm 2: the restricted-memory /
//!   write-read-communication implementation in which robots only talk to
//!   a central planner while standing at the root and use the local
//!   `PARTITION` routine elsewhere (Proposition 6),
//! * [`GraphBfdn`] — the non-tree extension with edge closing for robots
//!   that know their distance to the origin (Proposition 9),
//! * [`BfdnL`] — the recursive `BFDN_ℓ` built from depth-bounded BFDN
//!   instances through the divide-depth functor (Theorem 10),
//! * [`theorem1_bound`] and friends — the paper's guarantees as
//!   executable formulas, asserted by the test-suite on every run.
//!
//! # Quickstart
//!
//! ```
//! use bfdn::Bfdn;
//! use bfdn_sim::Simulator;
//! use bfdn_trees::generators;
//!
//! let tree = generators::comb(30, 5); // unknown to the robots
//! let k = 8;
//! let mut algo = Bfdn::new(k);
//! let outcome = Simulator::new(&tree, k).run(&mut algo)?;
//! assert!(
//!     (outcome.rounds as f64)
//!         <= bfdn::theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree())
//! );
//! # Ok::<(), bfdn_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod complete;
mod graph;
mod recursive;
mod write_read;

pub use bounds::{
    lemma2_bound, offline_lower_bound, proposition7_bound, proposition9_bound, theorem10_bound,
    theorem1_bound,
};
pub use complete::{Bfdn, BfdnBuilder, ReanchorRule, SelectionOrder};
pub use graph::{GraphBfdn, GraphError, GraphOutcome};
pub use recursive::BfdnL;
pub use write_read::WriteReadBfdn;
