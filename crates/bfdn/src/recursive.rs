//! `BFDN_ℓ`: the recursive version of BFDN with improved dependence on
//! the depth `D` (Section 5, Theorem 10).
//!
//! The construction stacks three layers:
//!
//! * **`BFDN₁(k*, k, d)`** ([`Leaf`]) — Algorithm 1 restricted to anchors
//!   of depth at most `d` below the instance's local root. Robots that
//!   find no eligible anchor become *inactive* and wait at the local
//!   root; robots already exploring deeper sub-trees stay active until
//!   their sub-tree is finished (Claim 5 guarantees each unfinished deep
//!   sub-tree hosts exactly one robot).
//! * **The divide-depth functor** ([`Divide`], Algorithm 3) — runs
//!   `n_iter` iterations; each iteration partitions the robots into
//!   `n_team` teams, walks fresh team members to their sub-tree root
//!   (through explored edges, via lowest common ancestors), and runs one
//!   child instance per sub-tree in parallel until the overall number of
//!   active robots drops below `k*`; the anchors of the surviving active
//!   robots become the sub-tree roots of the next iteration.
//! * **Definition 13** ([`BfdnL`]) — runs `BFDN_ℓ(k^{1/ℓ}, K, d_j)` for
//!   the escalating depths `d_j = 2^{jℓ}`, interrupting each call right
//!   after its last iteration, with `K = ⌊k^{1/ℓ}⌋^ℓ` robots.
//!
//! **Theorem 10.** `BFDN_ℓ` explores within
//! `4n/k^{1/ℓ} + 2^{ℓ+1}(ℓ + 1 + min{log Δ, log(k)/ℓ})·D^{1+1/ℓ}` rounds.
//!
//! Interrupt decisions are taken at round *starts* (settled positions),
//! so reported anchors always lie on the path from the root to the
//! robot's position. Once the tree is fully explored all robots walk
//! straight home.
//!
//! # Intra-round sharding
//!
//! The top-level [`Divide`]'s child instances own disjoint robot sets
//! and disjoint sub-trees, so with a thread budget
//! ([`BfdnL::with_round_threads`], default `BFDN_ROUND_THREADS`) their
//! `step`s run on worker threads, each writing `(robot, move)` pairs
//! into a private [`MoveOut`] buffer that is drained afterwards — the
//! indices are disjoint, so the result is identical to the sequential
//! fan at any thread count. Nested divides and `ℓ = 1` (a single
//! top-level [`Leaf`], whose claim counters are order-dependent) stay
//! sequential.

use bfdn_sim::{parallel, Explorer, Move, RoundContext};
use bfdn_trees::{NodeId, PartialTree, Port};
use std::collections::{BTreeSet, HashSet};

/// Where a stepped instance writes its robots' moves: directly into the
/// simulator's slice, or into an index-tagged buffer when child
/// instances run on worker threads.
enum MoveOut<'a> {
    Direct(&'a mut [Move]),
    Buffer(&'a mut Vec<(usize, Move)>),
}

impl MoveOut<'_> {
    #[inline]
    fn set(&mut self, i: usize, mv: Move) {
        match self {
            MoveOut::Direct(out) => out[i] = mv,
            MoveOut::Buffer(buf) => buf.push((i, mv)),
        }
    }
}

/// What an interrupted instance hands back to its parent.
#[derive(Clone, Debug, Default)]
struct Report {
    /// Active robots with the sub-tree root (anchor) they own.
    active: Vec<(usize, NodeId)>,
    /// Open nodes known to the instance, as `(depth, node)`.
    open: Vec<(usize, NodeId)>,
}

/// One step of a rebalancing walk.
#[derive(Clone, Copy, Debug)]
enum Step {
    Up,
    Down(Port),
}

/// Computes the walk from `from` to `to` through explored edges (up to
/// the LCA, then down), in execution order.
fn walk_path(tree: &PartialTree, from: NodeId, to: NodeId) -> Vec<Step> {
    // Ascend both to the common depth, then in lockstep.
    let mut a = from;
    let mut b = to;
    let mut ups = 0usize;
    let mut downs: Vec<Port> = Vec::new();
    while tree.depth(a) > tree.depth(b) {
        a = tree.parent(a).expect("deeper node has a parent");
        ups += 1;
    }
    while tree.depth(b) > tree.depth(a) {
        downs.push(tree.parent_port(b).expect("deeper node has a parent port"));
        b = tree.parent(b).expect("deeper node has a parent");
    }
    while a != b {
        a = tree.parent(a).expect("non-root has a parent");
        ups += 1;
        downs.push(tree.parent_port(b).expect("non-root has a parent port"));
        b = tree.parent(b).expect("non-root has a parent");
    }
    let mut steps = Vec::with_capacity(ups + downs.len());
    for _ in 0..ups {
        steps.push(Step::Up);
    }
    for port in downs.into_iter().rev() {
        steps.push(Step::Down(port));
    }
    steps
}

/// Ancestor of `v` at depth `target` (or `v` itself if not deeper).
fn ancestor_at(tree: &PartialTree, v: NodeId, target: usize) -> NodeId {
    let mut cur = v;
    while tree.depth(cur) > target {
        cur = tree.parent(cur).expect("depth > 0 has a parent");
    }
    cur
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum LState {
    /// Waiting at the local root — no eligible anchor.
    Inactive,
    /// Descending to the anchor.
    Bf(Vec<Port>),
    /// Depth-next walking.
    Dn,
}

/// `BFDN₁(k*, k, d)` on the sub-tree rooted at `root`, with anchors
/// capped at absolute depth `limit`.
///
/// Teams are tiny (`k' = k/k*` robots) and anchor sets no larger, so
/// per-robot state lives in slot-aligned vectors parallel to `robots`
/// and per-anchor loads in a small association list — linear scans at
/// this size beat hashing.
#[derive(Clone, Debug)]
struct Leaf {
    root: NodeId,
    limit: usize,
    robots: Vec<usize>,
    /// Per-slot state, parallel to `robots`.
    states: Vec<LState>,
    /// Per-slot anchor, parallel to `robots`.
    anchors: Vec<NodeId>,
    /// Robots currently assigned per anchor.
    loads: Vec<(NodeId, u32)>,
    /// Open nodes of the sub-tree, keyed `(depth, node)`.
    open: BTreeSet<(usize, NodeId)>,
    /// Dangling traversals selected last round, to fold into `open` once
    /// the moves have been applied.
    pending: Vec<(NodeId, Port)>,
    /// Per-node count of dangling ports claimed this round (scratch,
    /// cleared at the top of each `step`).
    claims: Vec<(NodeId, u32)>,
}

fn load_of(loads: &[(NodeId, u32)], v: NodeId) -> u32 {
    loads
        .iter()
        .find(|&&(u, _)| u == v)
        .map(|&(_, l)| l)
        .unwrap_or(0)
}

fn bump_load(loads: &mut Vec<(NodeId, u32)>, v: NodeId) {
    match loads.iter_mut().find(|(u, _)| *u == v) {
        Some((_, l)) => *l += 1,
        None => loads.push((v, 1)),
    }
}

fn drop_load(loads: &mut Vec<(NodeId, u32)>, v: NodeId) {
    if let Some(p) = loads.iter().position(|&(u, _)| u == v) {
        if loads[p].1 <= 1 {
            loads.swap_remove(p);
        } else {
            loads[p].1 -= 1;
        }
    }
}

impl Leaf {
    fn create(
        root: NodeId,
        limit: usize,
        team: &[usize],
        adopted: &[(usize, NodeId)],
        open: Vec<(usize, NodeId)>,
    ) -> Self {
        let mut states = Vec::with_capacity(team.len());
        let mut anchors = Vec::with_capacity(team.len());
        let mut loads: Vec<(NodeId, u32)> = Vec::new();
        for &r in team {
            let anchor = adopted
                .iter()
                .find(|&&(id, _)| id == r)
                .map(|&(_, a)| a)
                .unwrap_or(root);
            states.push(LState::Dn);
            anchors.push(anchor);
            bump_load(&mut loads, anchor);
        }
        Leaf {
            root,
            limit,
            robots: team.to_vec(),
            states,
            anchors,
            loads,
            open: open.into_iter().collect(),
            pending: Vec::new(),
            claims: Vec::new(),
        }
    }

    /// Folds last round's dangling traversals into the open set. Must run
    /// before any decision that reads `open` (step or interrupt).
    fn sync(&mut self, tree: &PartialTree) {
        for (from, port) in self.pending.drain(..) {
            let child = tree
                .child_at(from, port)
                .expect("selected dangling moves are applied");
            if tree.is_open(child) {
                self.open.insert((tree.depth(child), child));
            }
            if !tree.is_open(from) {
                self.open.remove(&(tree.depth(from), from));
            }
        }
    }

    fn reanchor(&mut self, slot: usize) -> Option<NodeId> {
        let (min_depth, _) = self.open.first().copied()?;
        if min_depth > self.limit {
            return None;
        }
        let mut best: Option<(u32, NodeId)> = None;
        for &(d, v) in self.open.range((min_depth, NodeId::ROOT)..) {
            if d != min_depth {
                break;
            }
            let load = load_of(&self.loads, v);
            if load == 0 {
                best = Some((0, v));
                break;
            }
            if best.is_none_or(|(bl, _)| load < bl) {
                best = Some((load, v));
            }
        }
        let (_, v) = best.expect("open depth has nodes");
        self.set_anchor(slot, v);
        Some(v)
    }

    fn set_anchor(&mut self, slot: usize, v: NodeId) {
        let old = self.anchors[slot];
        if old != v {
            drop_load(&mut self.loads, old);
            bump_load(&mut self.loads, v);
            self.anchors[slot] = v;
        }
    }

    /// Ports from the local root down to `anchor`, pop-ordered.
    fn stack_to(&self, tree: &PartialTree, anchor: NodeId) -> Vec<Port> {
        let mut ports = Vec::new();
        let mut cur = anchor;
        while cur != self.root {
            ports.push(tree.parent_port(cur).expect("below the local root"));
            cur = tree.parent(cur).expect("below the local root");
        }
        ports
    }

    fn step(&mut self, ctx: &RoundContext<'_>, out: &mut MoveOut<'_>) {
        self.sync(ctx.tree);
        let tree = ctx.tree;
        self.claims.clear();
        for slot in 0..self.robots.len() {
            let i = self.robots[slot];
            let pos = ctx.positions[i];
            let mv = match &mut self.states[slot] {
                LState::Bf(stack) => {
                    let port = stack.pop().expect("BF implies pending hops");
                    if stack.is_empty() {
                        self.states[slot] = LState::Dn;
                    }
                    Move::Down(port)
                }
                LState::Inactive => {
                    // Wake up if eligible anchors (re)appeared.
                    debug_assert_eq!(pos, self.root);
                    if self.reanchor(slot).is_some() {
                        self.states[slot] = LState::Dn;
                        self.launch(slot, tree)
                    } else {
                        Move::Stay
                    }
                }
                LState::Dn => {
                    if pos == self.root {
                        match self.reanchor(slot) {
                            Some(_) => self.launch(slot, tree),
                            None => {
                                self.states[slot] = LState::Inactive;
                                self.set_anchor(slot, self.root);
                                Move::Stay
                            }
                        }
                    } else {
                        self.dn_move(pos, tree)
                    }
                }
            };
            out.set(i, mv);
        }
    }

    /// First move after a (re)anchoring: descend the BF stack, or DN in
    /// place when anchored at the local root.
    fn launch(&mut self, slot: usize, tree: &PartialTree) -> Move {
        let anchor = self.anchors[slot];
        let mut stack = self.stack_to(tree, anchor);
        match stack.pop() {
            Some(port) => {
                if !stack.is_empty() {
                    self.states[slot] = LState::Bf(stack);
                }
                Move::Down(port)
            }
            None => self.dn_move(self.root, tree),
        }
    }

    /// Within a round every DN selection at `pos` scans the same dangling
    /// port list in the same increasing order, so the `c`-th claimer takes
    /// the `c`-th port: a per-node claim counter replaces the old
    /// selected-set without changing any choice.
    fn dn_move(&mut self, pos: NodeId, tree: &PartialTree) -> Move {
        let c = match self.claims.iter_mut().find(|(v, _)| *v == pos) {
            Some((_, c)) => {
                let cur = *c;
                *c += 1;
                cur
            }
            None => {
                self.claims.push((pos, 1));
                0
            }
        };
        if let Some(port) = tree.dangling_ports(pos).nth(c as usize) {
            self.pending.push((pos, port));
            return Move::Down(port);
        }
        if pos == self.root {
            Move::Stay
        } else {
            Move::Up
        }
    }

    fn active_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !matches!(s, LState::Inactive))
            .count()
    }

    fn is_finished(&self) -> bool {
        self.active_count() == 0
    }

    /// No open node at eligible depth remains — the shallow phase is over
    /// (the top-level advance rule of Definition 13 for `ℓ = 1`).
    fn shallow_done(&self) -> bool {
        match self.open.first() {
            Some(&(d, _)) => d > self.limit,
            None => true,
        }
    }

    fn interrupt(mut self, ctx: &RoundContext<'_>) -> Report {
        self.sync(ctx.tree);
        // Section 5's sliding rule: a robot's anchor is the ancestor of
        // its position at the instance's minimal open depth (capped at
        // the limit). This keeps the Open Node Coverage invariant: the
        // discoverer of an open node never leaves its sub-tree, so
        // anchoring it at (or above) that node's depth covers it.
        let min_open = self.open.first().map(|&(d, _)| d).unwrap_or(self.limit);
        let target = self.limit.min(min_open);
        let mut active = Vec::new();
        for (slot, &i) in self.robots.iter().enumerate() {
            if !matches!(self.states[slot], LState::Inactive) {
                let anchor = ancestor_at(ctx.tree, ctx.positions[i], target);
                active.push((i, anchor));
            }
        }
        Report {
            active,
            open: self.open.into_iter().collect(),
        }
    }
}

/// A planned child instance, created once its walkers have arrived.
#[derive(Clone, Debug)]
struct ChildSpec {
    root: NodeId,
    team: Vec<usize>,
    adopted: Vec<(usize, NodeId)>,
    open: Vec<(usize, NodeId)>,
}

#[derive(Clone, Debug)]
enum DPhase {
    /// Fresh team members walking to their sub-tree roots, as
    /// `(robot, remaining steps)` pairs in assignment order.
    Rebalance {
        walkers: Vec<(usize, Vec<Step>)>,
        specs: Vec<ChildSpec>,
    },
    /// Child instances running in parallel.
    Run,
}

/// The divide-depth functor `D[A(k*, k', d'); n_team; n_iter]`
/// (Algorithm 3), with `n_team = k*`.
#[derive(Clone, Debug)]
struct Divide {
    level: u32,
    k_star: usize,
    n_iter: usize,
    d_child: usize,
    robots: Vec<usize>,
    k_prime: usize,
    iter: usize,
    phase: DPhase,
    children: Vec<Instance>,
    finished: bool,
    /// Thread budget for fanning the children; 1 everywhere except the
    /// top-level instance (nested fans would oversubscribe).
    threads: usize,
}

impl Divide {
    #[allow(clippy::too_many_arguments)]
    fn create(
        level: u32,
        k_star: usize,
        n_iter: usize,
        root: NodeId,
        team: &[usize],
        adopted: &[(usize, NodeId)],
        open: Vec<(usize, NodeId)>,
        threads: usize,
        ctx: &RoundContext<'_>,
    ) -> Self {
        debug_assert!(level >= 2);
        let k_prime = team.len() / k_star;
        let mut d = Divide {
            level,
            k_star,
            n_iter,
            d_child: n_iter.pow(level - 1),
            robots: team.to_vec(),
            k_prime,
            iter: 1,
            phase: DPhase::Run,
            children: Vec::new(),
            finished: false,
            threads,
        };
        // Iteration 1: a single sub-tree (the instance root) with the
        // adopted robots in place.
        d.build_iteration(vec![(root, adopted.to_vec())], open, ctx);
        d
    }

    /// Forms teams for the given sub-tree roots (with their in-place
    /// robots), plans the rebalancing walks, and defers child creation
    /// until the walks complete.
    fn build_iteration(
        &mut self,
        groups: Vec<(NodeId, Vec<(usize, NodeId)>)>,
        open: Vec<(usize, NodeId)>,
        ctx: &RoundContext<'_>,
    ) {
        let tree = ctx.tree;
        let in_team: HashSet<usize> = groups
            .iter()
            .flat_map(|(_, members)| members.iter().map(|&(r, _)| r))
            .collect();
        let mut pool: Vec<usize> = self
            .robots
            .iter()
            .copied()
            .filter(|r| !in_team.contains(r))
            .collect();
        let mut walkers: Vec<(usize, Vec<Step>)> = Vec::new();
        let mut specs = Vec::new();
        let mut open_left = open;
        for (root, in_place) in groups.into_iter().take(self.k_star) {
            assert!(
                in_place.len() <= self.k_prime,
                "more in-place robots than a team holds"
            );
            let mut team: Vec<usize> = in_place.iter().map(|&(r, _)| r).collect();
            while team.len() < self.k_prime {
                let Some(r) = pool.pop() else { break };
                let mut path = walk_path(tree, ctx.positions[r], root);
                if !path.is_empty() {
                    path.reverse(); // consumed by pop() from the back
                    walkers.push((r, path));
                }
                team.push(r);
            }
            // Open nodes belonging to this sub-tree.
            let (mine, rest): (Vec<_>, Vec<_>) = open_left
                .into_iter()
                .partition(|&(d, v)| d >= tree.depth(root) && tree.is_ancestor(root, v));
            open_left = rest;
            specs.push(ChildSpec {
                root,
                team,
                adopted: in_place,
                open: mine,
            });
        }
        assert!(
            open_left.is_empty(),
            "open nodes escaped the sub-tree cover (coverage invariant)"
        );
        self.children.clear();
        self.phase = DPhase::Rebalance { walkers, specs };
    }

    /// Interrupts all children and starts the next iteration (or marks
    /// the instance finished). Must be called with settled positions.
    fn advance(&mut self, ctx: &RoundContext<'_>) {
        let children = std::mem::take(&mut self.children);
        let mut active: Vec<(usize, NodeId)> = Vec::new();
        let mut open: Vec<(usize, NodeId)> = Vec::new();
        for child in children {
            let mut rep = child.interrupt(ctx);
            active.append(&mut rep.active);
            open.append(&mut rep.open);
        }
        if active.is_empty() {
            assert!(
                open.is_empty(),
                "open nodes remain but no robot is active (coverage invariant)"
            );
            self.finished = true;
            return;
        }
        self.iter += 1;
        // Group the active robots by their reported anchor, merging any
        // anchor nested inside another into its ancestor (stragglers can
        // report anchors above the working depth).
        let mut roots: Vec<NodeId> = active.iter().map(|&(_, a)| a).collect();
        roots.sort_by_key(|&a| (ctx.tree.depth(a), a));
        roots.dedup();
        let mut kept: Vec<NodeId> = Vec::new();
        for a in roots {
            if !kept.iter().any(|&r| ctx.tree.is_ancestor(r, a)) {
                kept.push(a);
            }
        }
        // Kept roots are pairwise non-nested, so each anchor has exactly
        // one kept ancestor and every group ends up non-empty.
        let mut groups: Vec<(NodeId, Vec<(usize, NodeId)>)> =
            kept.iter().map(|&root| (root, Vec::new())).collect();
        for (r, anchor) in active {
            let gi = groups
                .iter()
                .position(|&(root, _)| ctx.tree.is_ancestor(root, anchor))
                .expect("every anchor has a kept ancestor");
            let owner = groups[gi].0;
            groups[gi].1.push((r, owner));
        }
        groups.sort_by_key(|&(root, _)| root);
        self.build_iteration(groups, open, ctx);
    }

    fn step(&mut self, ctx: &RoundContext<'_>, out: &mut MoveOut<'_>) {
        if self.finished {
            return;
        }
        // Interrupt decisions first, with settled positions.
        if matches!(self.phase, DPhase::Run) {
            let act = self.children_active();
            if act < self.k_star {
                if self.iter < self.n_iter {
                    self.advance(ctx);
                } else if act == 0 {
                    // Running deep and everything settled.
                    self.advance(ctx); // marks finished (no actives)
                }
                // Otherwise: run deep — keep stepping the children.
            }
        }
        match &mut self.phase {
            DPhase::Rebalance { walkers, specs } => {
                if walkers.is_empty() {
                    // Spawn children and run them this round.
                    let specs = std::mem::take(specs);
                    let level = self.level;
                    let (k_star, n_iter, d_child) = (self.k_star, self.n_iter, self.d_child);
                    self.children = specs
                        .into_iter()
                        .map(|s| {
                            Instance::create(
                                level - 1,
                                k_star,
                                n_iter,
                                s.root,
                                &s.team,
                                &s.adopted,
                                s.open,
                                d_child,
                                ctx,
                            )
                        })
                        .collect();
                    self.phase = DPhase::Run;
                    self.fan_children(ctx, out);
                } else {
                    for (r, path) in walkers.iter_mut() {
                        let mv = match path.pop().expect("empty walks are never inserted") {
                            Step::Up => Move::Up,
                            Step::Down(p) => Move::Down(p),
                        };
                        out.set(*r, mv);
                    }
                    walkers.retain(|(_, path)| !path.is_empty());
                }
            }
            DPhase::Run => self.fan_children(ctx, out),
        }
    }

    /// Steps every child instance. Children own disjoint robot sets and
    /// disjoint sub-trees, so with a thread budget they run on worker
    /// threads, each filling a private buffer that is drained here — the
    /// written indices are disjoint, so this equals the sequential fan.
    fn fan_children(&mut self, ctx: &RoundContext<'_>, out: &mut MoveOut<'_>) {
        if self.threads > 1 && self.children.len() >= 2 {
            let buffers = parallel::par_shards_mut(&mut self.children, self.threads, {
                |_, shard| {
                    let mut buf: Vec<(usize, Move)> = Vec::new();
                    for child in shard {
                        child.step(ctx, &mut MoveOut::Buffer(&mut buf));
                    }
                    buf
                }
            });
            for (i, mv) in buffers.into_iter().flatten() {
                out.set(i, mv);
            }
        } else {
            for child in &mut self.children {
                child.step(ctx, out);
            }
        }
    }

    fn children_active(&self) -> usize {
        self.children.iter().map(Instance::active_count).sum()
    }

    fn active_count(&self) -> usize {
        if self.finished {
            return 0;
        }
        match &self.phase {
            // During rebalancing the whole prospective workforce counts
            // as active (walks are bounded, so this cannot deadlock the
            // parent's threshold rule).
            DPhase::Rebalance { specs, walkers } => {
                specs.iter().map(|s| s.team.len()).sum::<usize>() + walkers.len()
            }
            DPhase::Run => self.children_active(),
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    /// The Definition 13 rule: the call ends right after its last
    /// iteration, i.e. when the last iteration's activity drops below
    /// `k*` (it would otherwise start running deep).
    fn shallow_done(&self) -> bool {
        self.finished
            || (self.iter >= self.n_iter
                && matches!(self.phase, DPhase::Run)
                && self.children_active() < self.k_star)
    }

    fn interrupt(self, ctx: &RoundContext<'_>) -> Report {
        assert!(
            matches!(self.phase, DPhase::Run) || self.finished,
            "interrupt during rebalancing is never triggered by the threshold rule"
        );
        let mut report = Report::default();
        for child in self.children {
            let mut rep = child.interrupt(ctx);
            report.active.append(&mut rep.active);
            report.open.append(&mut rep.open);
        }
        report
    }
}

/// A node of the instance tree.
#[derive(Clone, Debug)]
enum Instance {
    Leaf(Box<Leaf>),
    Divide(Box<Divide>),
}

impl Instance {
    #[allow(clippy::too_many_arguments)]
    fn create(
        level: u32,
        k_star: usize,
        n_iter: usize,
        root: NodeId,
        team: &[usize],
        adopted: &[(usize, NodeId)],
        open: Vec<(usize, NodeId)>,
        d_local: usize,
        ctx: &RoundContext<'_>,
    ) -> Self {
        Self::create_with_threads(
            level, k_star, n_iter, root, team, adopted, open, d_local, 1, ctx,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn create_with_threads(
        level: u32,
        k_star: usize,
        n_iter: usize,
        root: NodeId,
        team: &[usize],
        adopted: &[(usize, NodeId)],
        open: Vec<(usize, NodeId)>,
        d_local: usize,
        threads: usize,
        ctx: &RoundContext<'_>,
    ) -> Self {
        if level <= 1 {
            let limit = ctx.tree.depth(root) + d_local;
            Instance::Leaf(Box::new(Leaf::create(root, limit, team, adopted, open)))
        } else {
            Instance::Divide(Box::new(Divide::create(
                level, k_star, n_iter, root, team, adopted, open, threads, ctx,
            )))
        }
    }

    fn step(&mut self, ctx: &RoundContext<'_>, out: &mut MoveOut<'_>) {
        match self {
            Instance::Leaf(l) => l.step(ctx, out),
            Instance::Divide(d) => d.step(ctx, out),
        }
    }

    fn active_count(&self) -> usize {
        match self {
            Instance::Leaf(l) => l.active_count(),
            Instance::Divide(d) => d.active_count(),
        }
    }

    fn is_finished(&self) -> bool {
        match self {
            Instance::Leaf(l) => l.is_finished(),
            Instance::Divide(d) => d.is_finished(),
        }
    }

    fn shallow_done(&self) -> bool {
        match self {
            Instance::Leaf(l) => l.shallow_done(),
            Instance::Divide(d) => d.shallow_done(),
        }
    }

    fn interrupt(self, ctx: &RoundContext<'_>) -> Report {
        match self {
            Instance::Leaf(l) => l.interrupt(ctx),
            Instance::Divide(d) => d.interrupt(ctx),
        }
    }
}

/// The recursive `BFDN_ℓ` explorer (Definition 13, Theorem 10).
///
/// `ℓ = 1` degenerates to plain BFDN run with escalating depth caps
/// `d_j = 2^j`; larger `ℓ` trades the `2n/k` work term for a better
/// `D^{1+1/ℓ}` depth term — worthwhile on deep trees (`n/k^{1/ℓ} < D²`).
///
/// Only `K = ⌊k^{1/ℓ}⌋^ℓ` robots take part; the rest wait at the root.
///
/// `BFDN_ℓ` assumes the benign schedule (every robot moves every round):
/// the paper states Theorem 10 in that setting only, and this
/// implementation's scripted team walks are not reconciled against
/// adversarial stalls — use [`Bfdn`](crate::Bfdn) (robust or
/// post-selection-reconciled) when a movement adversary is present.
///
/// # Example
///
/// ```
/// use bfdn::BfdnL;
/// use bfdn_sim::Simulator;
/// use bfdn_trees::generators;
///
/// let tree = generators::comb(40, 8);
/// let k = 16;
/// let mut algo = BfdnL::new(k, 2);
/// let outcome = Simulator::new(&tree, k).run(&mut algo)?;
/// let bound = bfdn::theorem10_bound(tree.len(), tree.depth(), k, tree.max_degree(), 2);
/// assert!((outcome.rounds as f64) <= bound);
/// # Ok::<(), bfdn_sim::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BfdnL {
    k: usize,
    ell: u32,
    k_star: usize,
    k_used: usize,
    j: u32,
    growth: u32,
    instance: Option<Instance>,
    adopted: Vec<(usize, NodeId)>,
    calls: u32,
    name: String,
    /// Intra-round thread budget for the top-level child fan; 1 = fully
    /// sequential.
    threads: usize,
}

impl BfdnL {
    /// Creates the explorer for `k` robots with recursion parameter
    /// `ell ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `ell == 0`.
    pub fn new(k: usize, ell: u32) -> Self {
        Self::with_growth(k, ell, 2)
    }

    /// Like [`BfdnL::new`] but with a custom depth-schedule base: the
    /// `j`-th call uses `n_iter = base^j` iterations (depth
    /// `d_j = base^{jℓ}`). Definition 13 uses `base = 2`; other bases are
    /// ablation arms (`ablation_depth_schedule`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `ell == 0` or `base < 2`.
    pub fn with_growth(k: usize, ell: u32, base: u32) -> Self {
        assert!(base >= 2, "the depth schedule must escalate");
        assert!(k >= 1, "need at least one robot");
        assert!(ell >= 1, "ℓ must be at least 1");
        let k_star = (k as f64).powf(1.0 / ell as f64).floor() as usize;
        // Guard against floating-point undershoot (e.g. 8^(1/3) = 1.99…).
        let k_star = if (k_star + 1).pow(ell) <= k {
            k_star + 1
        } else {
            k_star.max(1)
        };
        let k_used = k_star.pow(ell).min(k);
        BfdnL {
            k,
            ell,
            k_star,
            k_used,
            j: 1,
            growth: base,
            instance: None,
            adopted: Vec::new(),
            calls: 0,
            name: format!("bfdn-l{ell}"),
            threads: parallel::round_threads(),
        }
    }

    /// Sets the intra-round thread budget explicitly (instead of the
    /// `BFDN_ROUND_THREADS` default). The exploration is identical at
    /// any value; only wall-clock time changes.
    #[must_use]
    pub fn with_round_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The intra-round thread budget.
    #[inline]
    pub fn round_threads(&self) -> usize {
        self.threads
    }

    /// Number of robots `k` (including unused ones).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The recursion parameter `ℓ`.
    #[inline]
    pub fn ell(&self) -> u32 {
        self.ell
    }

    /// Robots actually used, `K = ⌊k^{1/ℓ}⌋^ℓ`.
    #[inline]
    pub fn k_used(&self) -> usize {
        self.k_used
    }

    /// Number of `BFDN_ℓ(k*, K, d_j)` calls made so far.
    #[inline]
    pub fn calls(&self) -> u32 {
        self.calls
    }
}

impl Explorer for BfdnL {
    fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
        // Fully explored: everyone walks home.
        if ctx.tree.is_complete() {
            self.instance = None;
            for (pos, mv) in ctx.positions.iter().zip(out.iter_mut()) {
                if !pos.is_root() {
                    *mv = Move::Up;
                }
            }
            return;
        }
        // Definition 13's call transition, decided on settled positions.
        if let Some(instance) = &self.instance {
            if instance.shallow_done() || instance.is_finished() {
                let report = self.instance.take().expect("checked above").interrupt(ctx);
                self.adopted = report.active;
                self.j += 1;
            }
        }
        if self.instance.is_none() {
            let robots: Vec<usize> = (0..self.k_used).collect();
            let n_iter = (self.growth as usize).pow(self.j); // base^j
            let d_total = n_iter.pow(self.ell); // d_j = 2^{jℓ}
            let threads = if self.threads > 1 && self.k_used >= 2 * self.threads {
                self.threads
            } else {
                1
            };
            self.instance = Some(Instance::create_with_threads(
                self.ell,
                self.k_star,
                n_iter,
                NodeId::ROOT,
                &robots,
                &self.adopted,
                ctx.tree.open_nodes_snapshot(),
                d_total,
                threads,
                ctx,
            ));
            self.adopted.clear();
            self.calls += 1;
        }
        self.instance
            .as_mut()
            .expect("created above")
            .step(ctx, &mut MoveOut::Direct(out));
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod internals_tests {
    use super::*;

    /// Reveal: root -> a -> b -> c and root -> d.
    fn sample() -> PartialTree {
        let mut pt = PartialTree::new(8, 2);
        pt.attach(NodeId::ROOT, Port::new(0), NodeId::new(1), 2); // a
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(2), 2); // b
        pt.attach(NodeId::new(2), Port::new(1), NodeId::new(3), 1); // c
        pt.attach(NodeId::ROOT, Port::new(1), NodeId::new(4), 1); // d
        pt
    }

    fn walk_len(steps: &[Step]) -> (usize, usize) {
        let ups = steps.iter().filter(|s| matches!(s, Step::Up)).count();
        (ups, steps.len() - ups)
    }

    #[test]
    fn walk_path_goes_through_the_lca() {
        let pt = sample();
        // c (depth 3) to d (depth 1): 3 ups to the root, 1 down.
        let steps = walk_path(&pt, NodeId::new(3), NodeId::new(4));
        assert_eq!(walk_len(&steps), (3, 1));
        // a to c: straight down, 2 downs.
        let steps = walk_path(&pt, NodeId::new(1), NodeId::new(3));
        assert_eq!(walk_len(&steps), (0, 2));
        // Self-walk is empty.
        assert!(walk_path(&pt, NodeId::new(2), NodeId::new(2)).is_empty());
    }

    #[test]
    fn walk_path_executes_in_order() {
        // Ups must come before downs when replayed front-to-back.
        let pt = sample();
        let steps = walk_path(&pt, NodeId::new(4), NodeId::new(2));
        let first_down = steps
            .iter()
            .position(|s| matches!(s, Step::Down(_)))
            .unwrap();
        assert!(steps[..first_down].iter().all(|s| matches!(s, Step::Up)));
    }

    #[test]
    fn ancestor_at_clamps() {
        let pt = sample();
        assert_eq!(ancestor_at(&pt, NodeId::new(3), 1), NodeId::new(1));
        assert_eq!(ancestor_at(&pt, NodeId::new(3), 0), NodeId::ROOT);
        // Not deeper than the target: unchanged.
        assert_eq!(ancestor_at(&pt, NodeId::new(1), 5), NodeId::new(1));
    }

    #[test]
    fn leaf_reanchor_respects_the_depth_cap() {
        let pt = sample();
        // Open nodes: b? b has one down port used... c is a leaf; the
        // only open node left is none — craft a leaf with open set by
        // hand instead.
        let mut leaf = Leaf::create(
            NodeId::ROOT,
            1, // absolute cap: depth 1
            &[0],
            &[],
            vec![(1, NodeId::new(1)), (2, NodeId::new(2))],
        );
        // Depth-1 candidate is eligible.
        assert_eq!(leaf.reanchor(0), Some(NodeId::new(1)));
        // Remove it: the remaining candidate is too deep.
        leaf.open.remove(&(1, NodeId::new(1)));
        assert_eq!(leaf.reanchor(0), None);
        let _ = pt;
    }

    #[test]
    fn leaf_stack_stops_at_the_local_root() {
        let pt = sample();
        let leaf = Leaf::create(NodeId::new(1), 3, &[0], &[], vec![]);
        let stack = leaf.stack_to(&pt, NodeId::new(3));
        // From a (local root) down to c: two hops.
        assert_eq!(stack.len(), 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{theorem10_bound, Bfdn};
    use bfdn_sim::Simulator;
    use bfdn_trees::generators::{self, Family};
    use rand::SeedableRng;

    fn run_l(tree: &bfdn_trees::Tree, k: usize, ell: u32) -> (u64, BfdnL) {
        let mut algo = BfdnL::new(k, ell);
        let outcome = Simulator::new(tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("bfdn_l(ℓ={ell}) stuck on {tree} with k={k}: {e}"));
        (outcome.rounds, algo)
    }

    #[test]
    fn explores_tiny_trees_all_ells() {
        for tree in [
            generators::path(1),
            generators::path(7),
            generators::star(5),
            generators::binary(3),
            generators::comb(5, 3),
        ] {
            for k in [1usize, 2, 4, 9] {
                for ell in [1u32, 2, 3] {
                    let (rounds, _) = run_l(&tree, k, ell);
                    assert!(rounds > 0, "{tree} k={k} ℓ={ell}");
                }
            }
        }
    }

    #[test]
    fn theorem10_bound_holds_across_families() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for fam in Family::ALL {
            for n in [60usize, 250] {
                let tree = fam.instance(n, &mut rng);
                for (k, ell) in [(4usize, 1u32), (4, 2), (16, 2), (27, 3)] {
                    let (rounds, _) = run_l(&tree, k, ell);
                    let bound =
                        theorem10_bound(tree.len(), tree.depth(), k, tree.max_degree(), ell);
                    assert!(
                        (rounds as f64) <= bound,
                        "{fam} n={} k={k} ℓ={ell}: {rounds} > {bound}",
                        tree.len(),
                    );
                }
            }
        }
    }

    #[test]
    fn k_used_is_floor_power() {
        assert_eq!(BfdnL::new(16, 2).k_used(), 16);
        assert_eq!(BfdnL::new(17, 2).k_used(), 16);
        assert_eq!(BfdnL::new(8, 3).k_used(), 8);
        assert_eq!(BfdnL::new(26, 3).k_used(), 8);
        assert_eq!(BfdnL::new(5, 1).k_used(), 5);
    }

    #[test]
    fn escalating_calls_happen_on_deep_trees() {
        let tree = generators::path(200);
        let (_, algo) = run_l(&tree, 4, 2);
        // d_j = 4^j must escalate to cover depth 200: j up to 4 → ≥ 4 calls.
        assert!(algo.calls() >= 3, "calls = {}", algo.calls());
    }

    #[test]
    fn ell2_beats_ell1_on_deep_bushy_bottom() {
        // A broom: long handle, wide bottom. BFDN (ℓ=1) pays the full
        // handle on every reanchor; BFDN₂ re-roots teams deeper.
        let tree = generators::broom(120, 16, 15);
        let k = 16;
        let (r1, _) = run_l(&tree, k, 1);
        let (r2, _) = run_l(&tree, k, 2);
        // The recursion must not be catastrophically worse; the real
        // comparison (with the crossover) is measured in experiment E10.
        assert!(
            (r2 as f64) < 3.0 * r1 as f64 + 500.0,
            "ℓ=2 ({r2}) should be comparable to ℓ=1 ({r1})"
        );
    }

    #[test]
    fn unused_robots_stay_home() {
        // k = 5, ℓ = 2 → K = 4; robot 4 must never move.
        let tree = generators::comb(6, 2);
        let k = 5;
        let mut algo = BfdnL::new(k, 2);
        let outcome = Simulator::new(&tree, k)
            .record_trace()
            .run(&mut algo)
            .unwrap();
        let trace = outcome.trace.unwrap();
        for rec in trace.records() {
            assert!(rec.positions[4].is_root());
        }
    }

    #[test]
    fn matches_plain_bfdn_on_shallow_trees_within_factor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let tree = generators::random_recursive(1500, &mut rng);
        let k = 16;
        let mut plain = Bfdn::new(k);
        let plain_rounds = Simulator::new(&tree, k).run(&mut plain).unwrap().rounds;
        let (l2_rounds, _) = run_l(&tree, k, 2);
        assert!(
            (l2_rounds as f64) <= 40.0 * plain_rounds as f64 + 500.0,
            "ℓ=2 {l2_rounds} vs plain {plain_rounds}"
        );
    }
}
