//! The intermediate claims of Theorem 1's proof, checked on traces.

use bfdn::Bfdn;
use bfdn_sim::{Move, Simulator, Trace};
use bfdn_trees::generators::{self, Family};
use bfdn_trees::{NodeId, Tree};
use rand::SeedableRng;

fn traced(tree: &Tree, k: usize) -> Trace {
    let mut algo = Bfdn::new(k);
    Simulator::new(tree, k)
        .record_trace()
        .run(&mut algo)
        .unwrap()
        .trace
        .unwrap()
}

/// Claim 1 (measured form): the total number of rounds in which some
/// robot does not move is at most `2D + 2`.
///
/// The paper states `D + 1`, arguing idle robots only wait while the
/// others are "on their way back". Measurably that undercounts by up to
/// a factor 2: a robot (re)anchored to a depth-`(D-1)` anchor in the
/// very round the last dangling edge is consumed still walks its full
/// BF descent *and* the return, so the trailing idle phase can last
/// close to `2D` rounds (e.g. comb, k = 5: 39 idle rounds vs D + 1 =
/// 35). The paper's own termination argument uses `2D` for exactly this
/// phase, and Theorem 1 is unaffected (the `Σ T¹ᵢ ≤ k(D+1)` charge it
/// takes from Claim 1 is dominated by the `D²` term either way) — see
/// EXPERIMENTS.md.
#[test]
fn claim1_idle_rounds_bounded_by_twice_depth() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(51);
    for fam in Family::ALL {
        let tree = fam.instance(300, &mut rng);
        for k in [2usize, 5, 16] {
            let trace = traced(&tree, k);
            let mut prev: Vec<NodeId> = vec![NodeId::ROOT; k];
            let mut idle_rounds = 0u64;
            for rec in trace.records() {
                if rec.positions.iter().zip(&prev).any(|(a, b)| a == b) {
                    idle_rounds += 1;
                }
                prev = rec.positions.clone();
            }
            assert!(
                idle_rounds <= 2 * tree.depth() as u64 + 2,
                "{fam} k={k}: {idle_rounds} idle rounds > 2D+2 = {}",
                2 * tree.depth() + 2
            );
        }
    }
}

/// Claim 2: a dangling edge is traversed by exactly one robot in the
/// round it is first explored.
#[test]
fn claim2_dangling_edges_claimed_by_single_robots() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(52);
    for fam in [
        Family::Star,
        Family::Binary,
        Family::Comb,
        Family::UniformLabeled,
    ] {
        let tree = fam.instance(300, &mut rng);
        let k = 8;
        let trace = traced(&tree, k);
        let mut first_visit: Vec<Option<u64>> = vec![None; tree.len()];
        first_visit[NodeId::ROOT.index()] = Some(0);
        let mut prev: Vec<NodeId> = vec![NodeId::ROOT; k];
        for rec in trace.records() {
            // Robots that made a Down move into a not-yet-visited node
            // this round, grouped by target node.
            let mut arrivals: std::collections::HashMap<NodeId, u32> =
                std::collections::HashMap::new();
            for i in 0..k {
                if matches!(rec.moves[i], Move::Down(_)) {
                    let to = rec.positions[i];
                    if first_visit[to.index()].is_none() {
                        *arrivals.entry(to).or_insert(0) += 1;
                    }
                }
            }
            for (node, count) in arrivals {
                assert_eq!(
                    count, 1,
                    "{fam}: node {node} first explored by {count} robots at once"
                );
                first_visit[node.index()] = Some(rec.round);
            }
            prev = rec.positions.clone();
        }
        let _ = prev;
        assert!(
            first_visit.iter().all(Option::is_some),
            "{fam}: some node never visited"
        );
    }
}

/// Claim 3's accounting consequence: the sum over robots of distance
/// travelled equals twice the edges explored plus twice the anchor-depth
/// charges — bounded by `2(n-1) + 2·Σ depths`; we check the weaker but
/// exact invariant that total moves are even on completion (every robot
/// walks a closed loop from the root).
#[test]
fn claim3_every_robot_walks_a_closed_loop() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(53);
    let tree = generators::uniform_labeled(400, &mut rng);
    for k in [1usize, 3, 9] {
        let mut algo = Bfdn::new(k);
        let outcome = Simulator::new(&tree, k).run(&mut algo).unwrap();
        for (i, &d) in outcome.metrics.distance_per_robot().iter().enumerate() {
            assert_eq!(d % 2, 0, "robot {i} travelled an odd distance {d}");
        }
    }
}

/// The ablation variants (shortcut relocation, rotating selection order)
/// stay within the Theorem 1 envelope on every family — the bound's
/// analysis does not formally cover them, but neither change can
/// increase the per-anchor travel it charges.
#[test]
fn ablation_variants_respect_theorem1() {
    use bfdn::{theorem1_bound, SelectionOrder};
    let mut rng = rand::rngs::StdRng::seed_from_u64(54);
    for fam in Family::ALL {
        let tree = fam.instance(250, &mut rng);
        let k = 8;
        let bound = theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
        let variants: Vec<(&str, Bfdn)> = vec![
            ("shortcut", Bfdn::builder(k).shortcut(true).build()),
            (
                "rotating",
                Bfdn::builder(k)
                    .selection_order(SelectionOrder::Rotating)
                    .build(),
            ),
        ];
        for (name, mut algo) in variants {
            let outcome = Simulator::new(&tree, k)
                .run(&mut algo)
                .unwrap_or_else(|e| panic!("{fam} {name}: {e}"));
            assert!(
                (outcome.rounds as f64) <= bound,
                "{fam} {name}: {} > {bound}",
                outcome.rounds
            );
        }
    }
}

/// Claim 4: at all rounds, every dangling edge lies in `∪ᵢ T(vᵢ)` — the
/// sub-trees of the current anchors cover all open nodes. Checked after
/// every single round via the simulator's step API.
#[test]
fn claim4_anchors_cover_all_open_nodes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    for fam in [
        Family::Comb,
        Family::Caterpillar,
        Family::UniformLabeled,
        Family::Spider,
    ] {
        let tree = fam.instance(250, &mut rng);
        for k in [2usize, 6] {
            let mut algo = Bfdn::new(k);
            let mut sim = Simulator::new(&tree, k);
            let mut rounds = 0u64;
            loop {
                let more = sim.step(&mut algo).unwrap();
                rounds += 1;
                assert!(rounds < 1_000_000, "runaway");
                let pt = sim.partial();
                for &v in pt.explored_nodes() {
                    if pt.is_open(v) {
                        let covered = (0..k).any(|i| pt.is_ancestor(algo.anchor(i), v));
                        assert!(
                            covered,
                            "{fam} k={k} round {rounds}: open node {v} uncovered"
                        );
                    }
                }
                if !more {
                    break;
                }
            }
        }
    }
}

/// Claim 5: whenever all anchors are at depth at most `d - 1`, every
/// explored node at depth `d` either has a fully explored sub-tree or
/// hosts exactly one robot. Checked each round at the strongest
/// applicable depth (one below the deepest anchor).
#[test]
fn claim5_deep_subtrees_host_exactly_one_robot() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(56);
    for fam in [Family::Comb, Family::UniformLabeled, Family::Binary] {
        let tree = fam.instance(220, &mut rng);
        for k in [3usize, 7] {
            let mut algo = Bfdn::new(k);
            let mut sim = Simulator::new(&tree, k);
            loop {
                let more = sim.step(&mut algo).unwrap();
                let pt = sim.partial();
                let max_anchor_depth = (0..k).map(|i| pt.depth(algo.anchor(i))).max().unwrap();
                let d = max_anchor_depth + 1;
                for &v in pt.explored_nodes() {
                    if pt.depth(v) != d {
                        continue;
                    }
                    let fully_explored = tree
                        .preorder()
                        .into_iter()
                        .filter(|&u| tree.is_ancestor(v, u))
                        .all(|u| pt.is_explored(u));
                    if !fully_explored {
                        let robots_inside = sim
                            .positions()
                            .iter()
                            .filter(|&&p| tree.is_ancestor(v, p))
                            .count();
                        assert_eq!(
                            robots_inside, 1,
                            "{fam} k={k}: unfinished T({v}) hosts {robots_inside} robots"
                        );
                    }
                }
                if !more {
                    break;
                }
            }
        }
    }
}
