//! Differential tests for the flat (dense `Vec`-indexed) hot-path state.
//!
//! The per-round state of every explorer used to live in
//! `HashMap<NodeId, _>` / `HashSet<(NodeId, Port)>` tables. Those were
//! replaced with dense arrays indexed by `NodeId` (node ids are arena
//! indices) plus reusable scratch buffers. This module proves the
//! replacement is behavior-preserving, two ways:
//!
//! 1. `reference` keeps a verbatim copy of the *hashed* complete-
//!    communication BFDN selection logic. A proptest compares its traces
//!    against the production (flat) `Bfdn` on arbitrary trees and
//!    variants — they must be identical, round for round.
//! 2. `GOLDEN` pins FNV-1a fingerprints of the traces every explorer
//!    (complete, shortcut, robust, write-read, recursive, graph) produced
//!    *before* the flattening, across all tree families at fixed seeds.
//!    The flat implementations must reproduce them bit for bit.

use bfdn::{Bfdn, BfdnL, GraphBfdn, ReanchorRule, SelectionOrder, WriteReadBfdn};
use bfdn_sim::{Move, RandomStall, Simulator, StopCondition, Trace};
use bfdn_trees::generators::Family;
use bfdn_trees::grid::{GridGraph, Rect};
use bfdn_trees::{NodeId, Tree, TreeBuilder};
use proptest::prelude::*;
use rand::SeedableRng;

/// The pre-flattening complete-communication BFDN, hash-table state and
/// all. Kept verbatim (minus instrumentation) as the differential oracle.
mod reference {
    use bfdn::{ReanchorRule, SelectionOrder};
    use bfdn_sim::{Explorer, Move, RoundContext};
    use bfdn_trees::{NodeId, PartialTree, Port};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::{HashMap, HashSet};

    #[derive(Clone, Copy, Debug)]
    enum Step {
        Up,
        Down(Port),
    }

    pub struct HashedBfdn {
        k: usize,
        anchors: Vec<NodeId>,
        walks: Vec<Vec<Step>>,
        loads: HashMap<NodeId, u32>,
        rule: ReanchorRule,
        order: SelectionOrder,
        shortcut: bool,
        respect_allowed: bool,
        rng: Option<StdRng>,
        rr_counter: usize,
        last_intent: Vec<Option<(NodeId, Step)>>,
    }

    impl HashedBfdn {
        pub fn new(
            k: usize,
            rule: ReanchorRule,
            order: SelectionOrder,
            shortcut: bool,
            robust: bool,
        ) -> Self {
            let mut loads = HashMap::new();
            loads.insert(NodeId::ROOT, k as u32);
            let rng = match rule {
                ReanchorRule::Random(seed) => Some(StdRng::seed_from_u64(seed)),
                _ => None,
            };
            HashedBfdn {
                k,
                anchors: vec![NodeId::ROOT; k],
                walks: vec![Vec::new(); k],
                loads,
                rule,
                order,
                shortcut,
                respect_allowed: robust,
                rng,
                rr_counter: 0,
                last_intent: vec![None; k],
            }
        }

        fn pick_candidate(&mut self, tree: &PartialTree, depth: usize) -> NodeId {
            match &self.rule {
                ReanchorRule::LeastLoaded => {
                    let mut best: Option<(u32, NodeId)> = None;
                    for v in tree.open_nodes_at_depth(depth) {
                        let load = self.loads.get(&v).copied().unwrap_or(0);
                        if load == 0 {
                            best = Some((0, v));
                            break;
                        }
                        if best.is_none_or(|(bl, _)| load < bl) {
                            best = Some((load, v));
                        }
                    }
                    best.expect("an open depth has an open node").1
                }
                ReanchorRule::FirstCandidate => tree
                    .open_nodes_at_depth(depth)
                    .next()
                    .expect("an open depth has an open node"),
                ReanchorRule::RoundRobin => {
                    let candidates: Vec<NodeId> = tree.open_nodes_at_depth(depth).collect();
                    let pick = candidates[self.rr_counter % candidates.len()];
                    self.rr_counter = self.rr_counter.wrapping_add(1);
                    pick
                }
                ReanchorRule::Random(_) => {
                    let candidates: Vec<NodeId> = tree.open_nodes_at_depth(depth).collect();
                    let rng = self.rng.as_mut().expect("random rule carries an rng");
                    candidates[rng.random_range(0..candidates.len())]
                }
            }
        }

        fn reanchor(&mut self, tree: &PartialTree) -> NodeId {
            match tree.min_open_depth() {
                Some(depth) => self.pick_candidate(tree, depth),
                None => NodeId::ROOT,
            }
        }

        fn apply_anchor(&mut self, i: usize, new_anchor: NodeId) {
            let old = self.anchors[i];
            if old != new_anchor {
                if let Some(l) = self.loads.get_mut(&old) {
                    *l -= 1;
                    if *l == 0 {
                        self.loads.remove(&old);
                    }
                }
                *self.loads.entry(new_anchor).or_insert(0) += 1;
                self.anchors[i] = new_anchor;
            }
        }

        fn descent(tree: &PartialTree, anchor: NodeId) -> Vec<Step> {
            let mut steps = Vec::with_capacity(tree.depth(anchor));
            let mut cur = anchor;
            while let Some(port) = tree.parent_port(cur) {
                steps.push(Step::Down(port));
                cur = tree.parent(cur).expect("non-root has a parent");
            }
            steps
        }

        fn lca_walk(tree: &PartialTree, from: NodeId, to: NodeId) -> Vec<Step> {
            let mut a = from;
            let mut b = to;
            let mut downs: Vec<Port> = Vec::new();
            let mut ups = 0usize;
            while tree.depth(a) > tree.depth(b) {
                a = tree.parent(a).expect("deeper node has a parent");
                ups += 1;
            }
            while tree.depth(b) > tree.depth(a) {
                downs.push(tree.parent_port(b).expect("deeper node has a parent port"));
                b = tree.parent(b).expect("deeper node has a parent");
            }
            while a != b {
                a = tree.parent(a).expect("non-root has a parent");
                ups += 1;
                downs.push(tree.parent_port(b).expect("non-root has a parent port"));
                b = tree.parent(b).expect("non-root has a parent");
            }
            let mut steps: Vec<Step> = downs.into_iter().map(Step::Down).collect();
            steps.extend(std::iter::repeat_n(Step::Up, ups));
            steps
        }

        fn dn(
            pos: NodeId,
            tree: &PartialTree,
            selected: &mut HashSet<(NodeId, Port)>,
        ) -> Option<Move> {
            for port in tree.dangling_ports(pos) {
                if selected.insert((pos, port)) {
                    return Some(Move::Down(port));
                }
            }
            None
        }
    }

    impl Explorer for HashedBfdn {
        fn select_moves(&mut self, ctx: &RoundContext<'_>, out: &mut [Move]) {
            for i in 0..self.k {
                if let Some((from, step)) = self.last_intent[i].take() {
                    if ctx.positions[i] == from {
                        self.walks[i].push(step);
                    }
                }
            }
            let mut selected: HashSet<(NodeId, Port)> = HashSet::new();
            let start = match self.order {
                SelectionOrder::Fixed => 0,
                SelectionOrder::Rotating => (ctx.round as usize) % self.k,
            };
            for idx in 0..self.k {
                let i = (start + idx) % self.k;
                if self.respect_allowed && !ctx.allowed[i] {
                    continue;
                }
                let pos = ctx.positions[i];
                if self.walks[i].is_empty() && !self.shortcut && pos.is_root() {
                    let anchor = self.reanchor(ctx.tree);
                    self.apply_anchor(i, anchor);
                    self.walks[i] = Self::descent(ctx.tree, anchor);
                }
                out[i] = match self.walks[i].pop() {
                    Some(step @ Step::Down(port)) => {
                        self.last_intent[i] = Some((pos, step));
                        Move::Down(port)
                    }
                    Some(step @ Step::Up) => {
                        self.last_intent[i] = Some((pos, step));
                        Move::Up
                    }
                    None => match Self::dn(pos, ctx.tree, &mut selected) {
                        Some(mv) => mv,
                        None if self.shortcut && (pos == self.anchors[i] || pos.is_root()) => {
                            let anchor = self.reanchor(ctx.tree);
                            self.apply_anchor(i, anchor);
                            self.walks[i] = Self::lca_walk(ctx.tree, pos, anchor);
                            match self.walks[i].pop() {
                                Some(step @ Step::Down(port)) => {
                                    self.last_intent[i] = Some((pos, step));
                                    Move::Down(port)
                                }
                                Some(step @ Step::Up) => {
                                    self.last_intent[i] = Some((pos, step));
                                    Move::Up
                                }
                                None => Move::Stay,
                            }
                        }
                        None => Move::Up,
                    },
                };
            }
        }

        fn name(&self) -> &str {
            "hashed-bfdn-reference"
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn hash_trace(trace: &Trace) -> u64 {
    let mut h = FNV_OFFSET;
    for rec in trace.records() {
        fnv(&mut h, rec.round);
        for mv in &rec.moves {
            let code = match mv {
                Move::Stay => 0,
                Move::Up => 1,
                Move::Down(p) => 2 + p.index() as u64,
            };
            fnv(&mut h, code);
        }
        for pos in &rec.positions {
            fnv(&mut h, pos.index() as u64);
        }
    }
    h
}

/// Trace fingerprints freezing explorer behavior, one row per
/// (family, n), eight arms each: plain k=4, shortcut+rotating k=7,
/// random-rule k=5, round-robin k=3, robust-under-stalls k=6,
/// write-read k=5, recursive ℓ=2 k=9, recursive ℓ=3 k=8.
///
/// First recorded at the pre-flattening revision; re-recorded when the
/// RNG moved to the pinned `vendor/rand` stream (the ephemeral stub it
/// replaced drew f64s differently, shifting the stall schedule, random
/// reanchoring, and random-family instances). The stream itself is
/// frozen by `stream_is_pinned` in `vendor/rand`.
#[rustfmt::skip]
const GOLDEN: [(&str, usize, [u64; 8]); 20] = [
    ("path", 40, [0xf5ab77a64e0a0101, 0xb5707a5b7eaa5f00, 0x627c615f84959ff1, 0xf973ea4a7385f931, 0x1b63d8f3ef98cd6a, 0xce10f723ed6dd6cb, 0xedbd2abc31fd7b40, 0xfafbe011972fc1aa]),
    ("path", 180, [0xc3007a006ddbe8ea, 0x922ae55430f67808, 0xe3346a5b261a8068, 0xb81ece67a1277c68, 0x8d9c9b7ed34ca36d, 0x68324d6808bbb6ee, 0xf052afa75ade3b58, 0xc2d35f022d4c1a0e]),
    ("star", 40, [0x81a47951d027dc2d, 0x6c848dd5181b2ced, 0xb18b20e02f35b76d, 0x77869d18b234564c, 0x28dcab5e7f05f677, 0x55ef7b8e4eff5df, 0x33c70f278ef5d9cc, 0x9a54ff37f07d07ed]),
    ("star", 180, [0xa5ad8319d8fa2ad0, 0xeeee7b25f7370b71, 0x9c1bf647aa595b1, 0xfce920e3890128b1, 0x9ba4318c78de9cd6, 0xfe81dd95edd28a1b, 0x2c92329640c75931, 0xadddbf2ee86597b1]),
    ("binary", 40, [0x61b69f938152f139, 0xfb061b7415d7915b, 0xd49878e7efb09d3e, 0x22453178b1ee5135, 0x94c2482cfc092ac4, 0xf145a5ca174d2e1b, 0x4d160c0eb22e3801, 0x100789a05d3be3ba]),
    ("binary", 180, [0x4b7c9c563094a399, 0x46df9c48f9d2b3b2, 0xc47ed4af149b5736, 0xa2bdf4cb83ae4b0f, 0x9ff76811d9c7d9d9, 0xa77bdcad3f81473e, 0xa9a832e4fcdd125b, 0x3163baadf7c8ebba]),
    ("caterpillar", 40, [0xf5fc056da83c0591, 0x523f03fe4c665c4a, 0xe033f09a844f08e8, 0x244a1ffe409954d, 0xe0c44243a4573d59, 0x46f198bd825861d9, 0x6629aa241ac14c89, 0x531cf49f2091d79a]),
    ("caterpillar", 180, [0x2c4460ef50c5bb48, 0xb85f905fd0219c59, 0xb563e961eeb0433a, 0x2ded790c4f742aa5, 0x684d8d7af997bc45, 0x85ba0b6d340a94a6, 0x9f177cebbb988882, 0x3ec503d57c9e66fe]),
    ("spider", 40, [0xb5fd0e861aab253f, 0xbb118c5a4d34981c, 0x5b63c8b25affe57b, 0x19bd67c6fce1e01c, 0xdff24c66e1563136, 0x4d893b2239a018e5, 0x9be09dce2c201efd, 0x2e8121de99429702]),
    ("spider", 180, [0x2d7d3e7316ed302e, 0x4e4e9722e82c1bd0, 0xda8e39009ac93cdf, 0xcb375b676fe11ef, 0x25d2a0cd8b751ddf, 0x3251b0220f240cf8, 0xfef9d1282d627c3, 0x256be041d2dea9f0]),
    ("comb", 40, [0xbac35eafbee5a17a, 0x7e806b3806b65427, 0xc2f56f9ca01dab50, 0xa33f1c8117920249, 0xf45996a90244de8f, 0x1f0b3399ee07c5f2, 0xe92d703cfb231440, 0xab0dbe1dda82ddaa]),
    ("comb", 180, [0xbf4fb1cd3a78989c, 0xabce74c12f3a9f65, 0x198cbad08f274931, 0xd303c0bab7f3b1cb, 0x3ef7815a11d10cd4, 0x13295588894c8830, 0xd8992f692337ff1b, 0xfc64b3c89ae497bc]),
    ("broom", 40, [0xa8bfad77adb528fa, 0xc1b8d37a34bb5a39, 0xb05e277faf4274e7, 0x9511fae8d1075a07, 0x43e551c1b9ecc61c, 0x2922e45237874a45, 0x31707786ae0064e4, 0xd5751687e9c039b8]),
    ("broom", 180, [0x18e5186e86a921ab, 0x8ea66515ae247f07, 0x2792f92b7f6dc302, 0xf29d53d576406b22, 0x53242357495c3883, 0x17ee3b5185067022, 0x809a6725ac99a432, 0x5235cb84679ee582]),
    ("random-recursive", 40, [0x7601a867a99c143b, 0x6e9eef07b28bbc1c, 0x1aa6b5393169783b, 0xa7dbf2f923ec8478, 0x41c15586a798e59d, 0xef830da32e60dfac, 0x9b60a3ea3528ad9a, 0xffd5e2eb9c39451d]),
    ("random-recursive", 180, [0x7a12faf010faa594, 0x101cd8c4a02c4313, 0xac1250d4573a3d27, 0xf8ff912a6f7c4bd5, 0x5039bf0b98b9ae7c, 0xe21e708bbcf360c1, 0x186c3d1a3203cb1e, 0xb60c4ba5527988f9]),
    ("uniform-labeled", 40, [0x556e723dba695b7a, 0x8cbc30c0629dc94c, 0xbf071e1a75687ecc, 0x3b6c7265b52debc8, 0x28fb553659fe82bf, 0x7be4c71ae664d655, 0x8d3d571125a0755c, 0x344e3573ac190e42]),
    ("uniform-labeled", 180, [0x1448dc24decf6de1, 0x72ff688c166df6c6, 0x490c4d3d6a303a9f, 0xa95134f8851648cf, 0x4a448c03ef571301, 0xc856832c71d8bd17, 0xe0c327445bb5f0cb, 0x1a22c1bc9510184d]),
    ("random-bounded-degree", 40, [0x2939c0bf7d44239c, 0x75178c62fe2944be, 0xc1b9950d4438c273, 0xf9b8f8142eb10372, 0x9e04acb4f53e1a49, 0xcf22624b4002a2f1, 0x562b44df13fdff22, 0xde46db7ed08d9239]),
    ("random-bounded-degree", 180, [0xd6c2f8453b387c7, 0x521ae8f5a745edcf, 0x9b26d90a0e8d190d, 0xf4f9884d1212f74b, 0x44b3d5b50c24e267, 0x4dc3053fdf5ac167, 0x513cb155e9bd4ca, 0x5991d4bd3b813143]),
];

/// `(grid index, k, rounds, tree_edges, closed_edges)` recorded at the
/// pre-flattening revision.
const GRAPH_GOLDEN: [(usize, usize, u64, u64, u64); 9] = [
    (0, 1, 120, 35, 25),
    (0, 4, 43, 35, 25),
    (0, 9, 31, 35, 25),
    (1, 1, 110, 35, 20),
    (1, 4, 41, 35, 20),
    (1, 9, 34, 35, 20),
    (2, 1, 242, 77, 44),
    (2, 4, 79, 77, 44),
    (2, 9, 69, 77, 44),
];

fn family_instance(fam: Family, fi: usize, n: usize) -> Tree {
    let seed = (fi as u64) * 1000 + n as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    fam.instance(n, &mut rng)
}

fn trace_of(tree: &Tree, k: usize, algo: &mut dyn bfdn_sim::Explorer) -> Trace {
    Simulator::new(tree, k)
        .record_trace()
        .run(algo)
        .unwrap()
        .trace
        .unwrap()
}

#[test]
fn golden_traces_match_pre_flattening_behavior() {
    for (fi, fam) in Family::ALL.iter().enumerate() {
        for n in [40usize, 180] {
            let tree = family_instance(*fam, fi, n);
            let golden = GOLDEN
                .iter()
                .find(|(name, gn, _)| *name == fam.name() && *gn == n)
                .map(|(_, _, h)| h)
                .expect("every (family, n) has a golden row");
            let mut got = [0u64; 8];
            got[0] = hash_trace(&trace_of(&tree, 4, &mut Bfdn::new(4)));
            got[1] = hash_trace(&trace_of(
                &tree,
                7,
                &mut Bfdn::builder(7)
                    .shortcut(true)
                    .selection_order(SelectionOrder::Rotating)
                    .build(),
            ));
            got[2] = hash_trace(&trace_of(
                &tree,
                5,
                &mut Bfdn::builder(5)
                    .reanchor_rule(ReanchorRule::Random(11))
                    .build(),
            ));
            got[3] = hash_trace(&trace_of(
                &tree,
                3,
                &mut Bfdn::builder(3)
                    .reanchor_rule(ReanchorRule::RoundRobin)
                    .build(),
            ));
            got[4] = {
                let mut algo = Bfdn::new_robust(6);
                let mut sim = Simulator::new(&tree, 6).record_trace();
                let out = sim
                    .run_with(
                        &mut algo,
                        &mut RandomStall::new(0.25, 5),
                        StopCondition::Explored,
                    )
                    .unwrap();
                hash_trace(out.trace.as_ref().unwrap())
            };
            got[5] = hash_trace(&trace_of(&tree, 5, &mut WriteReadBfdn::new(5)));
            got[6] = hash_trace(&trace_of(&tree, 9, &mut BfdnL::new(9, 2)));
            got[7] = hash_trace(&trace_of(&tree, 8, &mut BfdnL::new(8, 3)));
            for (arm, (g, e)) in got.iter().zip(golden.iter()).enumerate() {
                assert_eq!(
                    g,
                    e,
                    "{} n={n} arm {arm}: trace diverged from the recorded baseline",
                    fam.name()
                );
            }
        }
    }
}

#[test]
fn graph_outcomes_match_pre_flattening_behavior() {
    let grids = [
        GridGraph::new(6, 6, &[]),
        GridGraph::new(8, 5, &[Rect::new(2, 1, 4, 3)]),
        GridGraph::new(10, 10, &[Rect::new(1, 1, 3, 8), Rect::new(5, 2, 9, 4)]),
    ];
    for &(gi, k, rounds, tree_edges, closed_edges) in &GRAPH_GOLDEN {
        let out = GraphBfdn::explore(grids[gi].graph(), grids[gi].origin(), k).unwrap();
        assert_eq!(
            (out.rounds, out.tree_edges, out.closed_edges),
            (rounds, tree_edges, closed_edges),
            "grid {gi} k={k}: outcome diverged from pre-flattening behavior"
        );
    }
}

fn tree_from_choices(choices: &[usize]) -> Tree {
    let mut b = TreeBuilder::with_capacity(choices.len() + 1);
    for (i, &c) in choices.iter().enumerate() {
        b.add_child(NodeId::new(c % (i + 1)));
    }
    b.build()
}

fn flat_for(k: usize, variant: u8) -> Bfdn {
    match variant % 5 {
        0 => Bfdn::new(k),
        1 => Bfdn::builder(k).shortcut(true).build(),
        2 => Bfdn::builder(k)
            .selection_order(SelectionOrder::Rotating)
            .reanchor_rule(ReanchorRule::RoundRobin)
            .build(),
        3 => Bfdn::builder(k)
            .reanchor_rule(ReanchorRule::Random(variant as u64))
            .build(),
        _ => Bfdn::builder(k)
            .reanchor_rule(ReanchorRule::FirstCandidate)
            .build(),
    }
}

fn hashed_for(k: usize, variant: u8) -> reference::HashedBfdn {
    use reference::HashedBfdn;
    match variant % 5 {
        0 => HashedBfdn::new(
            k,
            ReanchorRule::LeastLoaded,
            SelectionOrder::Fixed,
            false,
            false,
        ),
        1 => HashedBfdn::new(
            k,
            ReanchorRule::LeastLoaded,
            SelectionOrder::Fixed,
            true,
            false,
        ),
        2 => HashedBfdn::new(
            k,
            ReanchorRule::RoundRobin,
            SelectionOrder::Rotating,
            false,
            false,
        ),
        3 => HashedBfdn::new(
            k,
            ReanchorRule::Random(variant as u64),
            SelectionOrder::Fixed,
            false,
            false,
        ),
        _ => HashedBfdn::new(
            k,
            ReanchorRule::FirstCandidate,
            SelectionOrder::Fixed,
            false,
            false,
        ),
    }
}

/// Deterministic differential sweep: every family × variant × team size
/// at fixed seeds. Complements the proptest below (which explores
/// arbitrary trees) and runs in environments without a proptest runner.
#[test]
fn flat_bfdn_matches_hashed_reference_on_families() {
    for (fi, fam) in Family::ALL.iter().enumerate() {
        for n in [30usize, 120] {
            let tree = family_instance(*fam, fi, n);
            for k in [1usize, 3, 8] {
                for variant in 0u8..5 {
                    let flat_trace = trace_of(&tree, k, &mut flat_for(k, variant));
                    let hashed_trace = trace_of(&tree, k, &mut hashed_for(k, variant));
                    assert!(
                        flat_trace == hashed_trace,
                        "trace diverged: {} n={n} k={k} variant={variant}",
                        fam.name()
                    );
                }
                // Robust variant under a seeded stall adversary.
                let run = |algo: &mut dyn bfdn_sim::Explorer| {
                    let mut sim = Simulator::new(&tree, k).record_trace();
                    sim.run_with(algo, &mut RandomStall::new(0.3, 7), StopCondition::Explored)
                        .unwrap()
                        .trace
                        .unwrap()
                };
                let flat_trace = run(&mut Bfdn::new_robust(k));
                let hashed_trace = run(&mut reference::HashedBfdn::new(
                    k,
                    ReanchorRule::LeastLoaded,
                    SelectionOrder::Fixed,
                    false,
                    true,
                ));
                assert!(
                    flat_trace == hashed_trace,
                    "robust trace diverged: {} n={n} k={k}",
                    fam.name()
                );
            }
        }
    }
}

/// Builds every explorer arm at a given intra-round thread budget (set
/// through the explicit APIs, not `BFDN_ROUND_THREADS`, so the test is
/// environment-independent).
fn arms_at(k: usize, threads: usize) -> Vec<Box<dyn bfdn_sim::Explorer>> {
    vec![
        Box::new(Bfdn::builder(k).round_threads(threads).build()),
        Box::new(
            Bfdn::builder(k)
                .shortcut(true)
                .selection_order(SelectionOrder::Rotating)
                .round_threads(threads)
                .build(),
        ),
        Box::new(
            Bfdn::builder(k)
                .reanchor_rule(ReanchorRule::Random(11))
                .round_threads(threads)
                .build(),
        ),
        Box::new(
            Bfdn::builder(k)
                .reanchor_rule(ReanchorRule::RoundRobin)
                .round_threads(threads)
                .build(),
        ),
        Box::new(WriteReadBfdn::new(k).with_round_threads(threads)),
        Box::new(BfdnL::new(k, 2).with_round_threads(threads)),
        Box::new(BfdnL::new(k, 3).with_round_threads(threads)),
    ]
}

/// Intra-round sharding must not change a single byte of any trace:
/// every explorer arm, every family, thread budgets 1 / 2 / 4, team
/// sizes on both sides of the `k >= 2·threads` sharding threshold.
#[test]
fn round_thread_sharding_is_trace_invariant() {
    for (fi, fam) in Family::ALL.iter().enumerate() {
        let tree = family_instance(*fam, fi, 120);
        for k in [9usize, 16] {
            let baselines: Vec<Trace> = arms_at(k, 1)
                .iter_mut()
                .map(|algo| trace_of(&tree, k, algo.as_mut()))
                .collect();
            for threads in [2usize, 4] {
                for (arm, (mut algo, want)) in
                    arms_at(k, threads).into_iter().zip(&baselines).enumerate()
                {
                    let got = trace_of(&tree, k, algo.as_mut());
                    assert!(
                        got == *want,
                        "{} k={k} threads={threads} arm {arm}: sharded trace diverged",
                        fam.name()
                    );
                }
            }
            // Robust arm under a seeded stall adversary (blocked robots
            // become skip slots in the sharded phase).
            let robust_run = |threads: usize| {
                let mut algo = Bfdn::builder(k).robust(true).round_threads(threads).build();
                let mut sim = Simulator::new(&tree, k).record_trace();
                sim.run_with(
                    &mut algo,
                    &mut RandomStall::new(0.25, 5),
                    StopCondition::Explored,
                )
                .unwrap()
                .trace
                .unwrap()
            };
            let want = robust_run(1);
            for threads in [2usize, 4] {
                assert!(
                    robust_run(threads) == want,
                    "{} k={k} threads={threads}: robust sharded trace diverged",
                    fam.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flat production `Bfdn` must emit the exact same trace as the
    /// hashed reference implementation on arbitrary trees, team sizes and
    /// variants.
    #[test]
    fn flat_bfdn_matches_hashed_reference(
        choices in prop::collection::vec(any::<usize>(), 1..160),
        k in 1usize..20,
        variant in 0u8..5,
    ) {
        let tree = tree_from_choices(&choices);
        let flat_trace = trace_of(&tree, k, &mut flat_for(k, variant));
        let hashed_trace = trace_of(&tree, k, &mut hashed_for(k, variant));
        prop_assert_eq!(
            flat_trace.records().len(),
            hashed_trace.records().len(),
            "round counts diverged on {} k={} variant={}", tree, k, variant
        );
        prop_assert!(
            flat_trace == hashed_trace,
            "trace diverged on {} k={} variant={}", tree, k, variant
        );
    }

    /// Same differential under a stall adversary for the robust variant.
    #[test]
    fn flat_robust_matches_hashed_reference_under_stalls(
        choices in prop::collection::vec(any::<usize>(), 1..120),
        k in 2usize..12,
        stall_seed in 0u64..64,
    ) {
        let tree = tree_from_choices(&choices);
        let run = |algo: &mut dyn bfdn_sim::Explorer| {
            let mut sim = Simulator::new(&tree, k).record_trace();
            sim.run_with(
                algo,
                &mut RandomStall::new(0.3, stall_seed),
                StopCondition::Explored,
            )
            .unwrap()
            .trace
            .unwrap()
        };
        let flat_trace = run(&mut Bfdn::new_robust(k));
        let hashed_trace = run(&mut reference::HashedBfdn::new(
            k,
            ReanchorRule::LeastLoaded,
            SelectionOrder::Fixed,
            false,
            true,
        ));
        prop_assert!(
            flat_trace == hashed_trace,
            "robust trace diverged on {} k={} seed={}", tree, k, stall_seed
        );
    }
}
