//! Property-based tests for `BFDN_ℓ`: arbitrary trees, arbitrary team
//! sizes, all recursion parameters — Theorem 10 must hold and every edge
//! must be explored.

use bfdn::{theorem10_bound, BfdnL};
use bfdn_sim::Simulator;
use bfdn_trees::{NodeId, Tree, TreeBuilder};
use proptest::prelude::*;

fn tree_from_choices(choices: &[usize]) -> Tree {
    let mut b = TreeBuilder::with_capacity(choices.len() + 1);
    for (i, &c) in choices.iter().enumerate() {
        b.add_child(NodeId::new(c % (i + 1)));
    }
    b.build()
}

/// Trees biased towards depth (recent-parent attachment).
fn arb_deep_tree() -> impl Strategy<Value = Tree> {
    prop::collection::vec(0usize..3, 1..200).prop_map(|c| {
        let mut b = TreeBuilder::with_capacity(c.len() + 1);
        for (i, &back) in c.iter().enumerate() {
            b.add_child(NodeId::new(i.saturating_sub(back)));
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn theorem10_holds_on_arbitrary_trees(
        choices in prop::collection::vec(any::<usize>(), 1..200),
        k in 1usize..28,
        ell in 1u32..4,
    ) {
        let tree = tree_from_choices(&choices);
        let mut algo = BfdnL::new(k, ell);
        let outcome = Simulator::new(&tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("BFDN_{ell} stuck on {tree} k={k}: {e}"));
        prop_assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
        let bound = theorem10_bound(tree.len(), tree.depth(), k, tree.max_degree(), ell);
        prop_assert!(
            (outcome.rounds as f64) <= bound,
            "{} > {bound} on {tree} k={k} ℓ={ell}", outcome.rounds
        );
    }

    #[test]
    fn theorem10_holds_on_deep_trees(tree in arb_deep_tree(), k in 1usize..20, ell in 1u32..4) {
        let mut algo = BfdnL::new(k, ell);
        let outcome = Simulator::new(&tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("BFDN_{ell} stuck on {tree} k={k}: {e}"));
        prop_assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
        let bound = theorem10_bound(tree.len(), tree.depth(), k, tree.max_degree(), ell);
        prop_assert!((outcome.rounds as f64) <= bound);
    }

    /// The custom depth schedule must also explore everything.
    #[test]
    fn growth_schedules_explore(tree in arb_deep_tree(), base in 2u32..5) {
        let k = 9;
        let mut algo = BfdnL::with_growth(k, 2, base);
        let outcome = Simulator::new(&tree, k)
            .run(&mut algo)
            .unwrap_or_else(|e| panic!("growth {base} stuck on {tree}: {e}"));
        prop_assert_eq!(outcome.metrics.edges_discovered, tree.num_edges() as u64);
    }

    /// All robots end the run back at the root (the paper's objective
    /// includes the return).
    #[test]
    fn everyone_returns_home(tree in arb_deep_tree(), k in 1usize..12, ell in 1u32..4) {
        let mut algo = BfdnL::new(k, ell);
        let mut sim = Simulator::new(&tree, k);
        sim.run(&mut algo).unwrap();
        prop_assert!(sim.positions().iter().all(|p| p.is_root()));
        prop_assert!(sim.partial().is_complete());
    }
}
