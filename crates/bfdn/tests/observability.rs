//! Integration tests for the observability pipeline around BFDN: the
//! JSONL trace must agree with the algorithm's own counters, and the
//! live bound margins must certify Theorem 1 / Lemma 2 on every round.

use bfdn::{lemma2_bound, theorem1_bound, Bfdn};
use bfdn_obs::{BoundConfig, BoundTracker, JsonlSink, MemorySink};
use bfdn_sim::Simulator;
use bfdn_trees::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Extracts the value of an integer field from a single-line JSON event.
fn field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn jsonl_trace_reanchors_match_the_algorithm_counters() {
    let mut rng = StdRng::seed_from_u64(42);
    let tree = generators::random_recursive(300, &mut rng);
    let k = 8;
    let mut algo = Bfdn::new(k);
    let mut sim = Simulator::new(&tree, k).with_sink(JsonlSink::new(Vec::new()));
    sim.run(&mut algo).unwrap();
    let bytes = sim.into_sink().finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();

    // Exactly one `reanchor` line per increment of `reanchors_by_depth`,
    // with matching per-depth counts.
    let mut by_depth = vec![0u64; algo.reanchors_by_depth().len()];
    let mut total = 0u64;
    for line in text.lines().filter(|l| l.contains(r#""event":"reanchor""#)) {
        let depth = field(line, "depth").expect("reanchor events carry a depth") as usize;
        assert!(depth < by_depth.len(), "depth {depth} never counted");
        by_depth[depth] += 1;
        total += 1;
    }
    assert_eq!(total, algo.total_reanchors());
    assert_eq!(by_depth, algo.reanchors_by_depth());

    // The trace is valid JSONL: every line is one flat object with an
    // `event` discriminator.
    for line in text.lines() {
        assert!(
            line.starts_with(r#"{"event":""#) && line.ends_with('}'),
            "{line}"
        );
    }

    // And it holds one round_completed line per simulated round.
    let rounds = text
        .lines()
        .filter(|l| l.contains(r#""event":"round_completed""#))
        .count() as u64;
    assert_eq!(rounds, sim_rounds(&tree, k));
}

fn sim_rounds(tree: &bfdn_trees::Tree, k: usize) -> u64 {
    let mut algo = Bfdn::new(k);
    Simulator::new(tree, k).run(&mut algo).unwrap().rounds
}

#[test]
fn bound_margins_stay_non_negative_on_every_round() {
    let mut rng = StdRng::seed_from_u64(7);
    for n in [120usize, 500] {
        let tree = generators::uniform_labeled(n, &mut rng);
        for k in [2usize, 8, 32] {
            let config = BoundConfig {
                rounds: Some(theorem1_bound(
                    tree.len(),
                    tree.depth(),
                    k,
                    tree.max_degree(),
                )),
                reanchors_per_depth: Some(lemma2_bound(k, tree.max_degree())),
                urn_steps: None,
            };
            let mut algo = Bfdn::new(k);
            let mut sim = Simulator::new(&tree, k).with_sink(BoundTracker::new(config));
            let outcome = sim.run(&mut algo).unwrap();
            let tracker = sim.sink();
            assert_eq!(tracker.series().len() as u64, outcome.rounds);
            assert!(
                tracker.all_non_negative(),
                "n={n} k={k}: margin went negative: {:?}",
                tracker.series().iter().find(|s| !s.non_negative())
            );
            assert_eq!(tracker.reanchors_by_depth(), algo.reanchors_by_depth());
            assert_eq!(tracker.edges_discovered(), outcome.metrics.edges_discovered);
        }
    }
}

#[test]
fn observation_does_not_change_the_run() {
    let mut rng = StdRng::seed_from_u64(11);
    let tree = generators::random_recursive(250, &mut rng);
    let k = 6;
    let mut plain_algo = Bfdn::new(k);
    let plain = Simulator::new(&tree, k).run(&mut plain_algo).unwrap();
    let mut observed_algo = Bfdn::new(k);
    let mut sim = Simulator::new(&tree, k).with_sink(MemorySink::default());
    let observed = sim.run(&mut observed_algo).unwrap();
    assert_eq!(plain.rounds, observed.rounds);
    assert_eq!(plain.metrics, observed.metrics);
    assert_eq!(
        plain_algo.reanchors_by_depth(),
        observed_algo.reanchors_by_depth()
    );
}
