//! Wire-framing abuse tests: truncated, oversized, and garbage
//! length-prefixed frames, slow-loris writers, and connect-then-idle
//! sockets. The invariant under every abuse: the server answers a
//! structured error or cleanly drops the connection — it never panics
//! and never leaks a worker (checked by running a real explore on a
//! one-worker server after each abuse).
//!
//! The deterministic `#[test]` cases below always run; the `proptest!`
//! block adds randomized byte-level coverage when the real proptest
//! crate is available (the offline stub compiles it away).

use bfdn_service::client::Client;
use bfdn_service::protocol::{read_frame, ErrorCode, ExploreSpec, Response, MAX_FRAME_LEN};
use bfdn_service::server::{serve, ServerConfig, ServerHandle};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A one-worker loopback server with a short read budget, so abuse is
/// cut off quickly and a leaked or panicked worker cannot hide behind a
/// sibling.
fn start_hardened(read_timeout_ms: u64) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: Some(1),
        read_timeout_ms,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Proves the daemon is still fully alive: introspection answers and a
/// real simulation flows through the (single) worker.
fn assert_server_healthy(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("server still accepts");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let status = client.status().expect("status still answers");
    assert_eq!(status.workers, 1);
    let result = client
        .explore(ExploreSpec::new("bfdn", "comb", 50, 2, 99))
        .expect("the worker still executes jobs");
    assert_eq!(result.spec.n, 50);
}

fn shutdown(handle: ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

/// Writes raw bytes to a fresh connection and reads the server's
/// reaction: either a frame that decodes as a structured [`Response`],
/// or a clean connection drop. Anything else (garbled frame, hang past
/// the deadline) fails the test.
fn abuse(handle: &ServerHandle, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    // Stop sending: a frame the bytes left incomplete now depends on the
    // server's deadline, not on more input.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    match read_frame(&mut stream) {
        Ok(reply) => Some(Response::from_json(&reply).expect("reply frames always decode")),
        Err(e) => {
            assert!(e.is_eof() || matches!(e, bfdn_service::protocol::FrameError::Io(_)));
            None
        }
    }
}

/// A length prefix announcing `len` payload bytes.
fn prefix(len: u32) -> [u8; 4] {
    len.to_be_bytes()
}

#[test]
fn truncated_length_prefix_is_dropped_cleanly() {
    let handle = start_hardened(500);
    for cut in 1..4usize {
        let reply = abuse(&handle, &prefix(64)[..cut]);
        assert!(reply.is_none(), "a partial prefix cannot be answered");
    }
    assert_server_healthy(&handle);
    shutdown(handle);
}

#[test]
fn truncated_payload_is_dropped_cleanly() {
    // Mid-frame disconnect: the prefix promises 200 bytes, the payload
    // stops after 20.
    let handle = start_hardened(500);
    let mut bytes = prefix(200).to_vec();
    bytes.extend_from_slice(&[b'x'; 20]);
    let reply = abuse(&handle, &bytes);
    assert!(reply.is_none(), "a half-frame cannot be answered");
    assert_server_healthy(&handle);
    shutdown(handle);
}

#[test]
fn oversized_prefix_gets_structured_too_large_then_drop() {
    let handle = start_hardened(500);
    let reply = abuse(&handle, &prefix(MAX_FRAME_LEN + 1));
    match reply {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::TooLarge),
        other => panic!("expected structured too_large, got {other:?}"),
    }
    assert_server_healthy(&handle);
    shutdown(handle);
}

#[test]
fn garbage_payloads_get_structured_errors() {
    let handle = start_hardened(500);

    // Valid framing, non-UTF-8 payload.
    let raw = [0xff, 0xfe, 0x00, 0x80, 0xc3];
    let mut bytes = prefix(raw.len() as u32).to_vec();
    bytes.extend_from_slice(&raw);
    match abuse(&handle, &bytes) {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected structured bad_request, got {other:?}"),
    }

    // Valid framing, UTF-8 payload that is not a request.
    let junk = b"][ this is not a request {{";
    let mut bytes = prefix(junk.len() as u32).to_vec();
    bytes.extend_from_slice(junk);
    match abuse(&handle, &bytes) {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected structured bad_request, got {other:?}"),
    }

    assert_server_healthy(&handle);
    shutdown(handle);
}

#[test]
fn slow_loris_writer_is_cut_off_by_the_frame_deadline() {
    let handle = start_hardened(400);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Announce a frame, then trickle bytes slower than the whole-frame
    // budget allows. A naive per-read timeout would reset on every byte
    // and keep this handler pinned forever.
    stream.write_all(&prefix(10_000)).expect("prefix");
    let mut dropped = false;
    // Trickling into a closed socket errors within a write or two
    // (RST, then EPIPE); 40 ticks ≈ 4 s is far past the 400 ms budget.
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(100));
        if stream
            .write_all(b"z")
            .and_then(|()| stream.flush())
            .is_err()
        {
            dropped = true;
            break;
        }
    }
    assert!(dropped, "the slow-loris connection was not cut off");
    assert_server_healthy(&handle);
    shutdown(handle);
}

#[test]
fn connect_then_idle_socket_is_reaped() {
    let handle = start_hardened(300);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Send nothing at all; the idle budget must reap this socket.
    let mut probe = [0u8; 16];
    let reaped = matches!(stream.read(&mut probe), Ok(0) | Err(_));
    assert!(reaped, "the idle connection was not dropped");
    assert_server_healthy(&handle);
    shutdown(handle);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary bytes — however they parse as framing — never kill the
    /// server or leak its worker.
    #[test]
    fn arbitrary_bytes_never_kill_the_server(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let handle = start_hardened(400);
        let _ = abuse(&handle, &payload);
        assert_server_healthy(&handle);
        shutdown(handle);
    }

    /// Correctly framed but arbitrary payloads always get a structured
    /// reply (an error, or a real answer if the bytes happen to decode
    /// as a request) on a still-usable connection.
    #[test]
    fn framed_garbage_always_gets_a_structured_reply(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let handle = start_hardened(400);
        let mut bytes = prefix(payload.len() as u32).to_vec();
        bytes.extend_from_slice(&payload);
        prop_assert!(abuse(&handle, &bytes).is_some(), "a complete frame is always answered");
        assert_server_healthy(&handle);
        shutdown(handle);
    }
}
