//! End-to-end tests of the store-backed daemon: a restart against a
//! populated store serves byte-identically with zero re-executions, a
//! crash-truncated segment tail is tolerated (never fatal), a legacy
//! spill migrates into the store, and the resident-bytes budget holds
//! under load while overflow stays retrievable.

use bfdn_service::client::Client;
use bfdn_service::protocol::ExploreSpec;
use bfdn_service::server::{serve, ServerConfig, ServerHandle};
use std::path::Path;
use std::time::Duration;

fn start(config: ServerConfig) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> Client {
    let client = Client::connect(handle.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

fn store_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        store_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn spec_for(seed: u64) -> ExploreSpec {
    ExploreSpec::new("bfdn", "comb", 120, 4, seed)
}

#[test]
fn restart_from_store_is_byte_identical_with_zero_reexecutions() {
    let dir = std::env::temp_dir().join("bfdn_store_e2e_restart");
    let _ = std::fs::remove_dir_all(&dir);

    // Cold server: execute a sweep, let the shutdown persist the index.
    let handle = start(store_config(&dir));
    let mut client = connect(&handle);
    let specs: Vec<ExploreSpec> = (0..6).map(spec_for).collect();
    let (cold, hits, misses) = client.batch(specs.clone()).expect("cold batch");
    assert_eq!((hits, misses), (0, 6));
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
    assert!(dir.join("meta.json").exists(), "store directory populated");
    assert!(dir.join("index.tsv").exists(), "index persisted on drain");

    // Restarted server: same store, empty memory. Every spec must come
    // back byte-identical without a single execution.
    let handle = start(store_config(&dir));
    let mut client = connect(&handle);
    for (seed, c) in cold.iter().enumerate() {
        let w = client.explore(spec_for(seed as u64)).expect("warm explore");
        assert!(w.cached, "seed {seed} served from the store");
        assert_eq!(
            c.payload_json(),
            w.payload_json(),
            "restart must be byte-identical"
        );
    }
    let status = client.status().expect("status");
    assert_eq!(status.completed, 0, "no job ever reached the queue");
    let text = client.metrics().expect("metrics");
    assert!(
        text.contains("bfdn_bound_checked_total 0"),
        "zero re-executions on the warm server: {text}"
    );
    // A re-issued batch is all hits too (memory + store tiers combined).
    let (warm, hits, misses) = client.batch(specs).expect("warm batch");
    assert_eq!((hits, misses), (6, 0), "all served without execution");
    assert!(warm.iter().all(|r| r.cached));
    let cache = client.cache_stats().expect("cache stats");
    assert!(cache.store_hits > 0, "the warm answers came from disk");
    assert!(cache.segments >= 1);
    assert!(cache.on_disk_bytes > 0);
    // The ratio measures the codec (stored vs raw payload bytes); the
    // RAW fallback pins it at >= 1.0 whenever records exist, and small
    // low-redundancy payloads may sit exactly there.
    assert!(
        cache.compression_ratio >= 1.0,
        "stored payload never exceeds raw: {}",
        cache.compression_ratio
    );
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_truncated_segment_tail_is_dropped_not_fatal() {
    let dir = std::env::temp_dir().join("bfdn_store_e2e_crash");
    let _ = std::fs::remove_dir_all(&dir);

    // Sequential explores so the segment's record order is the seed
    // order — the file's tail frame belongs to the last seed.
    let handle = start(store_config(&dir));
    let mut client = connect(&handle);
    let mut payloads = Vec::new();
    for seed in 0..5 {
        payloads.push(client.explore(spec_for(seed)).expect("cold").payload_json());
    }
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    // "kill -9 mid-write": chop a few bytes off the newest segment so
    // its final frame is torn; the persisted index is now stale too.
    let segment = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-"))
        })
        .max()
        .expect("at least one segment");
    let bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 7);
    std::fs::write(&segment, &bytes[..bytes.len() - 7]).expect("truncate tail");

    // The restarted daemon must come up (index rebuilt by scan), serve
    // the intact records byte-identically, and only re-execute the one
    // whose frame was torn.
    let handle = start(store_config(&dir));
    let mut client = connect(&handle);
    for (seed, payload) in payloads.iter().enumerate().take(4) {
        let hit = client.explore(spec_for(seed as u64)).expect("intact");
        assert!(hit.cached, "seed {seed} survived the torn tail");
        assert_eq!(&hit.payload_json(), payload, "byte-identical");
    }
    let torn = client.explore(spec_for(4)).expect("recomputed");
    assert!(!torn.cached, "the torn record is re-executed, not served");
    assert_eq!(&torn.payload_json(), &payloads[4], "determinism holds");
    let status = client.status().expect("status");
    assert_eq!(status.completed, 1, "exactly one re-execution");
    let text = client.metrics().expect("metrics");
    assert!(
        text.contains("bfdn_store_truncated_segments_total 1"),
        "the dropped tail is observable: {text}"
    );
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_spill_migrates_into_the_store() {
    let dir = std::env::temp_dir().join("bfdn_store_e2e_migrate");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spill = dir.join("cache.jsonl");
    let store = dir.join("store");

    // A store-less server writes the legacy spill on shutdown.
    let handle = start(ServerConfig {
        spill: Some(spill.clone()),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let cold = client.explore(spec_for(9)).expect("cold");
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
    assert!(spill.exists());

    // A store-backed server imports it once at startup and serves the
    // spec from disk without re-executing.
    let handle = start(ServerConfig {
        store_dir: Some(store.clone()),
        migrate_spill: Some(spill.clone()),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let warm = client.explore(spec_for(9)).expect("warm");
    assert!(warm.cached, "served from the migrated store");
    assert_eq!(warm.payload_json(), cold.payload_json());
    assert_eq!(client.status().expect("status").completed, 0);
    assert!(client.cache_stats().expect("stats").store_hits >= 1);
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resident_budget_holds_while_overflow_serves_from_disk() {
    let dir = std::env::temp_dir().join("bfdn_store_e2e_budget");
    let _ = std::fs::remove_dir_all(&dir);

    // A budget far smaller than the working set: most results must live
    // on disk only.
    let budget = 4_096u64;
    let handle = start(ServerConfig {
        store_budget_bytes: Some(budget),
        ..store_config(&dir)
    });
    let mut client = connect(&handle);
    let specs: Vec<ExploreSpec> = (0..16).map(spec_for).collect();
    let (cold, _, misses) = client.batch(specs.clone()).expect("cold batch");
    assert_eq!(misses, 16);
    let cache = client.cache_stats().expect("stats after flood");
    assert!(
        cache.resident_bytes <= budget,
        "resident {} exceeds budget {budget}",
        cache.resident_bytes
    );
    assert!(
        cache.entries < 16,
        "the memory tier cannot hold the working set"
    );

    // Everything is still retrievable, byte-identically, and serving it
    // never pushes the gauge past the budget.
    let (warm, hits, misses) = client.batch(specs).expect("warm batch");
    assert_eq!((hits, misses), (16, 0), "no re-execution");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.payload_json(), w.payload_json());
    }
    let cache = client.cache_stats().expect("stats after reheat");
    assert!(cache.resident_bytes <= budget);
    assert!(cache.store_hits > 0, "overflow came back from disk");
    let text = client.metrics().expect("metrics");
    assert!(text.contains("bfdn_bound_violations_total 0"), "{text}");
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    let _ = std::fs::remove_dir_all(&dir);
}
