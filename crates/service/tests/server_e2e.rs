//! End-to-end tests of the serving daemon over real loopback sockets:
//! served results match direct execution byte for byte, backpressure
//! answers `Busy` instead of blocking, graceful shutdown drains
//! in-flight work, and wire-level garbage gets structured errors.

use bfdn_service::client::{Client, ClientError};
use bfdn_service::protocol::{
    read_frame, write_frame, ErrorCode, ExploreSpec, Request, Response, SpanPayload, MAX_FRAME_LEN,
};
use bfdn_service::server::{serve, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A loopback server on an OS-assigned port.
fn start(config: ServerConfig) -> bfdn_service::server::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("bind loopback")
}

fn connect(handle: &bfdn_service::server::ServerHandle) -> Client {
    let client = Client::connect(handle.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

#[test]
fn served_explore_matches_direct_execution() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    let spec = ExploreSpec::new("bfdn", "comb", 200, 4, 7);
    let served = client.explore(spec.clone()).expect("served result");
    let (direct, _) = bfdn_service::exec::run_spec(&spec).expect("direct result");
    assert!(!served.cached, "first request is a miss");
    assert_eq!(
        served.payload_json(),
        direct.payload_json(),
        "the wire must not change the result"
    );

    // Second request: a cache hit with the byte-identical payload.
    let hit = client.explore(spec).expect("cached result");
    assert!(hit.cached);
    assert_eq!(hit.payload_json(), direct.payload_json());

    let status = client.status().expect("status");
    assert_eq!(status.explores, 2);
    assert_eq!(status.cache_hits, 1);
    assert_eq!(status.completed, 1, "the hit never reached the queue");

    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn batch_reissue_is_all_hits_with_identical_payloads() {
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    let specs: Vec<ExploreSpec> = (0..6)
        .map(|seed| ExploreSpec::new("bfdn", "random-recursive", 150, 4, seed))
        .collect();
    let (cold, hits, misses) = client.batch(specs.clone()).expect("cold batch");
    assert_eq!((hits, misses), (0, 6));
    assert!(cold.iter().all(|r| !r.cached));

    let (warm, hits, misses) = client.batch(specs.clone()).expect("warm batch");
    assert_eq!((hits, misses), (6, 0), "re-issued batch is 100% cache hits");
    assert!(warm.iter().all(|r| r.cached));
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.payload_json(), w.payload_json());
    }
    // Results come back in request order.
    for (spec, r) in specs.iter().zip(&warm) {
        assert_eq!(&r.spec, spec);
    }

    let cache = client.cache_stats().expect("cache stats");
    assert_eq!(cache.entries, 6);
    assert_eq!(cache.hits, 6);
    assert_eq!(cache.insertions, 6);

    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn full_queue_answers_busy_without_deadlock() {
    // One worker, queue depth 1: a slow job occupies the worker, a second
    // fills the queue, everything after that must bounce with Busy.
    let handle = start(ServerConfig {
        workers: Some(1),
        queue_depth: 1,
        ..ServerConfig::default()
    });

    let slow = |seed: u64| {
        let mut spec = ExploreSpec::new("bfdn", "comb", 60, 2, seed);
        spec.options.delay_ms = 400;
        spec
    };
    let clients: Vec<std::thread::JoinHandle<Result<_, ClientError>>> = (0..4)
        .map(|seed| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr)?;
                client.set_read_timeout(Some(Duration::from_secs(30)))?;
                // Stagger so the first request reaches the worker first.
                std::thread::sleep(Duration::from_millis(seed * 50));
                client.explore(slow(seed))
            })
        })
        .collect();

    let outcomes: Vec<Result<_, ClientError>> = clients
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .collect();
    let served = outcomes.iter().filter(|r| r.is_ok()).count();
    let busy = outcomes
        .iter()
        .filter(
            |r| matches!(r, Err(e) if e.as_server_error().map(|w| w.code) == Some(ErrorCode::Busy)),
        )
        .count();
    assert_eq!(served + busy, 4, "every request got a definite answer");
    assert!(served >= 1, "the in-flight job completes");
    assert!(busy >= 1, "overflow is rejected, not queued");

    let mut client = connect(&handle);
    let status = client.status().expect("server still responsive");
    assert_eq!(status.rejects as usize, busy);
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn split_batches_interleave_so_small_client_is_not_starved() {
    // One worker and chunk-of-one splitting make the schedule easy to
    // reason about: a big batch must not monopolize the queue, so a
    // small batch arriving later finishes while the big one is still
    // running. Without splitting, the small client would wait for the
    // whole big batch head-to-tail.
    let handle = start(ServerConfig {
        workers: Some(1),
        batch_split: 1,
        ..ServerConfig::default()
    });

    let slow = |seed: u64| {
        let mut spec = ExploreSpec::new("bfdn", "comb", 60, 2, seed);
        spec.options.delay_ms = 150;
        spec
    };
    let run_batch = |addr: std::net::SocketAddr, specs: Vec<ExploreSpec>| {
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let (results, hits, misses) = client.batch(specs.clone()).expect("batch");
        // Chunk aggregation preserves request order end to end.
        for (spec, result) in specs.iter().zip(&results) {
            assert_eq!(&result.spec, spec);
        }
        (results.len(), hits, misses, std::time::Instant::now())
    };

    let addr = handle.addr();
    let big = std::thread::spawn(move || run_batch(addr, (0..6).map(slow).collect()));
    // Let the big batch get its first chunks in before the small one
    // arrives.
    std::thread::sleep(Duration::from_millis(220));
    let addr = handle.addr();
    let small = std::thread::spawn(move || run_batch(addr, (100..102).map(slow).collect()));

    let (big_len, _, big_misses, big_done) = big.join().expect("no panic");
    let (small_len, _, small_misses, small_done) = small.join().expect("no panic");
    assert_eq!((big_len, big_misses), (6, 6));
    assert_eq!((small_len, small_misses), (2, 2));
    assert!(
        small_done < big_done,
        "the late small batch finishes first because chunks interleave"
    );

    let mut client = connect(&handle);
    let status = client.status().expect("status");
    assert_eq!(status.batches, 2);
    assert_eq!(status.explores, 8);
    assert_eq!(status.completed, 8, "every chunk ran as its own job");
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn concurrent_scrapes_all_succeed_on_the_fixed_pool() {
    use std::io::Read;

    let handle = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        metrics_scrapers: 2,
        ..ServerConfig::default()
    });
    let metrics_http = handle.metrics_addr().expect("metrics listener bound");

    // Four scrapes per pool thread, all in flight at once: the fixed
    // pool must answer every one (the backlog absorbs the burst).
    let scrapers: Vec<std::thread::JoinHandle<String>> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(metrics_http).expect("connect scraper");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("timeout");
                stream
                    .write_all(b"GET /metrics HTTP/1.1\r\nHost: bfdn\r\n\r\n")
                    .expect("send scrape");
                let mut reply = String::new();
                stream.read_to_string(&mut reply).expect("read scrape");
                reply
            })
        })
        .collect();
    for scraper in scrapers {
        let reply = scraper.join().expect("no panic");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("bfdn_queue_depth"), "{reply}");
    }

    let mut client = connect(&handle);
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let handle = start(ServerConfig {
        workers: Some(1),
        queue_depth: 4,
        ..ServerConfig::default()
    });

    // A slow job that is mid-flight when the shutdown lands.
    let addr = handle.addr();
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut spec = ExploreSpec::new("bfdn", "comb", 80, 2, 9);
        spec.options.delay_ms = 500;
        client.explore(spec)
    });
    std::thread::sleep(Duration::from_millis(150));

    let mut client = connect(&handle);
    client.shutdown().expect("bye");

    let result = in_flight.join().expect("no panic");
    let result = result.expect("the in-flight job is drained, not dropped");
    assert_eq!(result.metrics.rounds, {
        let spec = ExploreSpec::new("bfdn", "comb", 80, 2, 9);
        bfdn_service::exec::run_spec(&spec)
            .unwrap()
            .0
            .metrics
            .rounds
    });

    // New work after the drain began is refused, not queued.
    let refused = Client::connect(handle.addr()).and_then(|mut c| {
        c.set_read_timeout(Some(Duration::from_secs(5)))?;
        c.explore(ExploreSpec::new("bfdn", "comb", 40, 2, 0))
    });
    if let Err(e) = refused {
        if let Some(wire) = e.as_server_error() {
            assert_eq!(wire.code, ErrorCode::ShuttingDown);
        }
        // A connection refused / reset is also an acceptable outcome once
        // the accept loop has exited.
    }

    handle.join().expect("clean drain");
}

#[test]
fn wire_garbage_gets_structured_errors() {
    let handle = start(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    // Malformed JSON → bad_request, connection stays usable.
    write_frame(&mut stream, "this is not json").unwrap();
    let reply = read_frame(&mut stream).unwrap();
    match Response::from_json(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
        other => panic!("expected error, got {other:?}"),
    }

    // Wrong protocol version → structured unsupported_version.
    write_frame(&mut stream, r#"{"v":99,"type":"status"}"#).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    match Response::from_json(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected error, got {other:?}"),
    }

    // Oversized frame announcement → too_large, then the connection is
    // dropped (the payload cannot be resynchronized).
    stream
        .write_all(&(MAX_FRAME_LEN + 1).to_be_bytes())
        .unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).unwrap();
    match Response::from_json(&reply).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::TooLarge),
        other => panic!("expected error, got {other:?}"),
    }

    let mut client = connect(&handle);
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn telemetry_traces_a_known_request_sequence() {
    use std::io::Read;

    let dir = std::env::temp_dir().join("bfdn_service_e2e_telemetry");
    std::fs::create_dir_all(&dir).unwrap();
    let access_log = dir.join("access.jsonl");
    let _ = std::fs::remove_file(&access_log);

    let handle = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        access_log: Some(access_log.clone()),
        ..ServerConfig::default()
    });
    let metrics_http = handle.metrics_addr().expect("metrics listener bound");
    let mut client = connect(&handle);

    // A known sequence: one miss, one hit, one batch of three where one
    // item is already cached.
    let spec = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
    assert!(!client.explore(spec.clone()).expect("miss").cached);
    assert!(client.explore(spec.clone()).expect("hit").cached);
    let batch: Vec<ExploreSpec> = (1..=3)
        .map(|seed| ExploreSpec::new("bfdn", "comb", 100, 4, seed))
        .collect();
    let (_, hits, misses) = client.batch(batch).expect("batch");
    assert_eq!((hits, misses), (1, 2));

    let text = client.metrics().expect("metrics over the wire protocol");
    // Request mix: the in-progress metrics request is not yet counted.
    assert!(
        text.contains(r#"bfdn_requests_total{type="explore"} 2"#),
        "{text}"
    );
    assert!(text.contains(r#"bfdn_requests_total{type="batch"} 1"#));
    // Two jobs reached the queue (the explore miss and the batch); the
    // explore hit never did. Histogram counts are exact.
    assert!(text.contains("bfdn_request_queue_wait_seconds_count 2"));
    assert!(text.contains("bfdn_request_execute_seconds_count 2"));
    assert!(text.contains(r#"bfdn_request_execute_seconds_bucket{le="+Inf"} 2"#));
    // Three replies were serialized before this metrics reply.
    assert!(text.contains("bfdn_request_serialize_seconds_count 3"));
    // Three specs actually executed, each re-checked against the paper.
    assert!(text.contains("bfdn_bound_checked_total 3"));
    assert!(text.contains("bfdn_bound_violations_total 0"));
    let theorem1 = text
        .lines()
        .find(|l| l.starts_with(r#"bfdn_bound_margin_worst{bound="theorem1_rounds"}"#))
        .expect("worst-margin gauge is exported");
    assert!(
        !theorem1.contains("Inf"),
        "three runs shrank the gauge: {theorem1}"
    );
    assert!(text.contains(r#"bfdn_worker_busy_ns_total{worker="0"}"#));
    assert!(text.contains("bfdn_queue_depth 0"));
    assert!(text.contains("# TYPE bfdn_request_execute_seconds histogram"));

    // The same exposition over plain HTTP for standard scrapers.
    let mut scrape = TcpStream::connect(metrics_http).expect("connect scraper");
    scrape
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bfdn\r\n\r\n")
        .unwrap();
    let mut http_reply = String::new();
    scrape.read_to_string(&mut http_reply).expect("read scrape");
    assert!(http_reply.starts_with("HTTP/1.1 200 OK"), "{http_reply}");
    assert!(http_reply.contains("text/plain; version=0.0.4"));
    assert!(http_reply.contains(r#"bfdn_requests_total{type="explore"} 2"#));

    // Anything but /metrics is a 404.
    let mut other = TcpStream::connect(metrics_http).expect("connect");
    other
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    other.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut not_found = String::new();
    other.read_to_string(&mut not_found).expect("read 404");
    assert!(not_found.starts_with("HTTP/1.1 404"), "{not_found}");

    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    // The access log has one JSON line per wire request, in order:
    // explore (miss), explore (hit), batch, metrics, shutdown.
    let log = std::fs::read_to_string(&access_log).expect("access log written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 5, "{log}");
    assert!(lines[0].contains(r#""request":"explore""#));
    assert!(lines[0]
        .contains(r#""key":"v1|algo=bfdn|family=comb|n=100|k=4|seed=1|manifest=false|delay=0""#));
    assert!(lines[0].contains(r#""outcome":"ok""#));
    assert!(lines[0].contains(r#""cached":false"#));
    assert!(lines[1].contains(r#""cached":true"#));
    assert!(
        lines[1].contains(r#""queue_wait_ns":0"#),
        "a hit never queues: {}",
        lines[1]
    );
    assert!(lines[2].contains(r#""request":"batch""#));
    assert!(lines[2].contains(r#""key":"batch[3]""#));
    assert!(lines[3].contains(r#""request":"metrics""#));
    assert!(lines[4].contains(r#""request":"shutdown""#));
    for line in &lines {
        assert!(
            line.starts_with(r#"{"id":"#) && line.ends_with('}'),
            "{line}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_split_batch_yields_one_root_with_one_chunk_child_per_sub_job() {
    let handle = start(ServerConfig {
        workers: Some(2),
        batch_split: 2,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let trace_id = 0xfeed_f00d_0000_0001u64;
    client.set_trace(Some(trace_id));
    let specs: Vec<ExploreSpec> = (0..5)
        .map(|seed| ExploreSpec::new("bfdn", "comb", 80, 2, seed))
        .collect();
    let (results, hits, misses) = client.batch(specs).expect("batch");
    assert_eq!(results.len(), 5);
    assert_eq!((hits, misses), (0, 5));
    assert_eq!(
        client.last_trace(),
        Some(trace_id),
        "the server echoes the client's trace id"
    );

    client.set_trace(None);
    let payload = client.trace_spans(Some(trace_id)).expect("span ring");
    assert_eq!(payload.dropped, 0, "nothing fell out of the ring");
    let spans = &payload.spans;
    assert!(spans.iter().all(|s| s.trace == trace_id));

    let roots: Vec<&SpanPayload> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "one root span per request: {spans:#?}");
    let root = roots[0];
    assert_eq!(root.name, "request");
    assert!(
        root.attrs.iter().any(|(k, v)| k == "kind" && v == "batch"),
        "{:?}",
        root.attrs
    );

    // decode and serialize bracket the request under the root.
    assert!(spans
        .iter()
        .any(|s| s.parent == root.span && s.name == "decode"));
    assert!(spans
        .iter()
        .any(|s| s.parent == root.span && s.name == "serialize"));

    // 5 specs at --batch-split 2 make sub-jobs of 2+2+1: exactly one
    // chunk child per sub-job, each with its own queue wait + execution.
    let chunks: Vec<&SpanPayload> = spans.iter().filter(|s| s.name == "chunk").collect();
    assert_eq!(chunks.len(), 3, "{spans:#?}");
    assert!(chunks.iter().all(|c| c.parent == root.span));
    let mut chunk_items = 0u64;
    for chunk in &chunks {
        chunk_items += chunk
            .attrs
            .iter()
            .find(|(k, _)| k == "items")
            .and_then(|(_, v)| v.parse::<u64>().ok())
            .expect("chunk items attr");
        let kids: Vec<&SpanPayload> = spans.iter().filter(|s| s.parent == chunk.span).collect();
        assert!(
            kids.iter().any(|s| s.name == "queue_wait"),
            "chunk {kids:#?}"
        );
        let execute = kids
            .iter()
            .find(|s| s.name == "execute")
            .expect("each chunk executes");
        // Each executed spec shows its cache miss, run, and insert.
        let exec_kids: Vec<&SpanPayload> =
            spans.iter().filter(|s| s.parent == execute.span).collect();
        assert!(exec_kids.iter().any(|s| s.name == "cache_lookup"));
        assert!(exec_kids.iter().any(|s| s.name == "run_spec"));
        assert!(exec_kids.iter().any(|s| s.name == "cache_insert"));
    }
    assert_eq!(chunk_items, 5, "chunks cover every spec exactly once");

    // Simulator phases land as children of a run_spec span.
    let run_spec = spans
        .iter()
        .find(|s| s.name == "run_spec")
        .expect("run_spec");
    for phase in ["build_tree", "explore", "sim_rounds"] {
        assert!(
            spans
                .iter()
                .any(|s| s.parent == run_spec.span && s.name == phase),
            "missing {phase} under run_spec: {spans:#?}"
        );
    }

    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn client_hangup_still_closes_the_request_span() {
    let handle = start(ServerConfig::default());
    let trace_id = 0xabad_cafe_0000_0001u64;
    {
        // A reply-hangup persona: send a traced request, then vanish
        // without reading the reply.
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let request = Request::Explore(ExploreSpec::new("bfdn", "comb", 80, 2, 77));
        write_frame(&mut stream, &request.to_json_traced(Some(trace_id))).expect("send");
    }

    // The root span must close anyway — poll the ring until it shows up.
    let mut client = connect(&handle);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let root = loop {
        let payload = client.trace_spans(Some(trace_id)).expect("span ring");
        if let Some(root) = payload
            .spans
            .iter()
            .find(|s| s.parent == 0 && s.name == "request")
        {
            break root.clone();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "root span never closed: {:#?}",
            payload.spans
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        root.attrs
            .iter()
            .any(|(k, v)| k == "kind" && v == "explore"),
        "{:?}",
        root.attrs
    );

    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
}

#[test]
fn spill_warm_starts_a_fresh_server() {
    let dir = std::env::temp_dir().join("bfdn_service_e2e_spill");
    std::fs::create_dir_all(&dir).unwrap();
    let spill = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&spill);

    let spec = ExploreSpec::new("cte", "binary", 120, 4, 3);

    // First server computes and spills on shutdown.
    let handle = start(ServerConfig {
        spill: Some(spill.clone()),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let cold = client.explore(spec.clone()).expect("cold run");
    assert!(!cold.cached);
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");
    assert!(spill.exists(), "shutdown spilled the cache");

    // Second server answers the same spec from the warm-loaded cache.
    let handle = start(ServerConfig {
        spill: Some(spill.clone()),
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    let warm = client.explore(spec).expect("warm run");
    assert!(warm.cached, "answered from the spill file");
    assert_eq!(warm.payload_json(), cold.payload_json());
    let status = client.status().expect("status");
    assert_eq!(status.completed, 0, "nothing was re-simulated");
    client.shutdown().expect("bye");
    handle.join().expect("clean drain");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_peer_fill_spans_both_shards_and_stitches_into_one_tree() {
    use bfdn_service::stitch::{stitch, ProcessSpans};

    // Shard A computes the spec; shard B is peered at A and has never
    // seen it, so a request on B goes through the peer cache-fill path.
    let peer = start(ServerConfig::default());
    let peer_addr = peer.addr().to_string();
    let home = start(ServerConfig {
        peers: vec![peer_addr.clone()],
        ..ServerConfig::default()
    });

    let spec = ExploreSpec::new("bfdn", "comb", 150, 4, 11);
    let mut warm = connect(&peer);
    assert!(!warm.explore(spec.clone()).expect("warm the peer").cached);

    let trace = 0x00f1ee7f1ee7f00d;
    let mut client = connect(&home);
    client.set_trace(Some(trace));
    let filled = client.explore(spec).expect("peer-filled result");
    assert!(filled.cached, "served from the peer's cache, not executed");

    // The requesting shard's ring: a back-dated peer_fill child span
    // carrying the peer's address — the hop the old wire frames lost.
    let home_spans = client.trace_spans(Some(trace)).expect("home ring");
    assert_eq!(home_spans.dropped, 0);
    let fill = home_spans
        .spans
        .iter()
        .find(|s| s.name == "peer_fill")
        .expect("peer_fill span on the requesting shard");
    assert!(fill
        .attrs
        .iter()
        .any(|(k, v)| k == "peer" && *v == peer_addr));
    assert!(fill.attrs.iter().any(|(k, v)| k == "hit" && v == "true"));
    let root = home_spans
        .spans
        .iter()
        .find(|s| s.parent == 0)
        .expect("request root");
    assert_eq!(fill.parent, root.span, "peer_fill hangs under the root");

    // The trace envelope rode the PeerFill frame: the peer's ring holds
    // its side of the probe under the same trace id.
    let mut peer_client = connect(&peer);
    let peer_spans = peer_client.trace_spans(Some(trace)).expect("peer ring");
    assert_eq!(peer_spans.dropped, 0);
    assert!(
        !peer_spans.spans.is_empty(),
        "peer recorded the probe under the propagated trace id"
    );

    // Stitched: one tree across both processes, the peer's request
    // hanging under the home shard's peer_fill span.
    let stitched = stitch(&[
        ProcessSpans::from_payload("home", home_spans),
        ProcessSpans::from_payload(&peer_addr, peer_spans),
    ]);
    assert_eq!(stitched.dropped, 0);
    assert_eq!(
        stitched.spans.iter().filter(|s| s.parent == 0).count(),
        1,
        "stitching yields a single root"
    );
    let fill = stitched
        .spans
        .iter()
        .find(|s| s.name == "peer_fill")
        .expect("stitched peer_fill");
    let remote_root = stitched
        .spans
        .iter()
        .find(|s| {
            s.parent == fill.span && s.attrs.iter().any(|(k, v)| k == "shard" && *v == peer_addr)
        })
        .expect("peer-side request re-parented under the peer_fill hop");
    assert!(remote_root.start_ns >= fill.start_ns);

    client.shutdown().expect("bye home");
    home.join().expect("drain home");
    peer_client.shutdown().expect("bye peer");
    peer.join().expect("drain peer");
}
