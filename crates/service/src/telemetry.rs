//! The daemon's telemetry surface: one [`ServiceMetrics`] per server
//! holding every instrument the daemon exports, plus the structured
//! JSONL access log.
//!
//! Instruments live in a [`bfdn_obs::Registry`] and are rendered as
//! Prometheus text exposition — reachable both through the
//! [`crate::protocol::Request::Metrics`] wire request and through the
//! daemon's optional `--metrics-addr` plain-HTTP listener. Hot-path
//! updates are lock-free (atomics only); point-in-time series (queue
//! depth, in-flight jobs, cache occupancy) are refreshed from their
//! sources at render time so every scrape is consistent.
//!
//! The bound-margin aggregation is the serving-layer continuation of
//! `bfdn-obs`'s per-run [`bfdn_obs::BoundTracker`]: every executed spec
//! feeds its final Theorem 1 (`2n/k + D²(min{log Δ, log k}+3)`) and
//! Lemma 2 margins into worst-observed gauges and a violation counter,
//! so a long-running daemon continuously re-checks the paper's
//! guarantees across everything it has ever served.

use crate::protocol::{CacheStatsPayload, ExploreResult};
use bfdn_obs::json::JsonObject;
use bfdn_obs::metrics::{register_build_info, DEFAULT_LATENCY_BUCKETS};
use bfdn_obs::{Counter, Gauge, Histogram, Registry, RunManifest};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The request types tracked by `bfdn_requests_total{type=...}`;
/// `invalid` covers frames that decode to no known request.
pub const REQUEST_TYPES: [&str; 9] = [
    "explore",
    "batch",
    "status",
    "cache_stats",
    "metrics",
    "trace",
    "peer_fill",
    "shutdown",
    "invalid",
];

/// The phase labels of `bfdn_slow_phase_total{phase=...}`: the request
/// phases a slow request's latency is attributed to, plus `other` for
/// time outside the three instrumented phases (decode, socket writes,
/// handler scheduling).
pub const SLOW_PHASES: [&str; 4] = ["queue_wait", "execute", "serialize", "other"];

/// The phases the worker-profiling sampler distinguishes, indexed by the
/// value a worker stores in its atomic phase slot: `idle` (blocked on
/// the job queue) and `execute` (running a job).
pub const WORKER_PHASES: [&str; 2] = ["idle", "execute"];

/// Margin samples kept in the per-shard bound-margin window ring;
/// `bfdn_bound_margin_window_worst` is the minimum over this window, so
/// it recovers after a transient dip where the all-time
/// `bfdn_bound_margin_worst` gauge cannot.
pub const MARGIN_WINDOW: usize = 256;

/// The watchdog threshold: a Theorem 1 margin below this fraction of its
/// bound counts as "trending toward 0" and fires
/// `bfdn_margin_watchdog_total`.
pub const MARGIN_WATCHDOG_FRACTION: f64 = 0.05;

/// Every instrument the daemon exports, pre-registered in one
/// [`Registry`].
pub struct ServiceMetrics {
    registry: Registry,
    requests: Vec<(&'static str, Arc<Counter>)>,
    queue_wait: Arc<Histogram>,
    execute: Arc<Histogram>,
    serialize: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    rejects: Arc<Counter>,
    slow_requests: Arc<Counter>,
    slow_phase: Vec<(&'static str, Arc<Counter>)>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_spill_loaded: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_resident_bytes: Arc<Gauge>,
    store_hits: Arc<Counter>,
    store_segments: Arc<Gauge>,
    store_on_disk_bytes: Arc<Gauge>,
    store_compression_ratio: Arc<Gauge>,
    store_records: Arc<Gauge>,
    store_live_bytes: Arc<Gauge>,
    store_dead_bytes: Arc<Gauge>,
    store_raw_payload_bytes: Arc<Gauge>,
    store_stored_payload_bytes: Arc<Gauge>,
    store_compactions: Arc<Counter>,
    store_truncated_segments: Arc<Counter>,
    worker_busy: Vec<Arc<Counter>>,
    worker_state: Vec<Arc<Gauge>>,
    worker_samples: Vec<Vec<Arc<Counter>>>,
    peer_fill_hits: Arc<Counter>,
    peer_fill_misses: Arc<Counter>,
    bound_checked: Arc<Counter>,
    bound_violations: Arc<Counter>,
    margin_theorem1: Arc<Gauge>,
    margin_lemma2: Arc<Gauge>,
    margin_window: Mutex<VecDeque<f64>>,
    margin_window_worst: Arc<Gauge>,
    margin_watchdog: Arc<Counter>,
}

impl ServiceMetrics {
    /// Registers the daemon's full instrument set for `workers` worker
    /// threads.
    pub fn new(workers: usize) -> Self {
        let registry = Registry::new();
        register_build_info(&registry, env!("CARGO_PKG_VERSION"));
        let requests = REQUEST_TYPES
            .iter()
            .map(|t| {
                (
                    *t,
                    registry.counter(
                        "bfdn_requests_total",
                        "Requests received, by decoded type.",
                        &[("type", t)],
                    ),
                )
            })
            .collect();
        let latency =
            |name: &str, help: &str| registry.histogram(name, help, &[], &DEFAULT_LATENCY_BUCKETS);
        let worker_busy = (0..workers)
            .map(|i| {
                let index = i.to_string();
                registry.counter(
                    "bfdn_worker_busy_ns_total",
                    "Nanoseconds each worker spent executing jobs.",
                    &[("worker", index.as_str())],
                )
            })
            .collect();
        let worker_state = (0..workers)
            .map(|i| {
                let index = i.to_string();
                registry.gauge(
                    "bfdn_worker_state",
                    "Each worker's phase at the last profiler sample (0 idle, 1 execute).",
                    &[("worker", index.as_str())],
                )
            })
            .collect();
        let worker_samples = (0..workers)
            .map(|i| {
                let index = i.to_string();
                WORKER_PHASES
                    .iter()
                    .map(|phase| {
                        registry.counter(
                            "bfdn_worker_phase_samples_total",
                            "Profiler samples per worker and phase (the flamegraph weights).",
                            &[("worker", index.as_str()), ("phase", phase)],
                        )
                    })
                    .collect()
            })
            .collect();
        ServiceMetrics {
            requests,
            queue_wait: latency(
                "bfdn_request_queue_wait_seconds",
                "Time a job waited in the bounded queue before a worker picked it up.",
            ),
            execute: latency(
                "bfdn_request_execute_seconds",
                "Time a worker spent executing a job (cache re-check included).",
            ),
            serialize: latency(
                "bfdn_request_serialize_seconds",
                "Time spent encoding and writing a reply frame.",
            ),
            queue_depth: registry.gauge(
                "bfdn_queue_depth",
                "Jobs currently waiting in the bounded queue.",
                &[],
            ),
            in_flight: registry.gauge(
                "bfdn_in_flight",
                "Jobs currently being executed by workers.",
                &[],
            ),
            rejects: registry.counter(
                "bfdn_queue_rejects_total",
                "Jobs rejected with Busy because the queue was at its depth limit.",
                &[],
            ),
            slow_requests: registry.counter(
                "bfdn_slow_requests_total",
                "Requests whose total latency crossed the slow-request threshold.",
                &[],
            ),
            slow_phase: SLOW_PHASES
                .iter()
                .map(|p| {
                    (
                        *p,
                        registry.counter(
                            "bfdn_slow_phase_total",
                            "Slow requests by the phase that dominated their latency.",
                            &[("phase", p)],
                        ),
                    )
                })
                .collect(),
            cache_hits: registry.counter(
                "bfdn_cache_hits_total",
                "Result-cache lookups answered without execution.",
                &[],
            ),
            cache_misses: registry.counter(
                "bfdn_cache_misses_total",
                "Result-cache lookups that required execution.",
                &[],
            ),
            cache_evictions: registry.counter(
                "bfdn_cache_evictions_total",
                "Entries evicted by the sharded LRU.",
                &[],
            ),
            cache_spill_loaded: registry.counter(
                "bfdn_cache_spill_loaded_total",
                "Entries warm-loaded from a spill file at startup.",
                &[],
            ),
            cache_entries: registry.gauge(
                "bfdn_cache_entries",
                "Entries currently resident in the result cache.",
                &[],
            ),
            cache_resident_bytes: registry.gauge(
                "bfdn_cache_resident_bytes",
                "Payload bytes currently resident in the result cache.",
                &[],
            ),
            store_hits: registry.counter(
                "bfdn_store_hits_total",
                "Lookups answered from the on-disk result store (neither hit nor miss).",
                &[],
            ),
            store_segments: registry.gauge(
                "bfdn_store_segments",
                "Segment files in the result store.",
                &[],
            ),
            store_on_disk_bytes: registry.gauge(
                "bfdn_store_on_disk_bytes",
                "Logical bytes across all result-store segments (live + dead).",
                &[],
            ),
            store_compression_ratio: registry.gauge(
                "bfdn_store_compression_ratio",
                "Uncompressed-to-stored byte ratio over the store's live records.",
                &[],
            ),
            store_records: registry.gauge(
                "bfdn_store_records",
                "Live (reachable) records in the result store.",
                &[],
            ),
            store_live_bytes: registry.gauge(
                "bfdn_store_live_bytes",
                "Bytes held by live (compressed) result-store frames.",
                &[],
            ),
            store_dead_bytes: registry.gauge(
                "bfdn_store_dead_bytes",
                "Bytes held by superseded result-store frames (compaction's reclaim target).",
                &[],
            ),
            store_raw_payload_bytes: registry.gauge(
                "bfdn_store_raw_payload_bytes",
                "Uncompressed payload bytes across the store's live records.",
                &[],
            ),
            store_stored_payload_bytes: registry.gauge(
                "bfdn_store_stored_payload_bytes",
                "Post-codec payload bytes across the store's live records \
                 (framing and keys excluded).",
                &[],
            ),
            store_compactions: registry.counter(
                "bfdn_store_compactions_total",
                "Result-store compactions run this process lifetime.",
                &[],
            ),
            store_truncated_segments: registry.counter(
                "bfdn_store_truncated_segments_total",
                "Crash-truncated segment tails detected and dropped.",
                &[],
            ),
            worker_busy,
            worker_state,
            worker_samples,
            peer_fill_hits: registry.counter(
                "bfdn_peer_fill_hit_total",
                "Local cache misses answered from a cluster peer's cache.",
                &[],
            ),
            peer_fill_misses: registry.counter(
                "bfdn_peer_fill_miss_total",
                "Local cache misses no configured peer could answer.",
                &[],
            ),
            bound_checked: registry.counter(
                "bfdn_bound_checked_total",
                "Executed runs whose Theorem 1 / Lemma 2 margins were checked.",
                &[],
            ),
            bound_violations: registry.counter(
                "bfdn_bound_violations_total",
                "Executed runs that violated a paper bound (should stay 0).",
                &[],
            ),
            margin_theorem1: registry.gauge_with(
                "bfdn_bound_margin_worst",
                "Worst observed margin (bound minus measurement) across served runs.",
                &[("bound", "theorem1_rounds")],
                f64::INFINITY,
            ),
            margin_lemma2: registry.gauge_with(
                "bfdn_bound_margin_worst",
                "Worst observed margin (bound minus measurement) across served runs.",
                &[("bound", "lemma2_reanchors")],
                f64::INFINITY,
            ),
            margin_window: Mutex::new(VecDeque::with_capacity(MARGIN_WINDOW)),
            margin_window_worst: registry.gauge_with(
                "bfdn_bound_margin_window_worst",
                "Worst Theorem 1 margin over the recent sample window (recovers, unlike the all-time gauge).",
                &[("bound", "theorem1_rounds")],
                f64::INFINITY,
            ),
            margin_watchdog: registry.counter(
                "bfdn_margin_watchdog_total",
                "Served runs whose Theorem 1 margin fell below the watchdog fraction of the bound.",
                &[],
            ),
            registry,
        }
    }

    /// Counts one decoded request of `kind` (one of [`REQUEST_TYPES`]).
    pub fn request(&self, kind: &str) {
        let fallback = &self.requests[REQUEST_TYPES.len() - 1].1;
        self.requests
            .iter()
            .find(|(t, _)| *t == kind)
            .map_or(fallback, |(_, c)| c)
            .inc();
    }

    /// Observes one job's queue-wait phase, in seconds.
    pub fn observe_queue_wait(&self, secs: f64) {
        self.queue_wait.observe(secs);
    }

    /// Observes one job's execute phase, in seconds.
    pub fn observe_execute(&self, secs: f64) {
        self.execute.observe(secs);
    }

    /// Observes one reply's serialize phase, in seconds.
    pub fn observe_serialize(&self, secs: f64) {
        self.serialize.observe(secs);
    }

    /// Counts one `Busy` rejection.
    pub fn reject(&self) {
        self.rejects.inc();
    }

    /// Counts one request that crossed the slow threshold, attributing
    /// it to the phase that dominated its latency — a queue-bound slow
    /// request needs more workers, an execute-bound one a smaller `n`
    /// cap; the old single counter could not tell them apart.
    pub fn slow_request(&self, queue_wait_ns: u64, exec_ns: u64, serialize_ns: u64, total_ns: u64) {
        self.slow_requests.inc();
        let accounted = queue_wait_ns
            .saturating_add(exec_ns)
            .saturating_add(serialize_ns);
        let phases = [
            ("queue_wait", queue_wait_ns),
            ("execute", exec_ns),
            ("serialize", serialize_ns),
            ("other", total_ns.saturating_sub(accounted)),
        ];
        let dominant = phases
            .iter()
            .max_by_key(|(_, ns)| *ns)
            .map(|(phase, _)| *phase)
            .unwrap_or("other");
        if let Some((_, c)) = self.slow_phase.iter().find(|(p, _)| *p == dominant) {
            c.inc();
        }
    }

    /// Adds `ns` busy nanoseconds to worker `index`'s utilization
    /// counter.
    pub fn worker_busy(&self, index: usize, ns: u64) {
        if let Some(c) = self.worker_busy.get(index) {
            c.add(ns);
        }
    }

    /// Records one profiler sample of worker `index` in `phase` (an
    /// index into [`WORKER_PHASES`]): sets the state gauge and bumps the
    /// cumulative phase-sample counter the folded stacks are built from.
    pub fn worker_sample(&self, index: usize, phase: usize) {
        if let Some(g) = self.worker_state.get(index) {
            g.set(phase as f64);
        }
        if let Some(c) = self
            .worker_samples
            .get(index)
            .and_then(|phases| phases.get(phase))
        {
            c.inc();
        }
    }

    /// Credits worker `index` with one `execute` sample without touching
    /// the state gauge. The worker loop calls this once per job so jobs
    /// shorter than the sampling interval still appear in the profile —
    /// a pure sampler would render a cache-hit-heavy daemon as 100%
    /// idle.
    pub fn worker_execute_floor(&self, index: usize) {
        if let Some(c) = self
            .worker_samples
            .get(index)
            .and_then(|phases| phases.get(1))
        {
            c.inc();
        }
    }

    /// Renders the cumulative phase samples as folded-stacks text
    /// (`bfdn_serve;worker_<i>;<phase> <samples>`, one line per non-zero
    /// frame), the input format of `inferno-flamegraph` and
    /// `flamegraph.pl`.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for (index, phases) in self.worker_samples.iter().enumerate() {
            for (phase, counter) in WORKER_PHASES.iter().zip(phases) {
                let samples = counter.get();
                if samples > 0 {
                    out.push_str(&format!("bfdn_serve;worker_{index};{phase} {samples}\n"));
                }
            }
        }
        out
    }

    /// Counts one local miss a cluster peer's cache answered.
    pub fn peer_fill_hit(&self) {
        self.peer_fill_hits.inc();
    }

    /// Counts one local miss no configured peer could answer.
    pub fn peer_fill_miss(&self) {
        self.peer_fill_misses.inc();
    }

    /// Re-checks the Theorem 1 margin of a result received from a
    /// cluster peer before serving it. Trust-but-verify: the peer
    /// already checked its own execution, but every shard that serves a
    /// payload re-asserts the paper's bound on it, so
    /// `bfdn_bound_violations_total == 0` on a shard covers everything
    /// that shard handed out — peer-filled or home-grown.
    pub fn record_peer_margins(&self, result: &ExploreResult) {
        self.bound_checked.inc();
        self.margin_theorem1.set_min(result.margin);
        self.margin_window_push(result.margin, result.bound);
        if result.margin < 0.0 {
            self.bound_violations.inc();
        }
    }

    /// Folds one margin sample into the bounded window ring, refreshes
    /// the window-worst gauge, and fires the watchdog when the margin
    /// has eroded below [`MARGIN_WATCHDOG_FRACTION`] of its bound — the
    /// fleet-level early warning that a shard is trending toward a
    /// Theorem 1 violation without having crossed it yet.
    fn margin_window_push(&self, margin: f64, bound: f64) {
        let mut window = self.margin_window.lock().expect("margin window");
        if window.len() == MARGIN_WINDOW {
            window.pop_front();
        }
        window.push_back(margin);
        let worst = window.iter().copied().fold(f64::INFINITY, f64::min);
        self.margin_window_worst.set(worst);
        if bound > 0.0 && margin < bound * MARGIN_WATCHDOG_FRACTION {
            self.margin_watchdog.inc();
        }
    }

    /// Folds one executed run's final margins into the per-daemon
    /// aggregates: worst-observed gauges shrink monotonically, and any
    /// negative margin counts as a bound violation.
    pub fn record_margins(&self, result: &ExploreResult, manifest: &RunManifest) {
        self.bound_checked.inc();
        let mut violated = result.margin < 0.0;
        self.margin_theorem1.set_min(result.margin);
        self.margin_window_push(result.margin, result.bound);
        if let Some((_, lemma2)) = manifest
            .margins
            .iter()
            .find(|(name, _)| name == "lemma2_reanchors")
        {
            self.margin_lemma2.set_min(*lemma2);
            violated |= *lemma2 < 0.0;
        }
        if violated {
            self.bound_violations.inc();
        }
    }

    /// Refreshes point-in-time series from their sources and renders
    /// the whole registry as Prometheus text exposition.
    ///
    /// Cache counters are mirrored from [`CacheStatsPayload`] at render
    /// time (the cache keeps its own atomics; mirroring avoids counting
    /// every lookup twice on the hot path).
    pub fn render(&self, cache: &CacheStatsPayload, queue_depth: u64, in_flight: u64) -> String {
        self.queue_depth.set(queue_depth as f64);
        self.in_flight.set(in_flight as f64);
        self.cache_hits.force_set(cache.hits);
        self.cache_misses.force_set(cache.misses);
        self.cache_evictions.force_set(cache.evictions);
        self.cache_spill_loaded.force_set(cache.spill_loaded);
        self.cache_entries.set(cache.entries as f64);
        self.cache_resident_bytes.set(cache.resident_bytes as f64);
        self.store_hits.force_set(cache.store_hits);
        self.store_segments.set(cache.segments as f64);
        self.store_on_disk_bytes.set(cache.on_disk_bytes as f64);
        self.store_compression_ratio.set(cache.compression_ratio);
        self.registry.render()
    }

    /// Mirrors the result store's full counter snapshot (the fields
    /// [`CacheStatsPayload`] does not carry: live/dead/raw bytes,
    /// compactions, truncated tails). The server calls this right
    /// before [`ServiceMetrics::render`] when a store is attached, so
    /// the render signature stays unchanged for store-less callers.
    pub fn mirror_store(&self, stats: &bfdn_store::StoreStats) {
        self.store_records.set(stats.records as f64);
        self.store_live_bytes.set(stats.live_bytes as f64);
        self.store_dead_bytes.set(stats.dead_bytes as f64);
        self.store_raw_payload_bytes
            .set(stats.raw_payload_bytes as f64);
        self.store_stored_payload_bytes
            .set(stats.stored_payload_bytes as f64);
        self.store_compactions.force_set(stats.compactions);
        self.store_truncated_segments
            .force_set(stats.truncated_segments);
    }

    /// Current value of `bfdn_bound_violations_total` (for tests and
    /// the sweep summary).
    pub fn bound_violations(&self) -> u64 {
        self.bound_violations.get()
    }
}

/// One finished request, as the access log records it.
///
/// `queue_wait_ns` / `exec_ns` are zero for requests that never entered
/// the queue (cache hits, introspection, rejected jobs); `total_ns` is
/// measured from decode to reply-written and is what the slow-request
/// threshold compares against.
#[derive(Clone, Debug)]
pub struct AccessRecord {
    /// Daemon-unique request sequence number.
    pub id: u64,
    /// Decoded request type (one of [`REQUEST_TYPES`]).
    pub request: String,
    /// Spec key: the canonical spec for `explore`, `batch[N]` for
    /// batches, empty for introspection.
    pub key: String,
    /// `"ok"` or `"error:<code>"`.
    pub outcome: String,
    /// The request's trace id in 16-digit hex (client-supplied or
    /// server-sampled), empty for untraced requests — the join key
    /// between an access-log line and its span tree.
    pub trace_id: String,
    /// Whether the reply came entirely from the result cache.
    pub cached: bool,
    /// Time spent waiting in the job queue.
    pub queue_wait_ns: u64,
    /// Time a worker spent executing.
    pub exec_ns: u64,
    /// Time spent encoding and writing the reply.
    pub serialize_ns: u64,
    /// Decode-to-reply wall clock.
    pub total_ns: u64,
}

impl AccessRecord {
    /// Renders the record as one JSON line (without the trailing
    /// newline); `slow` is stamped by the log against its threshold.
    fn to_json(&self, slow: bool) -> String {
        let mut o = JsonObject::new();
        o.u64("id", self.id)
            .str("request", &self.request)
            .str("key", &self.key)
            .str("outcome", &self.outcome)
            .str("trace_id", &self.trace_id)
            .bool("cached", self.cached)
            .u64("queue_wait_ns", self.queue_wait_ns)
            .u64("exec_ns", self.exec_ns)
            .u64("serialize_ns", self.serialize_ns)
            .u64("total_ns", self.total_ns)
            .bool("slow", slow);
        o.finish()
    }
}

/// Where access-log lines go: an arbitrary writer (tests), or a file
/// with optional size-based rotation.
enum LogSink {
    Writer(Box<dyn Write + Send>),
    File {
        file: std::fs::File,
        path: PathBuf,
        /// Bytes written to the current generation (seeded from the
        /// existing file's length when appending).
        written: u64,
        /// Rotation threshold; `0` disables rotation.
        max_bytes: u64,
    },
}

/// Structured JSONL access log with a slow-request threshold and
/// optional size-based rotation.
///
/// Built on the `bfdn-obs` JSON layer (the workspace carries no format
/// dependency); one line per finished request, flushed per record so a
/// tail of the file is always whole lines. With a rotation threshold,
/// a file about to outgrow it is renamed to `<path>.1` (replacing the
/// previous generation) before the next line is written — rotation
/// happens at a line boundary, so both generations are always valid
/// JSONL.
pub struct AccessLog {
    out: Mutex<LogSink>,
    slow_threshold_ns: u64,
    slow_seen: AtomicU64,
    rotations: AtomicU64,
}

impl AccessLog {
    /// Opens (appends to) `path`; requests at or above
    /// `slow_threshold_ms` are stamped `"slow":true`. A nonzero
    /// `max_bytes` rotates the file to `<path>.1` (keeping one
    /// generation) when a line would push it past the threshold.
    ///
    /// # Errors
    ///
    /// Propagates the open error.
    pub fn open(path: &Path, slow_threshold_ms: u64, max_bytes: u64) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(AccessLog {
            out: Mutex::new(LogSink::File {
                file,
                path: path.to_path_buf(),
                written,
                max_bytes,
            }),
            slow_threshold_ns: slow_threshold_ms.saturating_mul(1_000_000),
            slow_seen: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        })
    }

    /// Wraps an arbitrary writer (tests use an in-memory buffer); never
    /// rotates.
    pub fn to_writer(out: Box<dyn Write + Send>, slow_threshold_ms: u64) -> Self {
        AccessLog {
            out: Mutex::new(LogSink::Writer(out)),
            slow_threshold_ns: slow_threshold_ms.saturating_mul(1_000_000),
            slow_seen: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        }
    }

    /// Appends one record; returns whether it was slow. Write errors
    /// are swallowed — losing a log line must never fail a request.
    pub fn record(&self, record: &AccessRecord) -> bool {
        let slow = record.total_ns >= self.slow_threshold_ns;
        if slow {
            self.slow_seen.fetch_add(1, Ordering::Relaxed);
        }
        let mut line = record.to_json(slow);
        line.push('\n');
        let Ok(mut sink) = self.out.lock() else {
            return slow;
        };
        match &mut *sink {
            LogSink::Writer(out) => {
                let _ = out.write_all(line.as_bytes());
                let _ = out.flush();
            }
            LogSink::File {
                file,
                path,
                written,
                max_bytes,
            } => {
                if *max_bytes > 0
                    && *written > 0
                    && written.saturating_add(line.len() as u64) > *max_bytes
                {
                    // Rotate at the line boundary: rename the full
                    // generation aside, then start a fresh file. A
                    // failed rename keeps writing to the current file
                    // rather than dropping lines.
                    let mut rotated = path.clone().into_os_string();
                    rotated.push(".1");
                    if std::fs::rename(&*path, &rotated).is_ok() {
                        if let Ok(fresh) = std::fs::OpenOptions::new()
                            .create(true)
                            .append(true)
                            .open(&*path)
                        {
                            *file = fresh;
                            *written = 0;
                            self.rotations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if file.write_all(line.as_bytes()).is_ok() {
                    *written = written.saturating_add(line.len() as u64);
                }
                let _ = file.flush();
            }
        }
        slow
    }

    /// Records stamped slow so far.
    pub fn slow_seen(&self) -> u64 {
        self.slow_seen.load(Ordering::Relaxed)
    }

    /// Completed rotations so far.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ExploreSpec;

    fn sample_result(margin: f64) -> ExploreResult {
        let spec = ExploreSpec::new("bfdn", "comb", 60, 4, 1);
        ExploreResult {
            spec,
            cached: false,
            nodes: 60,
            depth: 10,
            max_degree: 3,
            metrics: crate::protocol::MetricsPayload {
                rounds: 40,
                moves: 100,
                idle: 0,
                stalled: 0,
                allowed_moves: 160,
                edges_discovered: 59,
                edge_events: 59,
            },
            bound: 40.0 + margin,
            margin,
            manifest: None,
        }
    }

    #[test]
    fn margins_aggregate_to_worst_and_count_violations() {
        let m = ServiceMetrics::new(2);
        let mut manifest = RunManifest::new("bfdn", "comb");
        manifest.margin("lemma2_reanchors", 5.0);
        m.record_margins(&sample_result(12.0), &manifest);
        m.record_margins(&sample_result(3.5), &manifest);
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains("bfdn_bound_checked_total 2"));
        assert!(text.contains("bfdn_bound_violations_total 0"));
        assert!(text.contains(r#"bfdn_bound_margin_worst{bound="theorem1_rounds"} 3.5"#));
        assert!(text.contains(r#"bfdn_bound_margin_worst{bound="lemma2_reanchors"} 5"#));

        // A negative margin shrinks the gauge below zero and trips the
        // violation counter — the series CI asserts stays at zero.
        m.record_margins(&sample_result(-1.0), &manifest);
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains("bfdn_bound_violations_total 1"));
        assert!(text.contains(r#"bfdn_bound_margin_worst{bound="theorem1_rounds"} -1"#));
    }

    #[test]
    fn slow_requests_are_attributed_to_their_dominant_phase() {
        let m = ServiceMetrics::new(1);
        // Queue-bound: 0.8s of a 1s request waiting for a worker.
        m.slow_request(800_000_000, 150_000_000, 1_000_000, 1_000_000_000);
        // Execute-bound.
        m.slow_request(10_000_000, 900_000_000, 1_000_000, 1_000_000_000);
        m.slow_request(0, 2_000_000_000, 0, 2_100_000_000);
        // Unaccounted time (a stalled reply write) dominates.
        m.slow_request(1_000_000, 2_000_000, 3_000_000, 5_000_000_000);
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains("bfdn_slow_requests_total 4"));
        assert!(text.contains(r#"bfdn_slow_phase_total{phase="queue_wait"} 1"#));
        assert!(text.contains(r#"bfdn_slow_phase_total{phase="execute"} 2"#));
        assert!(text.contains(r#"bfdn_slow_phase_total{phase="serialize"} 0"#));
        assert!(text.contains(r#"bfdn_slow_phase_total{phase="other"} 1"#));
    }

    #[test]
    fn unknown_request_kinds_count_as_invalid() {
        let m = ServiceMetrics::new(1);
        m.request("explore");
        m.request("garbage");
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains(r#"bfdn_requests_total{type="explore"} 1"#));
        assert!(text.contains(r#"bfdn_requests_total{type="invalid"} 1"#));
    }

    #[test]
    fn render_mirrors_cache_stats_and_queue_gauges() {
        let m = ServiceMetrics::new(1);
        let cache = CacheStatsPayload {
            entries: 3,
            capacity: 64,
            shards: 4,
            hits: 10,
            misses: 5,
            insertions: 5,
            evictions: 2,
            spill_loaded: 1,
            resident_bytes: 2048,
            store_hits: 6,
            segments: 2,
            on_disk_bytes: 8192,
            compression_ratio: 3.5,
        };
        let text = m.render(&cache, 7, 2);
        assert!(text.contains("bfdn_cache_hits_total 10"));
        assert!(text.contains("bfdn_cache_misses_total 5"));
        assert!(text.contains("bfdn_cache_evictions_total 2"));
        assert!(text.contains("bfdn_cache_spill_loaded_total 1"));
        assert!(text.contains("bfdn_cache_entries 3"));
        assert!(text.contains("bfdn_cache_resident_bytes 2048"));
        assert!(text.contains("bfdn_queue_depth 7"));
        assert!(text.contains("bfdn_in_flight 2"));
        assert!(text.contains("bfdn_store_hits_total 6"));
        assert!(text.contains("bfdn_store_segments 2"));
        assert!(text.contains("bfdn_store_on_disk_bytes 8192"));
        assert!(text.contains("bfdn_store_compression_ratio 3.5"));
    }

    #[test]
    fn mirror_store_reflects_the_full_store_snapshot() {
        let m = ServiceMetrics::new(1);
        let stats = bfdn_store::StoreStats {
            records: 12,
            segments: 3,
            on_disk_bytes: 9000,
            live_bytes: 6000,
            dead_bytes: 3000,
            raw_payload_bytes: 15000,
            stored_payload_bytes: 5000,
            compactions: 2,
            truncated_segments: 1,
        };
        m.mirror_store(&stats);
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains("bfdn_store_records 12"));
        assert!(text.contains("bfdn_store_live_bytes 6000"));
        assert!(text.contains("bfdn_store_dead_bytes 3000"));
        assert!(text.contains("bfdn_store_raw_payload_bytes 15000"));
        assert!(text.contains("bfdn_store_stored_payload_bytes 5000"));
        assert!(text.contains("bfdn_store_compactions_total 2"));
        assert!(text.contains("bfdn_store_truncated_segments_total 1"));
    }

    #[test]
    fn access_log_writes_one_json_line_per_record_and_stamps_slow() {
        use std::sync::mpsc;
        // Channel-backed writer so the test can read what the log wrote.
        struct Tx(mpsc::Sender<Vec<u8>>);
        impl Write for Tx {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let _ = self.0.send(buf.to_vec());
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (tx, rx) = mpsc::channel();
        let log = AccessLog::to_writer(Box::new(Tx(tx)), 1);
        let mut record = AccessRecord {
            id: 1,
            request: "explore".into(),
            key: "bfdn/comb/n60/k4/s1".into(),
            outcome: "ok".into(),
            trace_id: "00000000deadbeef".into(),
            cached: true,
            queue_wait_ns: 0,
            exec_ns: 0,
            serialize_ns: 500,
            total_ns: 900,
        };
        assert!(!log.record(&record));
        record.id = 2;
        record.total_ns = 2_000_000;
        assert!(log.record(&record));
        assert_eq!(log.slow_seen(), 1);

        let lines: Vec<String> = rx
            .try_iter()
            .map(|b| String::from_utf8(b).unwrap())
            .collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"id":1,"request":"explore","#));
        assert!(lines[0].contains(r#""trace_id":"00000000deadbeef""#));
        assert!(lines[0].contains(r#""slow":false}"#));
        assert!(lines[0].ends_with('\n'));
        assert!(lines[1].contains(r#""id":2"#));
        assert!(lines[1].contains(r#""slow":true}"#));
    }

    #[test]
    fn access_log_rotation_keeps_both_generations_valid_jsonl() {
        let dir = std::env::temp_dir().join(format!("bfdn-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut rotated = path.clone().into_os_string();
        rotated.push(".1");
        let _ = std::fs::remove_file(&rotated);

        // Each record renders to ~230 bytes; a 600-byte cap forces a
        // rotation every couple of lines.
        let log = AccessLog::open(&path, 1_000, 600).unwrap();
        let record = |id| AccessRecord {
            id,
            request: "explore".into(),
            key: "bfdn/comb/n60/k4/s1".into(),
            outcome: "ok".into(),
            trace_id: String::new(),
            cached: false,
            queue_wait_ns: 10,
            exec_ns: 20,
            serialize_ns: 30,
            total_ns: 70,
        };
        for id in 1..=8 {
            log.record(&record(id));
        }
        assert!(log.rotations() >= 1, "cap forces at least one rotation");

        let mut ids = Vec::new();
        for file in [std::path::PathBuf::from(&rotated), path.clone()] {
            let text = std::fs::read_to_string(&file).unwrap();
            assert!(!text.is_empty());
            assert!(text.ends_with('\n'), "rotation happens at line boundaries");
            for line in text.lines() {
                let v = crate::jsonval::Json::parse(line).expect("every line is whole JSON");
                ids.push(v.get("id").and_then(crate::jsonval::Json::as_u64).unwrap());
            }
        }
        // The two generations, read old-to-new, hold a contiguous tail
        // of the record stream — nothing was lost or torn by rotation.
        assert!(ids.ends_with(&[6, 7, 8]));
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn margin_window_worst_recovers_and_watchdog_fires_near_zero() {
        let m = ServiceMetrics::new(1);
        let manifest = RunManifest::new("bfdn", "comb");
        // A healthy margin, then one within 5% of the bound (bound is
        // 40 + margin, so margin 1.5 < 0.05 * 41.5 fires the watchdog).
        m.record_margins(&sample_result(12.0), &manifest);
        m.record_margins(&sample_result(1.5), &manifest);
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains(r#"bfdn_bound_margin_window_worst{bound="theorem1_rounds"} 1.5"#));
        assert!(text.contains("bfdn_margin_watchdog_total 1"));
        assert!(text.contains("bfdn_bound_violations_total 0"));

        // Push the bad sample out of the window: the windowed gauge
        // recovers while the all-time worst gauge stays pinned.
        for _ in 0..MARGIN_WINDOW {
            m.record_margins(&sample_result(9.0), &manifest);
        }
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains(r#"bfdn_bound_margin_window_worst{bound="theorem1_rounds"} 9"#));
        assert!(text.contains(r#"bfdn_bound_margin_worst{bound="theorem1_rounds"} 1.5"#));
        assert!(text.contains("bfdn_margin_watchdog_total 1"));
    }

    #[test]
    fn worker_samples_feed_gauges_counters_and_folded_stacks() {
        let m = ServiceMetrics::new(2);
        m.worker_sample(0, 1);
        m.worker_sample(0, 1);
        m.worker_sample(0, 0);
        m.worker_sample(1, 0);
        m.worker_execute_floor(1);
        m.worker_sample(9, 1); // out of range: ignored, not a panic
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains(r#"bfdn_worker_state{worker="0"} 0"#));
        assert!(text.contains(r#"bfdn_worker_state{worker="1"} 0"#));
        assert!(
            text.contains(r#"bfdn_worker_phase_samples_total{phase="execute",worker="0"} 2"#)
                || text
                    .contains(r#"bfdn_worker_phase_samples_total{worker="0",phase="execute"} 2"#)
        );
        let folded = m.folded_stacks();
        assert!(folded.contains("bfdn_serve;worker_0;execute 2\n"));
        assert!(folded.contains("bfdn_serve;worker_0;idle 1\n"));
        assert!(folded.contains("bfdn_serve;worker_1;execute 1\n"));
        assert!(!folded.contains("worker_9"));
    }

    #[test]
    fn build_info_is_registered_with_the_service_instruments() {
        let m = ServiceMetrics::new(1);
        let text = m.render(&CacheStatsPayload::default(), 0, 0);
        assert!(text.contains("bfdn_build_info{"));
        assert!(text.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))));
    }
}
