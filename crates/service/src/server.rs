//! The serving daemon: a threaded TCP server with a bounded job queue,
//! a worker pool on the shared parallel substrate, and the
//! content-addressed result cache in front of execution.
//!
//! Life of a request: a connection handler thread reads one frame,
//! decodes and validates it, and answers cache hits immediately. Misses
//! become jobs on a bounded queue — when the queue is at its configured
//! depth the handler replies [`ErrorCode::Busy`] instead of blocking,
//! which is the service's backpressure contract. Worker threads drain
//! the queue; a batch job fans its uncached items out through
//! [`crate::parallel::par_map`], so one large sweep request saturates
//! the machine exactly like the local harness does. Every executed spec
//! lands in the cache before its reply is sent.
//!
//! [`Request::Shutdown`] answers [`Response::Bye`], stops accepting new
//! work, drains the queue and in-flight jobs, optionally spills the
//! cache for a warm restart, and lets [`ServerHandle::join`] return.

use crate::cache::{CacheConfig, ResultCache};
use crate::exec;
use crate::parallel;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, ExploreResult, ExploreSpec, FrameError, Request, Response,
    StatusPayload, WireError,
};
use crate::telemetry::{AccessLog, AccessRecord, ServiceMetrics};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration (all fields have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4077` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads draining the job queue; defaults to
    /// [`parallel::num_threads`].
    pub workers: Option<usize>,
    /// Jobs the queue holds before new misses are rejected with
    /// [`ErrorCode::Busy`] (a batch counts as one job).
    pub queue_depth: usize,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// When set, the cache is warm-loaded from this JSONL file at
    /// startup and spilled back on graceful shutdown.
    pub spill: Option<PathBuf>,
    /// When set, every executed job also writes its run manifest as
    /// `<content-hash>.manifest.json` under this directory.
    pub manifest_dir: Option<PathBuf>,
    /// When set, a plain-HTTP listener on this address answers
    /// `GET /metrics` with the Prometheus exposition (port 0 picks a
    /// free one), so standard scrapers work without the wire protocol.
    pub metrics_addr: Option<String>,
    /// When set, every finished request appends one JSON line (id,
    /// type, spec key, outcome, phase timings) to this file.
    pub access_log: Option<PathBuf>,
    /// Requests at or above this total latency are stamped slow in the
    /// access log and counted in `bfdn_slow_requests_total`.
    pub slow_request_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4077".into(),
            workers: None,
            queue_depth: 64,
            cache: CacheConfig::default(),
            spill: None,
            manifest_dir: None,
            metrics_addr: None,
            access_log: None,
            slow_request_ms: 1_000,
        }
    }
}

/// One queued unit of work plus the channel its reply goes back on.
struct Job {
    kind: JobKind,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
    /// Filled by the worker so the connection handler can log per-phase
    /// timings after the reply arrives.
    timing: Arc<JobTiming>,
}

/// Per-job phase timings, written by the worker and read by the
/// connection handler for the access log.
#[derive(Default)]
struct JobTiming {
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
}

enum JobKind {
    One(ExploreSpec),
    Batch(Vec<ExploreSpec>),
}

/// Why a job could not be enqueued.
enum PushError {
    Full,
    Closed,
}

/// The bounded job queue: a mutex-guarded deque with a condvar for the
/// workers and an explicit capacity for the backpressure contract.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: full queues reject instead of waiting — that
    /// is the whole point of the depth limit.
    fn push(&self, job: Job) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("job queue");
        if !state.open {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop; returns `None` only when the queue is closed *and*
    /// fully drained, so every accepted job is executed before workers
    /// exit.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("job queue");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).expect("job queue");
        }
    }

    /// Closes the queue: pushes start failing, workers drain what is
    /// left and then exit.
    fn close(&self) {
        let mut state = self.state.lock().expect("job queue");
        state.open = false;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("job queue").jobs.len()
    }
}

/// Monotonic counters exposed through [`Request::Status`].
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    explores: AtomicU64,
    batches: AtomicU64,
    rejects: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicU64,
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
}

/// State shared by the accept loop, connection handlers and workers.
struct Shared {
    queue: JobQueue,
    cache: ResultCache,
    counters: Counters,
    telemetry: ServiceMetrics,
    access_log: Option<AccessLog>,
    slow_ns: u64,
    draining: AtomicBool,
    workers: usize,
    manifest_dir: Option<PathBuf>,
    started: Instant,
}

impl Shared {
    fn status(&self) -> StatusPayload {
        StatusPayload {
            requests: self.counters.requests.load(Ordering::Relaxed),
            explores: self.counters.explores.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            cache_hits: self.cache.stats().hits,
            cache_misses: self.cache.stats().misses,
            rejects: self.counters.rejects.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            queue_capacity: self.queue.capacity as u64,
            workers: self.workers as u64,
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            queue_wait_ns: self.counters.queue_wait_ns.load(Ordering::Relaxed),
            exec_ns: self.counters.exec_ns.load(Ordering::Relaxed),
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
        }
    }

    /// Runs one spec (after a final cache re-check — another worker may
    /// have computed it while this job queued) and stores the result.
    /// Every fresh execution feeds its Theorem 1 / Lemma 2 margins into
    /// the daemon-wide aggregates.
    fn execute(&self, spec: &ExploreSpec) -> Result<ExploreResult, WireError> {
        if let Some(hit) = self.cache.get(spec) {
            return Ok(hit);
        }
        let (result, manifest) = exec::run_spec(spec)?;
        self.telemetry.record_margins(&result, &manifest);
        self.cache.put(&result);
        if let Some(dir) = &self.manifest_dir {
            let path = dir.join(format!("{:016x}.manifest.json", spec.content_hash()));
            if let Err(e) = manifest.write(&path) {
                eprintln!("bfdn-serve: cannot write {}: {e}", path.display());
            }
        }
        Ok(result)
    }

    /// Refreshes the point-in-time gauges and renders the full
    /// Prometheus exposition (shared by the `Metrics` wire request and
    /// the HTTP listener).
    fn render_metrics(&self) -> String {
        self.telemetry.render(
            &self.cache.stats(),
            self.queue.depth() as u64,
            self.counters.in_flight.load(Ordering::SeqCst),
        )
    }
}

/// A running server; dropping the handle does **not** stop it — send
/// [`Request::Shutdown`] (or call [`ServerHandle::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    metrics: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    spill: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-HTTP address when `--metrics-addr` was
    /// configured (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Programmatic equivalent of a [`Request::Shutdown`] frame.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// Waits for the accept loop and workers to finish draining, then
    /// spills the cache when configured.
    ///
    /// Only returns once a shutdown was requested (by frame or by
    /// [`ServerHandle::shutdown`]); every in-flight job completes and
    /// every queued job is executed before this returns.
    pub fn join(self) -> io::Result<()> {
        self.accept.join().map_err(|_| worker_panic())?;
        if let Some(m) = self.metrics {
            m.join().map_err(|_| worker_panic())?;
        }
        for w in self.workers {
            w.join().map_err(|_| worker_panic())?;
        }
        if let Some(path) = &self.spill {
            let spilled = self.shared.cache.spill_to(path)?;
            eprintln!(
                "bfdn-serve: spilled {spilled} cache entries to {}",
                path.display()
            );
        }
        Ok(())
    }
}

fn worker_panic() -> io::Error {
    io::Error::other("a server thread panicked")
}

/// Binds the listener, warm-loads the cache when configured, and spawns
/// the accept loop plus the worker pool.
///
/// # Errors
///
/// Propagates the bind / spill-load I/O error.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let workers = config.workers.unwrap_or_else(parallel::num_threads).max(1);
    let cache = ResultCache::new(config.cache);
    if let Some(path) = &config.spill {
        if path.exists() {
            let report = cache.load_from(path)?;
            if report.revision_mismatch {
                eprintln!(
                    "bfdn-serve: spill {} was written by another revision — {} entries refused, starting cold",
                    path.display(),
                    report.refused
                );
            } else {
                eprintln!(
                    "bfdn-serve: warm start with {} cached results from {} ({} malformed lines skipped)",
                    report.loaded,
                    path.display(),
                    report.malformed
                );
            }
        }
    }
    if let Some(dir) = &config.manifest_dir {
        std::fs::create_dir_all(dir)?;
    }
    let access_log = match &config.access_log {
        Some(path) => Some(AccessLog::open(path, config.slow_request_ms)?),
        None => None,
    };
    let metrics_listener = match &config.metrics_addr {
        Some(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(listener) => Some(listener.local_addr()?),
        None => None,
    };

    let shared = Arc::new(Shared {
        queue: JobQueue::new(config.queue_depth.max(1)),
        cache,
        counters: Counters::default(),
        telemetry: ServiceMetrics::new(workers),
        access_log,
        slow_ns: config.slow_request_ms.saturating_mul(1_000_000),
        draining: AtomicBool::new(false),
        workers,
        manifest_dir: config.manifest_dir.clone(),
        started: Instant::now(),
    });

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|index| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, index))
        })
        .collect();

    let metrics = metrics_listener.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || metrics_http_loop(listener, &shared))
    });

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));

    Ok(ServerHandle {
        addr,
        metrics_addr,
        shared,
        accept,
        metrics,
        workers: worker_handles,
        spill: config.spill,
    })
}

/// Polls the metrics listener; answers `GET /metrics` with the rendered
/// exposition and anything else with 404. Exits on the same condition
/// as [`accept_loop`], so scrapes keep working through a drain.
fn metrics_http_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || serve_metrics_http(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst)
                    && shared.queue.depth() == 0
                    && shared.counters.in_flight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// One scrape: read the request head, answer, close.
fn serve_metrics_http(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    // Read until the end of the request head (or the 4 KiB cap — a
    // scrape has no body worth waiting for).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 4096 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let target = request_line
        .lines()
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(1)
        .unwrap_or("");
    let (status, content_type, body) = if target == "/metrics" || target.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.render_metrics(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only /metrics is served here\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Polls the non-blocking listener so the loop can observe the draining
/// flag; exits once draining starts and the queue is empty with nothing
/// in flight.
fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst)
                    && shared.queue.depth() == 0
                    && shared.counters.in_flight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// Drains the job queue until it is closed and empty.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    while let Some(job) = shared.queue.pop() {
        shared.counters.in_flight.fetch_add(1, Ordering::SeqCst);
        let waited = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .counters
            .queue_wait_ns
            .fetch_add(waited, Ordering::Relaxed);
        shared.telemetry.observe_queue_wait(waited as f64 / 1e9);
        job.timing.queue_wait_ns.store(waited, Ordering::Relaxed);
        let exec_start = Instant::now();
        let response = match &job.kind {
            JobKind::One(spec) => match shared.execute(spec) {
                Ok(result) => Response::Result(Box::new(result)),
                Err(e) => Response::Error(e),
            },
            JobKind::Batch(specs) => run_batch(shared, specs),
        };
        let exec_ns = u64::try_from(exec_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .counters
            .exec_ns
            .fetch_add(exec_ns, Ordering::Relaxed);
        shared.telemetry.observe_execute(exec_ns as f64 / 1e9);
        shared.telemetry.worker_busy(index, exec_ns);
        job.timing.exec_ns.store(exec_ns, Ordering::Relaxed);
        // The handler may have given up (connection dropped); a dead
        // receiver is not an error worth crashing a worker for.
        let _ = job.reply.send(response);
        shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        shared.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executes a batch job: answered items come from the cache, the rest
/// fan out over the parallel substrate, and the reply preserves request
/// order.
fn run_batch(shared: &Arc<Shared>, specs: &[ExploreSpec]) -> Response {
    let looked_up: Vec<Option<ExploreResult>> =
        specs.iter().map(|spec| shared.cache.get(spec)).collect();
    let pending: Vec<&ExploreSpec> = specs
        .iter()
        .zip(&looked_up)
        .filter_map(|(spec, hit)| hit.is_none().then_some(spec))
        .collect();
    let computed: Vec<Result<ExploreResult, WireError>> =
        parallel::par_map(&pending, |spec| shared.execute(spec));

    let hits = looked_up.iter().flatten().count() as u64;
    let misses = pending.len() as u64;
    let mut computed = computed.into_iter();
    let mut results = Vec::with_capacity(specs.len());
    for hit in looked_up {
        let item = match hit {
            Some(result) => result,
            None => match computed.next().expect("one result per pending spec") {
                Ok(result) => result,
                Err(e) => return Response::Error(e),
            },
        };
        results.push(item);
    }
    Response::Batch {
        results,
        hits,
        misses,
    }
}

/// Per-request trace, accumulated through [`dispatch`] and flushed to
/// the access log (and the slow-request counter) by the connection
/// handler.
#[derive(Default)]
struct Trace {
    kind: &'static str,
    key: String,
    queue_wait_ns: u64,
    exec_ns: u64,
}

/// One connection: a loop of frame → decode → dispatch → frame.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            Err(FrameError::TooLarge(len)) => {
                // The peer's framing is fine (we read the length), but
                // the payload cannot be resynchronized — reply and drop.
                let e = WireError::new(
                    ErrorCode::TooLarge,
                    format!("frame of {len} bytes exceeds the cap"),
                );
                let _ = write_frame(&mut stream, &Response::Error(e).to_json());
                return;
            }
            Err(FrameError::Utf8) => {
                let e = WireError::bad_request("frame payload is not UTF-8");
                let _ = write_frame(&mut stream, &Response::Error(e).to_json());
                continue;
            }
            Err(FrameError::Io(_)) => return, // disconnect (clean or not)
        };
        let received = Instant::now();
        let id = shared.counters.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut trace = Trace {
            kind: "invalid",
            ..Trace::default()
        };
        let response = match Request::from_json(&payload) {
            Err(e) => Response::Error(e),
            Ok(request) => dispatch(request, shared, &mut trace),
        };
        shared.telemetry.request(trace.kind);
        let serialize_start = Instant::now();
        let write_result = write_frame(&mut stream, &response.to_json());
        let serialize_ns = u64::try_from(serialize_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .telemetry
            .observe_serialize(serialize_ns as f64 / 1e9);
        finish_trace(shared, id, &trace, &response, serialize_ns, received);
        if write_result.is_err() {
            return;
        }
    }
}

/// Closes out one request: slow-request accounting plus the access-log
/// line.
fn finish_trace(
    shared: &Arc<Shared>,
    id: u64,
    trace: &Trace,
    response: &Response,
    serialize_ns: u64,
    received: Instant,
) {
    let total_ns = u64::try_from(received.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if total_ns >= shared.slow_ns {
        shared.telemetry.slow_request();
    }
    let Some(log) = &shared.access_log else {
        return;
    };
    let (outcome, cached) = match response {
        Response::Error(e) => (format!("error:{}", e.code.as_str()), false),
        Response::Result(r) => ("ok".to_string(), r.cached),
        Response::Batch { hits, misses, .. } => ("ok".to_string(), *misses == 0 && *hits > 0),
        _ => ("ok".to_string(), false),
    };
    log.record(&AccessRecord {
        id,
        request: trace.kind.to_string(),
        key: trace.key.clone(),
        outcome,
        cached,
        queue_wait_ns: trace.queue_wait_ns,
        exec_ns: trace.exec_ns,
        serialize_ns,
        total_ns,
    });
}

/// Routes one decoded request; cache hits and introspection never touch
/// the queue.
fn dispatch(request: Request, shared: &Arc<Shared>, trace: &mut Trace) -> Response {
    match request {
        Request::Status => {
            trace.kind = "status";
            Response::Status(shared.status())
        }
        Request::CacheStats => {
            trace.kind = "cache_stats";
            Response::CacheStats(shared.cache.stats())
        }
        Request::Metrics => {
            trace.kind = "metrics";
            Response::Metrics(shared.render_metrics())
        }
        Request::Shutdown => {
            trace.kind = "shutdown";
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue.close();
            Response::Bye
        }
        Request::Explore(spec) => {
            trace.kind = "explore";
            trace.key = spec.canonical();
            shared.counters.explores.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = exec::validate(&spec) {
                return Response::Error(e);
            }
            if let Some(hit) = shared.cache.get(&spec) {
                return Response::Result(Box::new(hit));
            }
            enqueue_and_wait(shared, JobKind::One(spec), trace)
        }
        Request::Batch(specs) => {
            trace.kind = "batch";
            trace.key = format!("batch[{}]", specs.len());
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .explores
                .fetch_add(specs.len() as u64, Ordering::Relaxed);
            if let Some(e) = specs.iter().find_map(|s| exec::validate(s).err()) {
                return Response::Error(e);
            }
            enqueue_and_wait(shared, JobKind::Batch(specs), trace)
        }
    }
}

/// Queues one job and blocks the connection handler (not the worker
/// pool) until its reply is ready; full and closed queues answer
/// immediately.
fn enqueue_and_wait(shared: &Arc<Shared>, kind: JobKind, trace: &mut Trace) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Error(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    let (tx, rx) = mpsc::channel();
    let timing = Arc::new(JobTiming::default());
    let job = Job {
        kind,
        enqueued: Instant::now(),
        reply: tx,
        timing: Arc::clone(&timing),
    };
    match shared.queue.push(job) {
        Ok(()) => match rx.recv() {
            Ok(response) => {
                trace.queue_wait_ns = timing.queue_wait_ns.load(Ordering::Relaxed);
                trace.exec_ns = timing.exec_ns.load(Ordering::Relaxed);
                response
            }
            Err(_) => Response::Error(WireError::new(
                ErrorCode::Internal,
                "worker dropped the job",
            )),
        },
        Err(PushError::Full) => {
            shared.counters.rejects.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.reject();
            Response::Error(WireError::new(
                ErrorCode::Busy,
                format!(
                    "job queue is at its depth limit ({})",
                    shared.queue.capacity
                ),
            ))
        }
        Err(PushError::Closed) => Response::Error(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rejects_beyond_capacity_and_drains_after_close() {
        let q = JobQueue::new(2);
        let (tx, _rx) = mpsc::channel();
        let job = |tx: &mpsc::Sender<Response>| Job {
            kind: JobKind::One(ExploreSpec::new("bfdn", "comb", 10, 1, 0)),
            enqueued: Instant::now(),
            reply: tx.clone(),
            timing: Arc::new(JobTiming::default()),
        };
        assert!(q.push(job(&tx)).is_ok());
        assert!(q.push(job(&tx)).is_ok());
        assert!(matches!(q.push(job(&tx)), Err(PushError::Full)));
        assert_eq!(q.depth(), 2);
        q.close();
        assert!(matches!(q.push(job(&tx)), Err(PushError::Closed)));
        // Both accepted jobs survive the close.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn closed_empty_queue_unblocks_waiting_workers() {
        let q = Arc::new(JobQueue::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop().is_none())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap(), "pop returns None after close");
    }
}
