//! The serving daemon: a threaded TCP server with a bounded job queue,
//! a worker pool on the shared parallel substrate, and the
//! content-addressed result cache in front of execution.
//!
//! Life of a request: a connection handler thread reads one frame,
//! decodes and validates it, and answers cache hits immediately. Misses
//! become jobs on a bounded queue — when the queue is at its configured
//! depth the handler replies [`ErrorCode::Busy`] instead of blocking,
//! which is the service's backpressure contract. Worker threads drain
//! the queue; a batch job fans its uncached items out through
//! [`crate::parallel::par_map`], so one large sweep request saturates
//! the machine exactly like the local harness does. Every executed spec
//! lands in the cache before its reply is sent.
//!
//! [`Request::Shutdown`] answers [`Response::Bye`], stops accepting new
//! work, drains the queue and in-flight jobs, optionally spills the
//! cache for a warm restart, and lets [`ServerHandle::join`] return.

use crate::cache::{CacheConfig, ResultCache};
use crate::client::Client;
use crate::exec;
use crate::parallel;
use crate::protocol::{
    fnv1a, read_frame, write_frame, ErrorCode, ExploreResult, ExploreSpec, FrameError, Request,
    Response, SpanPayload, StatusPayload, TracePayload, WireError,
};
use crate::telemetry::{AccessLog, AccessRecord, ServiceMetrics};
use bfdn_obs::tracing::{hex16, SpanRecord, SpanRecorder, SpanSink, TraceWriter, Tracer};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration (all fields have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4077` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads draining the job queue; defaults to
    /// [`parallel::num_threads`].
    pub workers: Option<usize>,
    /// Jobs the queue holds before new misses are rejected with
    /// [`ErrorCode::Busy`] (a batch counts as one job).
    pub queue_depth: usize,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// When set, the cache is warm-loaded from this JSONL file at
    /// startup and spilled back on graceful shutdown. Deprecated in
    /// favour of `store_dir`: when both are set the spill is imported
    /// into the store at startup instead of being loaded resident, and
    /// nothing is spilled back on shutdown (the store already has
    /// everything).
    pub spill: Option<PathBuf>,
    /// When set, the cache is backed by a log-structured compressed
    /// result store in this directory: every executed result is written
    /// through, a memory miss falls back to an indexed disk read (the
    /// `store_hit` outcome), and a restart against the same directory
    /// serves yesterday's results byte-identically without loading them
    /// resident.
    pub store_dir: Option<PathBuf>,
    /// Hard budget for payload bytes resident in the in-memory cache
    /// tier; requires `store_dir` (overflow must have somewhere to
    /// live). `None` leaves the memory tier bounded by entry count
    /// only.
    pub store_budget_bytes: Option<u64>,
    /// Dead (superseded) bytes in the store that trigger a background
    /// compaction pass.
    pub compact_trigger_bytes: u64,
    /// One-shot migration: import this legacy JSONL spill into the
    /// store at startup (requires `store_dir`), printing how many
    /// records were imported or refused.
    pub migrate_spill: Option<PathBuf>,
    /// When set, every executed job also writes its run manifest as
    /// `<content-hash>.manifest.json` under this directory.
    pub manifest_dir: Option<PathBuf>,
    /// When set, a plain-HTTP listener on this address answers
    /// `GET /metrics` with the Prometheus exposition (port 0 picks a
    /// free one), so standard scrapers work without the wire protocol.
    pub metrics_addr: Option<String>,
    /// When set, every finished request appends one JSON line (id,
    /// type, spec key, outcome, phase timings) to this file.
    pub access_log: Option<PathBuf>,
    /// Requests at or above this total latency are stamped slow in the
    /// access log and counted in `bfdn_slow_requests_total`.
    pub slow_request_ms: u64,
    /// Batches larger than this are split into cap-sized sub-jobs at
    /// enqueue time, so one huge batch cannot monopolize the queue and
    /// concurrent batch clients interleave chunk by chunk.
    pub batch_split: usize,
    /// Per-connection read budget in milliseconds: the idle wait for the
    /// next frame *and* the deadline for completing a started frame
    /// (slow-loris writers are cut off, not accumulated). `0` disables
    /// the deadline. The same budget bounds reply writes to peers that
    /// stop reading.
    pub read_timeout_ms: u64,
    /// Fixed number of threads answering `/metrics` scrapes (the
    /// listener hands accepted sockets to this pool instead of spawning
    /// a thread per scrape).
    pub metrics_scrapers: usize,
    /// When set, every recorded span is also streamed to this file —
    /// JSONL per-span lines, or a Perfetto-loadable Chrome trace-event
    /// array when the path ends in `.json`.
    pub trace_out: Option<PathBuf>,
    /// Server-assigned trace sampling: every Nth request gets a trace
    /// even without a client-supplied `trace` id (`0` disables
    /// sampling). Client-supplied ids are always honoured.
    pub trace_sample: u64,
    /// Intra-round thread budget handed to each executed explorer
    /// (`BFDN_ROUND_THREADS` / 1 when unset). Results are byte-identical
    /// at any value — this only trades wall-clock time against worker
    /// parallelism, so batch items get the budget divided among them.
    pub round_threads: Option<usize>,
    /// Wire addresses of the other shards in this daemon's cluster.
    /// When non-empty, a local cache miss first asks each peer (in a
    /// key-rotated order) for its cached result over
    /// [`Request::PeerFill`] before executing — so across a ring a spec
    /// is computed once and then copied, not recomputed per shard.
    /// Empty (the default) disables peer cache-fill entirely.
    pub peers: Vec<String>,
    /// Connect *and* read budget for one peer cache-fill probe, in
    /// milliseconds. A dead or blackholed peer costs at most this much
    /// per probe before the shard falls back to executing locally.
    pub peer_timeout_ms: u64,
    /// Rotate the access log to `<path>.1` (keeping one generation)
    /// when a line would push it past this many bytes; `0` (the
    /// default) never rotates.
    pub access_log_max_bytes: u64,
    /// Sampling interval of the worker-profiling watcher thread in
    /// milliseconds; `0` disables the watcher (and `--profile-out`).
    pub profile_interval_ms: u64,
    /// When set, the cumulative worker phase samples are written to
    /// this file as folded-stacks text on shutdown, ready for
    /// `inferno-flamegraph` / `flamegraph.pl`.
    pub profile_out: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4077".into(),
            workers: None,
            queue_depth: 64,
            cache: CacheConfig::default(),
            spill: None,
            store_dir: None,
            store_budget_bytes: None,
            compact_trigger_bytes: 8 * 1024 * 1024,
            migrate_spill: None,
            manifest_dir: None,
            metrics_addr: None,
            access_log: None,
            slow_request_ms: 1_000,
            batch_split: 32,
            read_timeout_ms: 30_000,
            metrics_scrapers: 2,
            trace_out: None,
            trace_sample: 0,
            round_threads: None,
            peers: Vec::new(),
            peer_timeout_ms: 250,
            access_log_max_bytes: 0,
            profile_interval_ms: 5,
            profile_out: None,
        }
    }
}

/// Worker phase slot values, mirrored by
/// [`crate::telemetry::WORKER_PHASES`].
const PHASE_IDLE: u64 = 0;
const PHASE_EXECUTE: u64 = 1;

/// An active trace context: the trace id and the span new child spans
/// should be parented under.
#[derive(Clone, Copy)]
struct SpanCtx {
    trace: u64,
    parent: u64,
}

/// One queued unit of work plus the channel its reply goes back on.
struct Job {
    kind: JobKind,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
    /// Filled by the worker so the connection handler can log per-phase
    /// timings after the reply arrives.
    timing: Arc<JobTiming>,
    /// The request's trace context, carried across the queue so the
    /// worker's `queue_wait`/`execute` spans join the caller's tree.
    trace: Option<SpanCtx>,
}

/// Per-job phase timings, written by the worker and read by the
/// connection handler for the access log.
#[derive(Default)]
struct JobTiming {
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
}

enum JobKind {
    One(ExploreSpec),
    Batch(Vec<ExploreSpec>),
}

/// Why a job could not be enqueued.
enum PushError {
    Full,
    Closed,
}

/// The bounded job queue: a mutex-guarded deque with a condvar for the
/// workers and an explicit capacity for the backpressure contract.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    space: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: full queues reject instead of waiting — that
    /// is the whole point of the depth limit.
    fn push(&self, job: Job) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("job queue");
        if !state.open {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking push: waits for a free slot instead of rejecting. Used
    /// only for the follow-up chunks of an already-accepted split batch
    /// — the first chunk went through [`JobQueue::push`], so the
    /// backpressure contract (a full queue answers `Busy` to *new* work)
    /// is preserved, while a started batch is guaranteed to finish.
    /// Progress is guaranteed because workers never block on a push.
    fn push_wait(&self, job: Job) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("job queue");
        loop {
            if !state.open {
                return Err(PushError::Closed);
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                self.ready.notify_one();
                return Ok(());
            }
            state = self.space.wait(state).expect("job queue");
        }
    }

    /// Blocking pop; returns `None` only when the queue is closed *and*
    /// fully drained, so every accepted job is executed before workers
    /// exit.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("job queue");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.space.notify_one();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).expect("job queue");
        }
    }

    /// Closes the queue: pushes start failing, workers drain what is
    /// left and then exit.
    fn close(&self) {
        let mut state = self.state.lock().expect("job queue");
        state.open = false;
        self.ready.notify_all();
        self.space.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("job queue").jobs.len()
    }
}

/// Monotonic counters exposed through [`Request::Status`].
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    explores: AtomicU64,
    batches: AtomicU64,
    rejects: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicU64,
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
}

/// State shared by the accept loop, connection handlers and workers.
struct Shared {
    queue: JobQueue,
    cache: ResultCache,
    counters: Counters,
    telemetry: ServiceMetrics,
    access_log: Option<AccessLog>,
    tracer: Tracer,
    trace_sample: u64,
    slow_ns: u64,
    draining: AtomicBool,
    workers: usize,
    manifest_dir: Option<PathBuf>,
    batch_split: usize,
    read_timeout_ms: u64,
    /// Resolved intra-round thread budget per executed explorer.
    round_threads: usize,
    /// Cluster peers to ask before executing a local miss (empty: no
    /// peer cache-fill).
    peers: Vec<String>,
    /// Connect/read budget per peer probe.
    peer_timeout: Duration,
    /// Each worker's current phase ([`PHASE_IDLE`] / [`PHASE_EXECUTE`]),
    /// written by the worker loop and snapshotted by the profiler
    /// watcher — sampling by shared atomics, no signals.
    worker_phase: Vec<AtomicU64>,
    started: Instant,
}

impl Shared {
    fn status(&self) -> StatusPayload {
        StatusPayload {
            requests: self.counters.requests.load(Ordering::Relaxed),
            explores: self.counters.explores.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            cache_hits: self.cache.stats().hits,
            cache_misses: self.cache.stats().misses,
            rejects: self.counters.rejects.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            queue_capacity: self.queue.capacity as u64,
            workers: self.workers as u64,
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            queue_wait_ns: self.counters.queue_wait_ns.load(Ordering::Relaxed),
            exec_ns: self.counters.exec_ns.load(Ordering::Relaxed),
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
        }
    }

    /// Records a completed span under `ctx`, measured from `start_ns`
    /// (recorder timebase) to now. No-op when the request is untraced.
    fn span(&self, ctx: Option<SpanCtx>, name: &'static str, start_ns: u64) -> Option<SpanRecord> {
        let c = ctx?;
        let duration = self.tracer.now_ns().saturating_sub(start_ns);
        Some(SpanRecord::new(c.trace, self.tracer.next_id(), c.parent, name).at(start_ns, duration))
    }

    /// Runs one spec (after a final cache re-check — another worker may
    /// have computed it while this job queued) and stores the result.
    /// Every fresh execution feeds its Theorem 1 / Lemma 2 margins into
    /// the daemon-wide aggregates. When `ctx` is set, the lookup, the
    /// run (with its simulator phases) and the insert each get a span.
    fn execute(
        &self,
        spec: &ExploreSpec,
        ctx: Option<SpanCtx>,
        round_threads: usize,
    ) -> Result<ExploreResult, WireError> {
        let lookup_start = self.tracer.now_ns();
        let hit = self.cache.get(spec);
        if let Some(span) = self.span(ctx, "cache_lookup", lookup_start) {
            self.tracer.record(span.attr_bool("hit", hit.is_some()));
        }
        if let Some(hit) = hit {
            return Ok(hit);
        }
        let run_start = self.tracer.now_ns();
        let run_span = ctx.map(|c| (c, self.tracer.next_id()));
        let (result, manifest) = match run_span {
            Some((c, span)) => {
                let mut phases = SpanSink::new(&self.tracer, c.trace, span);
                exec::run_spec_observed_with_threads(spec, &mut phases, round_threads)?
            }
            None => exec::run_spec_with_threads(spec, round_threads)?,
        };
        if let Some((c, span)) = run_span {
            let duration = self.tracer.now_ns().saturating_sub(run_start);
            self.tracer.record(
                SpanRecord::new(c.trace, span, c.parent, "run_spec")
                    .at(run_start, duration)
                    .attr_str("key", spec.canonical()),
            );
        }
        self.telemetry.record_margins(&result, &manifest);
        let insert_start = self.tracer.now_ns();
        self.cache.put(&result);
        if let Some(span) = self.span(ctx, "cache_insert", insert_start) {
            self.tracer.record(span);
        }
        if let Some(dir) = &self.manifest_dir {
            let path = dir.join(format!("{:016x}.manifest.json", spec.content_hash()));
            if let Err(e) = manifest.write(&path) {
                eprintln!("bfdn-serve: cannot write {}: {e}", path.display());
            }
        }
        Ok(result)
    }

    /// Asks each configured cluster peer for its cached copy of `spec`
    /// before this shard executes it. Peers are probed in a
    /// key-rotated order (so a hot key does not hammer the same peer
    /// from every shard) with the bounded `peer_timeout` per probe; the
    /// first hit is margin-re-checked, counted in
    /// `bfdn_peer_fill_hit_total`, stored locally, and served with
    /// `cached = true`. When every peer misses (or is unreachable) the
    /// caller executes locally and `bfdn_peer_fill_miss_total` counts
    /// the cold path. No-op returning `None` when no peers are
    /// configured. Two shards missing the same spec concurrently can
    /// still both execute it — peer fill removes the steady-state
    /// recomputation, not the race.
    fn peer_fill_lookup(&self, spec: &ExploreSpec, ctx: Option<SpanCtx>) -> Option<ExploreResult> {
        if self.peers.is_empty() {
            return None;
        }
        let start_ns = self.tracer.now_ns();
        let canonical = spec.canonical();
        let start = fnv1a(canonical.as_bytes()) as usize % self.peers.len();
        for i in 0..self.peers.len() {
            let peer = &self.peers[(start + i) % self.peers.len()];
            let Some(addr) = peer
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
            else {
                continue;
            };
            let Ok(mut client) = Client::connect_timeout(&addr, self.peer_timeout) else {
                continue;
            };
            if client.set_read_timeout(Some(self.peer_timeout)).is_err() {
                continue;
            }
            // Propagate the request's trace envelope on the PeerFill
            // frame, so the peer's span ring records its side of the
            // probe under the same trace id and a fleet-side stitch can
            // join the hop (without this the peer's work is invisible).
            client.set_trace(ctx.map(|c| c.trace));
            if let Ok(Some(result)) = client.peer_fill(spec.clone()) {
                // Trust but verify: the serving shard re-asserts the
                // Theorem 1 bound on every payload it hands out, even
                // ones a peer computed.
                self.telemetry.record_peer_margins(&result);
                self.telemetry.peer_fill_hit();
                self.cache.put(&result);
                if let Some(span) = self.span(ctx, "peer_fill", start_ns) {
                    self.tracer
                        .record(span.attr_bool("hit", true).attr_str("peer", peer.clone()));
                }
                return Some(result);
            }
        }
        self.telemetry.peer_fill_miss();
        if let Some(span) = self.span(ctx, "peer_fill", start_ns) {
            self.tracer.record(span.attr_bool("hit", false));
        }
        None
    }

    /// Snapshots the recent-span ring for a [`Request::Trace`] reply,
    /// keeping only `filter`'s spans when the request carried a trace
    /// envelope.
    fn trace_snapshot(&self, filter: Option<u64>) -> TracePayload {
        let recorder = self.tracer.recorder();
        let spans = recorder
            .snapshot()
            .iter()
            .filter(|s| filter.is_none() || filter == Some(s.trace))
            .map(SpanPayload::from)
            .collect();
        TracePayload {
            spans,
            recorded: recorder.recorded(),
            dropped: recorder.dropped(),
        }
    }

    /// Refreshes the point-in-time gauges and renders the full
    /// Prometheus exposition (shared by the `Metrics` wire request and
    /// the HTTP listener).
    fn render_metrics(&self) -> String {
        if let Some(stats) = self.cache.store_stats() {
            self.telemetry.mirror_store(&stats);
        }
        self.telemetry.render(
            &self.cache.stats(),
            self.queue.depth() as u64,
            self.counters.in_flight.load(Ordering::SeqCst),
        )
    }
}

/// A running server; dropping the handle does **not** stop it — send
/// [`Request::Shutdown`] (or call [`ServerHandle::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    metrics: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    profiler: Option<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
    profile_out: Option<PathBuf>,
    spill: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-HTTP address when `--metrics-addr` was
    /// configured (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Programmatic equivalent of a [`Request::Shutdown`] frame.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    /// Waits for the accept loop and workers to finish draining, then
    /// spills the cache when configured.
    ///
    /// Only returns once a shutdown was requested (by frame or by
    /// [`ServerHandle::shutdown`]); every in-flight job completes and
    /// every queued job is executed before this returns.
    pub fn join(self) -> io::Result<()> {
        self.accept.join().map_err(|_| worker_panic())?;
        for m in self.metrics {
            m.join().map_err(|_| worker_panic())?;
        }
        for w in self.workers {
            w.join().map_err(|_| worker_panic())?;
        }
        if let Some(p) = self.profiler {
            p.join().map_err(|_| worker_panic())?;
        }
        if let Some(c) = self.compactor {
            c.join().map_err(|_| worker_panic())?;
        }
        if let Some(path) = &self.profile_out {
            let folded = self.shared.telemetry.folded_stacks();
            std::fs::write(path, &folded)?;
            eprintln!(
                "bfdn-serve: wrote {} folded stack frames to {}",
                folded.lines().count(),
                path.display()
            );
        }
        if self.shared.cache.has_store() {
            // The store already holds every executed result; persisting
            // its index makes the next open instant instead of a
            // segment scan. The legacy spill write is skipped — a
            // budget-bounded memory tier would spill an incomplete
            // snapshot anyway.
            self.shared.cache.persist_store_index()?;
            eprintln!("bfdn-serve: persisted result-store index");
        } else if let Some(path) = &self.spill {
            let tracer = &self.shared.tracer;
            let spill_start = tracer.now_ns();
            let spilled = self.shared.cache.spill_to(path)?;
            // The spill belongs to no request, so it roots its own
            // one-span trace in the timeline.
            let trace = tracer.next_id();
            let duration = tracer.now_ns().saturating_sub(spill_start);
            tracer.record(
                SpanRecord::new(trace, tracer.next_id(), 0, "cache_spill")
                    .at(spill_start, duration)
                    .attr_u64("entries", spilled as u64),
            );
            eprintln!(
                "bfdn-serve: spilled {spilled} cache entries to {}",
                path.display()
            );
        }
        if let Err(e) = self.shared.tracer.close() {
            eprintln!("bfdn-serve: trace export failed: {e}");
        }
        Ok(())
    }
}

fn worker_panic() -> io::Error {
    io::Error::other("a server thread panicked")
}

/// Binds the listener, warm-loads the cache when configured, and spawns
/// the accept loop plus the worker pool.
///
/// # Errors
///
/// Propagates the bind / spill-load I/O error.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let workers = config.workers.unwrap_or_else(parallel::num_threads).max(1);
    let mut cache = ResultCache::new(config.cache);
    if let Some(dir) = &config.store_dir {
        let mut store_config = bfdn_store::StoreConfig::new(dir);
        store_config.revision = cache.revision().map(String::from);
        store_config.compact_trigger_bytes = config.compact_trigger_bytes.max(1);
        let (store, report) = bfdn_store::Store::open(store_config)?;
        if report.revision_mismatch {
            eprintln!(
                "bfdn-serve: store {} was written by another revision — {} records refused, starting a fresh store",
                dir.display(),
                report.refused
            );
        } else if report.records > 0 {
            eprintln!(
                "bfdn-serve: result store {} opened with {} records{}",
                dir.display(),
                report.records,
                if report.index_rebuilt {
                    " (index rebuilt by segment scan)"
                } else {
                    ""
                }
            );
        }
        if report.truncated_segments > 0 {
            eprintln!(
                "bfdn-serve: dropped {} crash-truncated segment tail(s); intact records kept",
                report.truncated_segments
            );
        }
        cache.attach_store(store, config.store_budget_bytes);
    } else if config.store_budget_bytes.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--store-budget-bytes requires --store-dir (overflow must have somewhere to live)",
        ));
    }
    if let Some(path) = &config.migrate_spill {
        if !cache.has_store() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--migrate-spill requires --store-dir",
            ));
        }
        let report = cache.import_spill_to_store(path)?;
        eprintln!(
            "bfdn-serve: migrated spill {}: {} imported, {} refused{}, {} malformed",
            path.display(),
            report.loaded,
            report.refused,
            if report.revision_mismatch {
                " (revision mismatch)"
            } else {
                ""
            },
            report.malformed
        );
    }
    if let Some(path) = &config.spill {
        if cache.has_store() {
            // Legacy flag alongside the store: keep it working by
            // importing into the store instead of loading resident.
            if path.exists() {
                let report = cache.import_spill_to_store(path)?;
                eprintln!(
                    "bfdn-serve: --spill is deprecated with --store-dir; imported {} entries from {} into the store ({} refused)",
                    report.loaded,
                    path.display(),
                    report.refused
                );
            }
        } else if path.exists() {
            let report = cache.load_from(path)?;
            if report.revision_mismatch {
                eprintln!(
                    "bfdn-serve: spill {} was written by another revision — {} entries refused, starting cold",
                    path.display(),
                    report.refused
                );
            } else {
                eprintln!(
                    "bfdn-serve: warm start with {} cached results from {} ({} malformed lines skipped)",
                    report.loaded,
                    path.display(),
                    report.malformed
                );
            }
        }
    }
    if let Some(dir) = &config.manifest_dir {
        std::fs::create_dir_all(dir)?;
    }
    let access_log = match &config.access_log {
        Some(path) => Some(AccessLog::open(
            path,
            config.slow_request_ms,
            config.access_log_max_bytes,
        )?),
        None => None,
    };
    let metrics_listener = match &config.metrics_addr {
        Some(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(listener) => Some(listener.local_addr()?),
        None => None,
    };

    let tracer = {
        let tracer = Tracer::new(SpanRecorder::DEFAULT_CAPACITY);
        match &config.trace_out {
            Some(path) => tracer.with_writer(TraceWriter::create(path)?),
            None => tracer,
        }
    };

    let shared = Arc::new(Shared {
        queue: JobQueue::new(config.queue_depth.max(1)),
        cache,
        counters: Counters::default(),
        telemetry: ServiceMetrics::new(workers),
        access_log,
        tracer,
        trace_sample: config.trace_sample,
        slow_ns: config.slow_request_ms.saturating_mul(1_000_000),
        draining: AtomicBool::new(false),
        workers,
        manifest_dir: config.manifest_dir.clone(),
        batch_split: config.batch_split.max(1),
        read_timeout_ms: config.read_timeout_ms,
        round_threads: config
            .round_threads
            .unwrap_or_else(parallel::round_threads)
            .max(1),
        peers: config.peers.clone(),
        peer_timeout: Duration::from_millis(config.peer_timeout_ms.max(1)),
        worker_phase: (0..workers).map(|_| AtomicU64::new(PHASE_IDLE)).collect(),
        started: Instant::now(),
    });

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|index| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, index))
        })
        .collect();

    let mut metrics = Vec::new();
    if let Some(listener) = metrics_listener {
        // Scrapes are answered by a fixed pool, not thread-per-scrape:
        // the accept loop hands sockets over a bounded channel and sheds
        // load (drops the socket) when the backlog is full.
        let (scrape_tx, scrape_rx) = mpsc::sync_channel::<TcpStream>(SCRAPE_BACKLOG);
        let scrape_rx = Arc::new(Mutex::new(scrape_rx));
        for _ in 0..config.metrics_scrapers.max(1) {
            let shared = Arc::clone(&shared);
            let scrape_rx = Arc::clone(&scrape_rx);
            metrics.push(std::thread::spawn(move || loop {
                let stream = match scrape_rx.lock().expect("scrape pool").recv() {
                    Ok(stream) => stream,
                    Err(_) => return, // listener exited, pool drains out
                };
                serve_metrics_http(stream, &shared);
            }));
        }
        let shared = Arc::clone(&shared);
        metrics.push(std::thread::spawn(move || {
            metrics_http_loop(listener, &shared, &scrape_tx)
        }));
    }

    let profiler = (config.profile_interval_ms > 0).then(|| {
        let shared = Arc::clone(&shared);
        let interval = Duration::from_millis(config.profile_interval_ms);
        std::thread::spawn(move || profiler_loop(&shared, interval))
    });

    let compactor = shared.cache.has_store().then(|| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || store_maintenance_loop(&shared))
    });

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));

    Ok(ServerHandle {
        addr,
        metrics_addr,
        shared,
        accept,
        metrics,
        workers: worker_handles,
        profiler,
        compactor,
        profile_out: config.profile_out,
        spill: config.spill,
    })
}

/// Poll interval of the background store-maintenance (compaction)
/// thread. Each idle pass is one cheap dead-bytes comparison under the
/// store lock; an actual compaction runs rarely and off the request
/// path.
const STORE_MAINTENANCE_INTERVAL: Duration = Duration::from_millis(250);

/// The background compactor: folds the store's superseded records into
/// fresh segments whenever its dead-bytes trigger is crossed. Runs one
/// final pass after the drain condition so a shutdown-time supersede
/// still gets reclaimed, then exits like the other watcher threads.
fn store_maintenance_loop(shared: &Arc<Shared>) {
    loop {
        match shared.cache.maintain_store() {
            Ok(Some(report)) => eprintln!(
                "bfdn-serve: store compaction reclaimed {} bytes ({} -> {} segments, {} live records)",
                report.reclaimed_bytes,
                report.segments_before,
                report.segments_after,
                report.live_records
            ),
            Ok(None) => {}
            Err(e) => eprintln!("bfdn-serve: store compaction failed: {e}"),
        }
        if shared.draining.load(Ordering::SeqCst)
            && shared.queue.depth() == 0
            && shared.counters.in_flight.load(Ordering::SeqCst) == 0
        {
            return;
        }
        std::thread::sleep(STORE_MAINTENANCE_INTERVAL);
    }
}

/// The worker-profiling watcher: snapshots every worker's phase slot on
/// a fixed interval into the state gauges and phase-sample counters.
/// Pure reads of pre-existing atomics — the workers never see the
/// profiler, which is why it cannot perturb the SLOs it helps explain.
/// Exits on the same drain condition as the accept loop.
fn profiler_loop(shared: &Arc<Shared>, interval: Duration) {
    loop {
        for (index, slot) in shared.worker_phase.iter().enumerate() {
            let phase = slot.load(Ordering::Relaxed) as usize;
            shared.telemetry.worker_sample(index, phase);
        }
        if shared.draining.load(Ordering::SeqCst)
            && shared.queue.depth() == 0
            && shared.counters.in_flight.load(Ordering::SeqCst) == 0
        {
            return;
        }
        std::thread::sleep(interval);
    }
}

/// Accepted-but-unserved scrape sockets the pool will hold before the
/// listener starts shedding (dropping) new ones.
const SCRAPE_BACKLOG: usize = 16;

/// Polls the metrics listener and hands accepted sockets to the fixed
/// scrape pool; a full backlog sheds the socket instead of spawning.
/// Exits on the same condition as [`accept_loop`], so scrapes keep
/// working through a drain.
fn metrics_http_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    pool: &mpsc::SyncSender<TcpStream>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // A TrySendError in either form drops the socket: Full is
                // deliberate load-shedding, Disconnected means the pool
                // is gone and the loop is about to exit anyway.
                let _ = pool.try_send(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst)
                    && shared.queue.depth() == 0
                    && shared.counters.in_flight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// One scrape: read the request head, answer, close.
fn serve_metrics_http(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    // Read until the end of the request head (or the 4 KiB cap — a
    // scrape has no body worth waiting for).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 4096 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let target = request_line
        .lines()
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(1)
        .unwrap_or("");
    let (status, content_type, body) = if target == "/metrics" || target.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            shared.render_metrics(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only /metrics is served here\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Polls the non-blocking listener so the loop can observe the draining
/// flag; exits once draining starts and the queue is empty with nothing
/// in flight.
fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst)
                    && shared.queue.depth() == 0
                    && shared.counters.in_flight.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// Drains the job queue until it is closed and empty.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    while let Some(job) = shared.queue.pop() {
        shared.counters.in_flight.fetch_add(1, Ordering::SeqCst);
        let waited = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .counters
            .queue_wait_ns
            .fetch_add(waited, Ordering::Relaxed);
        shared.telemetry.observe_queue_wait(waited as f64 / 1e9);
        job.timing.queue_wait_ns.store(waited, Ordering::Relaxed);
        if let Some(c) = job.trace {
            // Back-dated: the wait ended the moment this worker popped
            // the job.
            let now = shared.tracer.now_ns();
            shared.tracer.record(
                SpanRecord::new(c.trace, shared.tracer.next_id(), c.parent, "queue_wait")
                    .at(now.saturating_sub(waited), waited),
            );
        }
        let exec_span = job.trace.map(|c| (c, shared.tracer.next_id()));
        let exec_ctx = exec_span.map(|(c, span)| SpanCtx {
            trace: c.trace,
            parent: span,
        });
        let exec_start_ns = shared.tracer.now_ns();
        let exec_start = Instant::now();
        if let Some(slot) = shared.worker_phase.get(index) {
            slot.store(PHASE_EXECUTE, Ordering::Relaxed);
        }
        let response = match &job.kind {
            JobKind::One(spec) => match shared.execute(spec, exec_ctx, shared.round_threads) {
                Ok(result) => Response::Result(Box::new(result)),
                Err(e) => Response::Error(e),
            },
            JobKind::Batch(specs) => run_batch(shared, specs, exec_ctx),
        };
        if let Some(slot) = shared.worker_phase.get(index) {
            slot.store(PHASE_IDLE, Ordering::Relaxed);
        }
        // Floor of one execute sample per job: jobs shorter than the
        // sampling interval stay visible in the folded profile.
        shared.telemetry.worker_execute_floor(index);
        let exec_ns = u64::try_from(exec_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some((c, span)) = exec_span {
            let items = match &job.kind {
                JobKind::One(_) => 1,
                JobKind::Batch(specs) => specs.len() as u64,
            };
            shared.tracer.record(
                SpanRecord::new(c.trace, span, c.parent, "execute")
                    .at(exec_start_ns, exec_ns)
                    .attr_u64("worker", index as u64)
                    .attr_u64("items", items)
                    .attr_u64("round_threads", shared.round_threads as u64),
            );
        }
        shared
            .counters
            .exec_ns
            .fetch_add(exec_ns, Ordering::Relaxed);
        shared.telemetry.observe_execute(exec_ns as f64 / 1e9);
        shared.telemetry.worker_busy(index, exec_ns);
        job.timing.exec_ns.store(exec_ns, Ordering::Relaxed);
        // The handler may have given up (connection dropped); a dead
        // receiver is not an error worth crashing a worker for.
        let _ = job.reply.send(response);
        shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        shared.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executes a batch job: answered items come from the cache, the rest
/// fan out over the parallel substrate, and the reply preserves request
/// order.
fn run_batch(shared: &Arc<Shared>, specs: &[ExploreSpec], ctx: Option<SpanCtx>) -> Response {
    // A batch item missing locally still tries the cluster peers before
    // it counts as pending; a peer-filled item is a hit — it was served
    // without executing anything here.
    let looked_up: Vec<Option<ExploreResult>> = specs
        .iter()
        .map(|spec| {
            shared
                .cache
                .get(spec)
                .or_else(|| shared.peer_fill_lookup(spec, ctx))
        })
        .collect();
    let pending: Vec<&ExploreSpec> = specs
        .iter()
        .zip(&looked_up)
        .filter_map(|(spec, hit)| hit.is_none().then_some(spec))
        .collect();
    // Batch items already fan out across the work-sharing substrate, so
    // the intra-round budget is divided among them (never below 1) to
    // keep the two levels from oversubscribing each other.
    let per_item = (shared.round_threads / pending.len().max(1)).max(1);
    let computed: Vec<Result<ExploreResult, WireError>> =
        parallel::par_map(&pending, |spec| shared.execute(spec, ctx, per_item));

    let hits = looked_up.iter().flatten().count() as u64;
    let misses = pending.len() as u64;
    let mut computed = computed.into_iter();
    let mut results = Vec::with_capacity(specs.len());
    for hit in looked_up {
        let item = match hit {
            Some(result) => result,
            None => match computed.next().expect("one result per pending spec") {
                Ok(result) => result,
                Err(e) => return Response::Error(e),
            },
        };
        results.push(item);
    }
    Response::Batch {
        results,
        hits,
        misses,
    }
}

/// Per-request access-log accumulator, filled through [`dispatch`] and
/// flushed (with the slow-request counters) by the connection handler.
#[derive(Default)]
struct ReqLog {
    kind: &'static str,
    key: String,
    /// The request's trace id (`0` when untraced), for the access log's
    /// `trace_id` field.
    trace_id: u64,
    queue_wait_ns: u64,
    exec_ns: u64,
}

/// Read adapter enforcing the per-connection read budget: a plain idle
/// timeout while waiting for a frame's first byte, then a hard deadline
/// for completing that frame. A slow-loris writer trickling one byte
/// per interval resets a naive per-read timeout forever; it cannot
/// outlive a whole-frame deadline.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    budget: Option<Duration>,
    /// Armed by the first byte of a frame; cleared by the handler at
    /// each frame boundary.
    deadline: Option<Instant>,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(budget) = self.budget else {
            return (&mut &*self.stream).read(buf);
        };
        let window = match self.deadline {
            None => budget,
            Some(deadline) => deadline
                .checked_duration_since(Instant::now())
                .filter(|left| !left.is_zero())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::TimedOut, "frame read budget exhausted")
                })?,
        };
        self.stream.set_read_timeout(Some(window))?;
        let n = (&mut &*self.stream).read(buf)?;
        if self.deadline.is_none() && n > 0 {
            self.deadline = Some(Instant::now() + budget);
        }
        Ok(n)
    }
}

/// One connection: a loop of frame → decode → dispatch → frame.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let budget =
        (shared.read_timeout_ms > 0).then(|| Duration::from_millis(shared.read_timeout_ms));
    // The same budget bounds reply writes, so a peer that stops reading
    // cannot pin this handler thread on a full socket buffer.
    let _ = stream.set_write_timeout(budget);
    let mut reader = DeadlineStream {
        stream: &stream,
        budget,
        deadline: None,
    };
    let mut stream = &stream;
    loop {
        reader.deadline = None; // fresh idle wait + frame budget per frame
        let payload = match read_frame(&mut reader) {
            Ok(payload) => payload,
            Err(FrameError::TooLarge(len)) => {
                // The peer's framing is fine (we read the length), but
                // the payload cannot be resynchronized — reply and drop.
                let e = WireError::new(
                    ErrorCode::TooLarge,
                    format!("frame of {len} bytes exceeds the cap"),
                );
                let _ = write_frame(&mut stream, &Response::Error(e).to_json());
                return;
            }
            Err(FrameError::Utf8) => {
                let e = WireError::bad_request("frame payload is not UTF-8");
                let _ = write_frame(&mut stream, &Response::Error(e).to_json());
                continue;
            }
            Err(FrameError::Io(_)) => return, // disconnect, timeout, or abuse
        };
        let received = Instant::now();
        let root_start_ns = shared.tracer.now_ns();
        let id = shared.counters.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut log = ReqLog {
            kind: "invalid",
            ..ReqLog::default()
        };
        let mut root: Option<SpanCtx> = None;
        let mut envelope: Option<u64> = None;
        let decode_start = shared.tracer.now_ns();
        let decoded = Request::from_json_traced(&payload);
        let decode_ns = shared.tracer.now_ns().saturating_sub(decode_start);
        let response = match decoded {
            Err(e) => Response::Error(e),
            Ok((request, client_trace)) => {
                // Client-supplied ids are always traced; sampling adds a
                // server-assigned trace every Nth request on top. The
                // introspection request itself is never traced — its
                // envelope id is a filter, echoed but not recorded.
                let sampled = shared.trace_sample > 0 && id.is_multiple_of(shared.trace_sample);
                let active = match request {
                    Request::Trace => None,
                    _ => client_trace.or_else(|| sampled.then(|| shared.tracer.next_id())),
                };
                envelope = client_trace.or(active);
                root = active.map(|trace| SpanCtx {
                    trace,
                    parent: shared.tracer.next_id(),
                });
                if let Some(r) = root {
                    log.trace_id = r.trace;
                    shared.tracer.record(
                        SpanRecord::new(r.trace, shared.tracer.next_id(), r.parent, "decode")
                            .at(decode_start, decode_ns)
                            .attr_u64("bytes", payload.len() as u64),
                    );
                }
                dispatch(request, shared, &mut log, root, envelope)
            }
        };
        shared.telemetry.request(log.kind);
        let serialize_start = Instant::now();
        let serialize_start_ns = shared.tracer.now_ns();
        let write_result = write_frame(&mut stream, &response.to_json_traced(envelope));
        let serialize_ns = u64::try_from(serialize_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared
            .telemetry
            .observe_serialize(serialize_ns as f64 / 1e9);
        if let Some(r) = root {
            shared.tracer.record(
                SpanRecord::new(r.trace, shared.tracer.next_id(), r.parent, "serialize")
                    .at(serialize_start_ns, serialize_ns),
            );
        }
        finish_trace(
            shared,
            id,
            &log,
            &response,
            serialize_ns,
            received,
            root,
            root_start_ns,
            write_result.is_err(),
        );
        if write_result.is_err() {
            return;
        }
    }
}

/// Closes out one request: the root `request` span, slow-request
/// accounting, and the access-log line.
///
/// Runs after the reply write regardless of its outcome, so a peer that
/// hung up mid-reply (chaos personas, cut connections) still closes its
/// span tree — the root records `write_failed` instead of vanishing.
#[allow(clippy::too_many_arguments)]
fn finish_trace(
    shared: &Arc<Shared>,
    id: u64,
    log: &ReqLog,
    response: &Response,
    serialize_ns: u64,
    received: Instant,
    root: Option<SpanCtx>,
    root_start_ns: u64,
    write_failed: bool,
) {
    let total_ns = u64::try_from(received.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if let Some(r) = root {
        let duration = shared.tracer.now_ns().saturating_sub(root_start_ns);
        let mut span = SpanRecord::new(r.trace, r.parent, 0, "request")
            .at(root_start_ns, duration)
            .attr_str("kind", log.kind)
            .attr_u64("id", id);
        if write_failed {
            span = span.attr_bool("write_failed", true);
        }
        shared.tracer.record(span);
    }
    if total_ns >= shared.slow_ns {
        shared
            .telemetry
            .slow_request(log.queue_wait_ns, log.exec_ns, serialize_ns, total_ns);
    }
    let Some(access) = &shared.access_log else {
        return;
    };
    let (outcome, cached) = match response {
        Response::Error(e) => (format!("error:{}", e.code.as_str()), false),
        Response::Result(r) => ("ok".to_string(), r.cached),
        Response::Batch { hits, misses, .. } => ("ok".to_string(), *misses == 0 && *hits > 0),
        _ => ("ok".to_string(), false),
    };
    access.record(&AccessRecord {
        id,
        request: log.kind.to_string(),
        key: log.key.clone(),
        outcome,
        trace_id: if log.trace_id == 0 {
            String::new()
        } else {
            hex16(log.trace_id)
        },
        cached,
        queue_wait_ns: log.queue_wait_ns,
        exec_ns: log.exec_ns,
        serialize_ns,
        total_ns,
    });
}

/// Routes one decoded request; cache hits and introspection never touch
/// the queue. `ctx` is the active trace (children parent under the root
/// span); `envelope` is the document's raw trace id, which a
/// [`Request::Trace`] uses as a span filter.
fn dispatch(
    request: Request,
    shared: &Arc<Shared>,
    log: &mut ReqLog,
    ctx: Option<SpanCtx>,
    envelope: Option<u64>,
) -> Response {
    match request {
        Request::Status => {
            log.kind = "status";
            Response::Status(shared.status())
        }
        Request::CacheStats => {
            log.kind = "cache_stats";
            Response::CacheStats(shared.cache.stats())
        }
        Request::Metrics => {
            log.kind = "metrics";
            Response::Metrics(shared.render_metrics())
        }
        Request::Trace => {
            log.kind = "trace";
            Response::Trace(shared.trace_snapshot(envelope))
        }
        Request::PeerFill(spec) => {
            log.kind = "peer_fill";
            log.key = spec.canonical();
            // Answered from the cache alone — a peer probe can neither
            // enqueue work nor trigger this shard's own peer probes, so
            // fill traffic cannot recurse around the ring.
            match shared.cache.peek(&spec) {
                Some(result) => Response::Result(Box::new(result)),
                None => Response::PeerMiss,
            }
        }
        Request::Shutdown => {
            log.kind = "shutdown";
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue.close();
            Response::Bye
        }
        Request::Explore(spec) => {
            log.kind = "explore";
            log.key = spec.canonical();
            shared.counters.explores.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = exec::validate(&spec) {
                return Response::Error(e);
            }
            let lookup_start = shared.tracer.now_ns();
            let hit = shared.cache.get(&spec);
            if let Some(span) = shared.span(ctx, "cache_lookup", lookup_start) {
                shared.tracer.record(span.attr_bool("hit", hit.is_some()));
            }
            if let Some(hit) = hit {
                return Response::Result(Box::new(hit));
            }
            if let Some(filled) = shared.peer_fill_lookup(&spec, ctx) {
                return Response::Result(Box::new(filled));
            }
            enqueue_and_wait(shared, JobKind::One(spec), false, log, ctx)
        }
        Request::Batch(specs) => {
            log.kind = "batch";
            log.key = format!("batch[{}]", specs.len());
            shared.counters.batches.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .explores
                .fetch_add(specs.len() as u64, Ordering::Relaxed);
            if let Some(e) = specs.iter().find_map(|s| exec::validate(s).err()) {
                return Response::Error(e);
            }
            if specs.len() > shared.batch_split {
                return run_split_batch(shared, &specs, log, ctx);
            }
            enqueue_and_wait(shared, JobKind::Batch(specs), false, log, ctx)
        }
    }
}

/// Splits an oversized batch into [`ServerConfig::batch_split`]-sized
/// chunks and pipelines them through the queue one at a time, so
/// concurrent batch clients interleave chunk by chunk instead of
/// queueing whole-batch head-to-tail (queue fairness). The first chunk
/// goes through the non-blocking push — a full queue still answers
/// `Busy` to *new* work — while follow-up chunks of the accepted batch
/// wait for a slot, which cannot deadlock because workers never push.
fn run_split_batch(
    shared: &Arc<Shared>,
    specs: &[ExploreSpec],
    log: &mut ReqLog,
    ctx: Option<SpanCtx>,
) -> Response {
    let mut results = Vec::with_capacity(specs.len());
    let (mut hits, mut misses) = (0u64, 0u64);
    for (index, chunk) in specs.chunks(shared.batch_split).enumerate() {
        // Each sub-job gets one `chunk` span under the request root, so
        // a split batch reads as one tree: request → chunk[i] →
        // queue_wait/execute.
        let chunk_ctx = ctx.map(|c| SpanCtx {
            trace: c.trace,
            parent: shared.tracer.next_id(),
        });
        let chunk_start = shared.tracer.now_ns();
        let reply = enqueue_and_wait(
            shared,
            JobKind::Batch(chunk.to_vec()),
            index > 0,
            log,
            chunk_ctx,
        );
        if let (Some(c), Some(cc)) = (ctx, chunk_ctx) {
            let duration = shared.tracer.now_ns().saturating_sub(chunk_start);
            shared.tracer.record(
                SpanRecord::new(c.trace, cc.parent, c.parent, "chunk")
                    .at(chunk_start, duration)
                    .attr_u64("idx", index as u64)
                    .attr_u64("items", chunk.len() as u64),
            );
        }
        match reply {
            Response::Batch {
                results: chunk_results,
                hits: chunk_hits,
                misses: chunk_misses,
            } => {
                results.extend(chunk_results);
                hits += chunk_hits;
                misses += chunk_misses;
            }
            // An error on any chunk (including ShuttingDown mid-batch)
            // becomes the whole batch's reply.
            other => return other,
        }
    }
    Response::Batch {
        results,
        hits,
        misses,
    }
}

/// Queues one job and blocks the connection handler (not the worker
/// pool) until its reply is ready; full and closed queues answer
/// immediately unless `wait_for_slot` marks this a follow-up chunk of
/// an already-accepted split batch.
fn enqueue_and_wait(
    shared: &Arc<Shared>,
    kind: JobKind,
    wait_for_slot: bool,
    log: &mut ReqLog,
    ctx: Option<SpanCtx>,
) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Error(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    let (tx, rx) = mpsc::channel();
    let timing = Arc::new(JobTiming::default());
    let job = Job {
        kind,
        enqueued: Instant::now(),
        reply: tx,
        timing: Arc::clone(&timing),
        trace: ctx,
    };
    let pushed = if wait_for_slot {
        shared.queue.push_wait(job)
    } else {
        shared.queue.push(job)
    };
    match pushed {
        Ok(()) => match rx.recv() {
            Ok(response) => {
                // Accumulated (not assigned): a split batch passes the
                // same log through every chunk.
                log.queue_wait_ns += timing.queue_wait_ns.load(Ordering::Relaxed);
                log.exec_ns += timing.exec_ns.load(Ordering::Relaxed);
                response
            }
            Err(_) => Response::Error(WireError::new(
                ErrorCode::Internal,
                "worker dropped the job",
            )),
        },
        Err(PushError::Full) => {
            shared.counters.rejects.fetch_add(1, Ordering::Relaxed);
            shared.telemetry.reject();
            Response::Error(WireError::new(
                ErrorCode::Busy,
                format!(
                    "job queue is at its depth limit ({})",
                    shared.queue.capacity
                ),
            ))
        }
        Err(PushError::Closed) => Response::Error(WireError::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rejects_beyond_capacity_and_drains_after_close() {
        let q = JobQueue::new(2);
        let (tx, _rx) = mpsc::channel();
        let job = |tx: &mpsc::Sender<Response>| Job {
            kind: JobKind::One(ExploreSpec::new("bfdn", "comb", 10, 1, 0)),
            enqueued: Instant::now(),
            reply: tx.clone(),
            timing: Arc::new(JobTiming::default()),
            trace: None,
        };
        assert!(q.push(job(&tx)).is_ok());
        assert!(q.push(job(&tx)).is_ok());
        assert!(matches!(q.push(job(&tx)), Err(PushError::Full)));
        assert_eq!(q.depth(), 2);
        q.close();
        assert!(matches!(q.push(job(&tx)), Err(PushError::Closed)));
        // Both accepted jobs survive the close.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn closed_empty_queue_unblocks_waiting_workers() {
        let q = Arc::new(JobQueue::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop().is_none())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap(), "pop returns None after close");
    }
}
