//! Cross-process trace stitching: joins per-process span rings into one
//! fleet-wide span tree.
//!
//! A traced request that crosses the cluster leaves span fragments in
//! every process it touched — the proxy records a `proxy_forward` span,
//! the home shard records its queue/execute spans, and a peer cache-fill
//! adds a `peer_fill` span on the requesting shard plus a full request
//! tree on the peer. Each fragment lives in its own
//! [`bfdn_obs::SpanRecorder`] with process-local span ids and a
//! process-local clock epoch, so the raw fragments can neither be merged
//! (ids collide) nor ordered (epochs differ).
//!
//! [`stitch`] rebuilds the single logical tree:
//!
//! 1. span ids are remapped into one shared namespace (sequential, so
//!    the output is deterministic given input order);
//! 2. every span gains a `shard` attribute naming its origin process;
//! 3. processes are joined where one process's **bridge span** names
//!    another process as its callee — a `proxy_forward` span whose
//!    `target` attribute equals the callee's process label, or a
//!    `peer_fill` span whose `peer` attribute does. The callee's root
//!    spans are re-parented under the bridge span;
//! 4. clocks are aligned along the same bridges: a callee's earliest
//!    span is shifted to its bridge span's (already aligned) start, so
//!    remote work appears inside the network round-trip window that
//!    caused it. Processes nobody bridges to keep their own timeline.
//!
//! [`to_chrome_json`] renders the stitched payload as a Chrome
//! trace-event document with one `pid` per origin process, so Perfetto
//! shows the proxy hop, the home shard's queue/execute phases, and the
//! peer-fill round trip on separate tracks of one timeline.

use crate::protocol::{SpanPayload, TracePayload};
use bfdn_obs::json::{escape_into, JsonObject};
use std::collections::HashMap;

/// The span attribute naming the process a span came from, added to
/// every stitched span.
pub const SHARD_ATTR: &str = "shard";

/// Bridge span names and the attribute that names their callee process:
/// `proxy_forward{target=...}` (proxy → shard) and `peer_fill{peer=...}`
/// (shard → peer shard). `shard` itself is reserved for the origin
/// attribute stitching adds, so a bridge's callee attr never collides.
const BRIDGES: [(&str, &str); 2] = [("proxy_forward", "target"), ("peer_fill", "peer")];

/// One process's contribution to a stitched trace: the spans its ring
/// held for the trace id, plus the ring's lifetime counters.
#[derive(Clone, Debug, Default)]
pub struct ProcessSpans {
    /// Process label — the shard's `host:port` as the cluster addresses
    /// it, or `"proxy"` for the cluster proxy. Bridge spans name their
    /// callee by exactly this label.
    pub process: String,
    /// The spans this process recorded for the trace.
    pub spans: Vec<SpanPayload>,
    /// Spans the process's ring accepted over its lifetime.
    pub recorded: u64,
    /// Spans the process's ring lost; `0` on every contributor
    /// certifies the stitched tree is complete.
    pub dropped: u64,
}

impl ProcessSpans {
    /// Wraps one process's [`TracePayload`] under a process label.
    pub fn from_payload(process: &str, payload: TracePayload) -> Self {
        ProcessSpans {
            process: process.to_string(),
            spans: payload.spans,
            recorded: payload.recorded,
            dropped: payload.dropped,
        }
    }
}

/// Returns the callee process label if `span` is a bridge span
/// (`proxy_forward` / `peer_fill`).
fn bridge_target(span: &SpanPayload) -> Option<&str> {
    BRIDGES
        .iter()
        .find(|(name, _)| span.name == *name)
        .and_then(|(_, attr)| {
            span.attrs
                .iter()
                .find(|(key, _)| key == attr)
                .map(|(_, value)| value.as_str())
        })
}

/// Stitches per-process span fragments into one [`TracePayload`]: ids
/// remapped into a shared namespace, a `shard` attribute on every span,
/// cross-process edges re-parented under their bridge spans, and clocks
/// aligned along those edges. `recorded` / `dropped` are summed across
/// contributors, so `dropped == 0` on the result certifies completeness.
///
/// Processes with no spans contribute only their counters. Input order
/// fixes the id remapping, so stitching is deterministic.
pub fn stitch(processes: &[ProcessSpans]) -> TracePayload {
    let recorded = processes.iter().map(|p| p.recorded).sum();
    let dropped = processes.iter().map(|p| p.dropped).sum();

    // Pass 1: remap every span id into one sequential namespace.
    let mut next_id: u64 = 0;
    let maps: Vec<HashMap<u64, u64>> = processes
        .iter()
        .map(|p| {
            p.spans
                .iter()
                .map(|s| {
                    next_id += 1;
                    (s.span, next_id)
                })
                .collect()
        })
        .collect();

    // Pass 2: find each process's bridge — the earliest span in another
    // process that names it as callee — keyed by (caller index, span
    // index within the caller).
    let bridge_of: Vec<Option<(usize, usize)>> = processes
        .iter()
        .map(|callee| {
            processes
                .iter()
                .enumerate()
                .flat_map(|(ci, caller)| {
                    caller.spans.iter().enumerate().filter_map(move |(si, s)| {
                        (!std::ptr::eq(caller, callee)
                            && bridge_target(s) == Some(callee.process.as_str()))
                        .then_some((s.start_ns, ci, si))
                    })
                })
                .min()
                .map(|(_, ci, si)| (ci, si))
        })
        .collect();

    // Pass 3: align clocks along bridge edges, walking from the root
    // processes (nobody bridges to them) outward. `offset[i]` is added
    // to every start time of process `i`; a cycle (malformed input)
    // leaves the remainder unaligned at offset 0.
    let mut offset: Vec<Option<i128>> = processes
        .iter()
        .enumerate()
        .map(|(i, _)| bridge_of[i].is_none().then_some(0))
        .collect();
    loop {
        let mut progressed = false;
        for i in 0..processes.len() {
            if offset[i].is_some() {
                continue;
            }
            let (ci, si) = bridge_of[i].expect("non-root process has a bridge");
            if let Some(caller_offset) = offset[ci] {
                let bridge_start = processes[ci].spans[si].start_ns as i128 + caller_offset;
                let earliest = processes[i]
                    .spans
                    .iter()
                    .map(|s| s.start_ns)
                    .min()
                    .unwrap_or(0);
                offset[i] = Some(bridge_start - earliest as i128);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Pass 4: emit — remapped ids, shifted clocks, re-parented roots,
    // `shard` attribute on every span.
    let mut spans = Vec::new();
    for (pi, p) in processes.iter().enumerate() {
        let shift = offset[pi].unwrap_or(0);
        let root_parent = bridge_of[pi]
            .map(|(ci, si)| maps[ci][&processes[ci].spans[si].span])
            .unwrap_or(0);
        for s in &p.spans {
            let mut out = s.clone();
            out.span = maps[pi][&s.span];
            // A parent outside the map (0, or a span lost to ring
            // wrap-around) makes this span a process root.
            out.parent = maps[pi].get(&s.parent).copied().unwrap_or(root_parent);
            out.start_ns = (s.start_ns as i128 + shift).max(0) as u64;
            if !out.attrs.iter().any(|(k, _)| k == SHARD_ATTR) {
                out.attrs.push((SHARD_ATTR.to_string(), p.process.clone()));
            }
            spans.push(out);
        }
    }
    spans.sort_by_key(|s| (s.start_ns, s.span));
    TracePayload {
        spans,
        recorded,
        dropped,
    }
}

/// Renders a stitched payload as a Chrome trace-event JSON document
/// (Perfetto, `chrome://tracing`).
///
/// Each distinct `shard` attribute value becomes its own `pid` with a
/// `process_name` metadata record, so every process's spans land on a
/// separate track of the shared, already-aligned timeline. Spans nest
/// within a track by their timestamps, Chrome's native flame layout.
pub fn to_chrome_json(payload: &TracePayload) -> String {
    let mut pids: Vec<&str> = Vec::new();
    let mut events = Vec::new();
    for span in &payload.spans {
        let process = span
            .attrs
            .iter()
            .find(|(k, _)| k == SHARD_ATTR)
            .map(|(_, v)| v.as_str())
            .unwrap_or("unknown");
        let pid = match pids.iter().position(|p| *p == process) {
            Some(i) => i + 1,
            None => {
                pids.push(process);
                let mut name_args = String::from("{");
                escape_into(&mut name_args, "name");
                name_args.push(':');
                escape_into(&mut name_args, process);
                name_args.push('}');
                let mut meta = JsonObject::new();
                meta.str("name", "process_name")
                    .str("ph", "M")
                    .u64("pid", pids.len() as u64)
                    .u64("tid", 0)
                    .raw("args", &name_args);
                events.push(meta.finish());
                pids.len()
            }
        };
        let mut args = String::from("{");
        escape_into(&mut args, "trace");
        args.push(':');
        escape_into(&mut args, &format!("{:016x}", span.trace));
        args.push(',');
        escape_into(&mut args, "span");
        args.push(':');
        escape_into(&mut args, &format!("{:016x}", span.span));
        if span.parent != 0 {
            args.push(',');
            escape_into(&mut args, "parent");
            args.push(':');
            escape_into(&mut args, &format!("{:016x}", span.parent));
        }
        for (key, value) in &span.attrs {
            args.push(',');
            escape_into(&mut args, key);
            args.push(':');
            escape_into(&mut args, value);
        }
        args.push('}');
        let mut o = JsonObject::new();
        o.str("name", &span.name)
            .str("cat", "bfdn")
            .str("ph", "X")
            .f64("ts", span.start_ns as f64 / 1_000.0)
            .f64("dur", span.duration_ns as f64 / 1_000.0)
            .u64("pid", pid as u64)
            .u64("tid", 1)
            .raw("args", &args);
        events.push(o.finish());
    }
    format!("[\n{}\n]\n", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start: u64, dur: u64) -> SpanPayload {
        SpanPayload {
            trace: 0xabcd,
            span: id,
            parent,
            name: name.to_string(),
            start_ns: start,
            duration_ns: dur,
            attrs: Vec::new(),
        }
    }

    fn with_attr(mut s: SpanPayload, key: &str, value: &str) -> SpanPayload {
        s.attrs.push((key.to_string(), value.to_string()));
        s
    }

    fn proc(label: &str, spans: Vec<SpanPayload>) -> ProcessSpans {
        ProcessSpans {
            process: label.to_string(),
            spans,
            recorded: 0,
            dropped: 0,
        }
    }

    #[test]
    fn single_process_keeps_structure_and_gains_shard_attr() {
        let p = proc(
            "127.0.0.1:4270",
            vec![
                span(7, 0, "request", 100, 50),
                span(9, 7, "execute", 110, 30),
            ],
        );
        let out = stitch(&[p]);
        assert_eq!(out.spans.len(), 2);
        let root = &out.spans[0];
        let child = &out.spans[1];
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.span);
        assert_eq!(root.start_ns, 100, "root process keeps its own clock");
        assert!(root
            .attrs
            .iter()
            .any(|(k, v)| k == "shard" && v == "127.0.0.1:4270"));
    }

    #[test]
    fn proxy_and_shard_become_one_tree_on_one_clock() {
        // Proxy: request(10..90) wrapping proxy_forward(20..80) naming
        // the shard. Shard: its own epoch (starts near 0), request span
        // with an execute child.
        let proxy = proc(
            "proxy",
            vec![
                span(1, 0, "request", 10_000, 80_000),
                with_attr(
                    span(2, 1, "proxy_forward", 20_000, 60_000),
                    "target",
                    "127.0.0.1:4280",
                ),
            ],
        );
        let shard = proc(
            "127.0.0.1:4280",
            vec![
                span(1, 0, "request", 500, 40_000),
                span(2, 1, "execute", 900, 30_000),
            ],
        );
        let out = stitch(&[proxy, shard]);
        assert_eq!(out.spans.len(), 4);
        // Exactly one root overall: the proxy's request span.
        let roots: Vec<_> = out.spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "request");
        let forward = out
            .spans
            .iter()
            .find(|s| s.name == "proxy_forward")
            .unwrap();
        let shard_root = out
            .spans
            .iter()
            .find(|s| s.name == "request" && s.parent != 0 && s.parent != forward.span)
            .is_none();
        assert!(shard_root, "shard request hangs under proxy_forward");
        let remote_request = out
            .spans
            .iter()
            .find(|s| s.name == "request" && s.parent == forward.span)
            .unwrap();
        // Clock aligned: the shard's earliest span starts at the
        // forward span's start, inside the proxy's window.
        assert_eq!(remote_request.start_ns, forward.start_ns);
        let execute = out.spans.iter().find(|s| s.name == "execute").unwrap();
        assert_eq!(execute.parent, remote_request.span);
        assert_eq!(execute.start_ns, forward.start_ns + 400);
    }

    #[test]
    fn peer_fill_chain_aligns_across_three_processes() {
        let proxy = proc(
            "proxy",
            vec![with_attr(
                span(1, 0, "proxy_forward", 1_000_000, 500_000),
                "target",
                "a:1",
            )],
        );
        let home = proc(
            "a:1",
            vec![
                span(1, 0, "request", 50, 400_000),
                with_attr(span(2, 1, "peer_fill", 100, 200_000), "peer", "b:2"),
            ],
        );
        let peer = proc("b:2", vec![span(1, 0, "request", 9_000, 100_000)]);
        let out = stitch(&[proxy, home, peer]);
        let fill = out.spans.iter().find(|s| s.name == "peer_fill").unwrap();
        // Home aligned under the proxy, peer aligned under home's fill.
        assert_eq!(fill.start_ns, 1_000_000 + 50);
        let peer_req = out.spans.iter().find(|s| s.parent == fill.span).unwrap();
        assert_eq!(peer_req.start_ns, fill.start_ns);
        assert!(peer_req
            .attrs
            .iter()
            .any(|(k, v)| k == "shard" && v == "b:2"));
        // Every span is reachable from the single proxy root.
        assert_eq!(out.spans.iter().filter(|s| s.parent == 0).count(), 1);
    }

    #[test]
    fn colliding_span_ids_are_separated_and_counters_summed() {
        let mut a = proc("a:1", vec![span(1, 0, "request", 0, 10)]);
        a.recorded = 3;
        a.dropped = 1;
        let mut b = proc("b:2", vec![span(1, 0, "request", 0, 10)]);
        b.recorded = 5;
        b.dropped = 0;
        let out = stitch(&[a, b]);
        assert_eq!(out.spans.len(), 2);
        assert_ne!(out.spans[0].span, out.spans[1].span);
        assert_eq!(out.recorded, 8);
        assert_eq!(out.dropped, 1);
    }

    #[test]
    fn orphaned_parent_falls_back_to_the_bridge() {
        // The shard's ring dropped the request root; its surviving child
        // points at a span id the payload no longer holds. Stitching
        // re-homes it under the bridge instead of leaving a dangling id.
        let proxy = proc(
            "proxy",
            vec![with_attr(
                span(1, 0, "proxy_forward", 100, 50),
                "target",
                "a:1",
            )],
        );
        let shard = proc("a:1", vec![span(9, 4, "execute", 10, 5)]);
        let out = stitch(&[proxy, shard]);
        let execute = out.spans.iter().find(|s| s.name == "execute").unwrap();
        let forward = out
            .spans
            .iter()
            .find(|s| s.name == "proxy_forward")
            .unwrap();
        assert_eq!(execute.parent, forward.span);
    }

    #[test]
    fn chrome_export_gives_each_process_its_own_pid() {
        let proxy = proc(
            "proxy",
            vec![with_attr(
                span(1, 0, "proxy_forward", 100, 50),
                "target",
                "a:1",
            )],
        );
        let shard = proc("a:1", vec![span(1, 0, "request", 0, 40)]);
        let json = to_chrome_json(&stitch(&[proxy, shard]));
        // Structure: one array, metadata record per process, distinct pids.
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.matches(r#""name":"process_name""#).count() == 2);
        assert!(json.contains(r#""pid":1"#));
        assert!(json.contains(r#""pid":2"#));
        assert!(json.contains(r#""ph":"X""#));
        // Parses with the service's own JSON reader.
        let parsed = crate::jsonval::Json::parse(&json).expect("chrome export is valid JSON");
        let events = parsed.as_arr().expect("top level is an array");
        assert_eq!(events.len(), 4);
    }
}
