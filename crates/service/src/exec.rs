//! Request execution: turning a validated [`ExploreSpec`] into an
//! [`ExploreResult`] plus a per-request [`RunManifest`].
//!
//! This is the single algorithm/family registry of the workspace — the
//! bench CLI delegates its `--algo` construction here, so the daemon and
//! the local harness can never drift apart. Runs are fully deterministic
//! in the spec (seeded instance generation, deterministic explorers),
//! which is what makes the service's content-addressed cache sound:
//! replaying a spec is guaranteed to regenerate the byte-identical
//! payload.

use crate::protocol::{ExploreResult, ExploreSpec, MetricsPayload, WireError};
use bfdn::{Bfdn, BfdnL, WriteReadBfdn};
use bfdn_baselines::{Cte, OnlineDfs};
use bfdn_obs::{BoundConfig, BoundTracker, Event, EventSink, NullSink, Phases, RunManifest};
use bfdn_sim::{Explorer, Simulator};
use bfdn_trees::generators::Family;
use rand::SeedableRng;

/// The accepted algorithm names, shared with the bench CLI.
pub const ALGORITHMS: [&str; 8] = [
    "bfdn",
    "bfdn-robust",
    "bfdn-shortcut",
    "write-read",
    "bfdn-l2",
    "bfdn-l3",
    "cte",
    "dfs",
];

/// Largest `n` a request may ask for — one resident instance must never
/// exhaust the server.
pub const MAX_N: u64 = 2_000_000;

/// Largest `k` a request may ask for.
pub const MAX_K: u64 = 65_536;

/// Largest `options.delay_ms` honoured by [`run_spec`].
pub const MAX_DELAY_MS: u64 = 10_000;

/// Instantiates the explorer named `algo` for `k` robots, or `None` for
/// an unknown name. The intra-round thread budget comes from
/// `BFDN_ROUND_THREADS` (default 1); see
/// [`build_explorer_with_threads`] for an explicit budget.
pub fn build_explorer(algo: &str, k: usize) -> Option<Box<dyn Explorer>> {
    build_explorer_with_threads(algo, k, bfdn_sim::parallel::round_threads())
}

/// [`build_explorer`] with an explicit intra-round thread budget. The
/// budget never changes what an explorer computes — traces and metrics
/// are byte-identical at any value — so it is deliberately *not* part
/// of any result cache key.
pub fn build_explorer_with_threads(
    algo: &str,
    k: usize,
    threads: usize,
) -> Option<Box<dyn Explorer>> {
    Some(match algo {
        "bfdn" => Box::new(Bfdn::builder(k).round_threads(threads).build()),
        "bfdn-robust" => Box::new(Bfdn::builder(k).robust(true).round_threads(threads).build()),
        "bfdn-shortcut" => Box::new(
            Bfdn::builder(k)
                .shortcut(true)
                .round_threads(threads)
                .build(),
        ),
        "write-read" => Box::new(WriteReadBfdn::new(k).with_round_threads(threads)),
        "bfdn-l2" => Box::new(BfdnL::new(k, 2).with_round_threads(threads)),
        "bfdn-l3" => Box::new(BfdnL::new(k, 3).with_round_threads(threads)),
        "cte" => Box::new(Cte::new(k)),
        "dfs" => Box::new(OnlineDfs),
        _ => return None,
    })
}

/// Resolves a workload family by its report name.
pub fn find_family(name: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == name)
}

/// Checks a spec against the registry and the server's resource limits
/// without running anything, so callers can reject garbage before it
/// occupies a queue slot.
///
/// # Errors
///
/// Returns a `bad_request` [`WireError`] naming the offending field.
pub fn validate(spec: &ExploreSpec) -> Result<(), WireError> {
    if !ALGORITHMS.contains(&spec.algorithm.as_str()) {
        return Err(WireError::bad_request(format!(
            "unknown algorithm `{}` (one of: {})",
            spec.algorithm,
            ALGORITHMS.join(", ")
        )));
    }
    if find_family(&spec.family).is_none() {
        return Err(WireError::bad_request(format!(
            "unknown family `{}` (one of: {})",
            spec.family,
            Family::ALL.map(|f| f.name()).join(", ")
        )));
    }
    if spec.k == 0 {
        return Err(WireError::bad_request("k must be at least 1"));
    }
    if spec.k > MAX_K {
        return Err(WireError::bad_request(format!("k exceeds the {MAX_K} cap")));
    }
    if spec.n > MAX_N {
        return Err(WireError::bad_request(format!("n exceeds the {MAX_N} cap")));
    }
    if spec.options.delay_ms > MAX_DELAY_MS {
        return Err(WireError::bad_request(format!(
            "delay_ms exceeds the {MAX_DELAY_MS} cap"
        )));
    }
    Ok(())
}

/// Forwards every simulator event to the [`BoundTracker`] *and* an
/// external observer, so one run can feed the margin checks and a
/// request's span tree at the same time.
struct Tee<'a> {
    tracker: BoundTracker,
    observer: &'a mut dyn EventSink,
}

impl EventSink for Tee<'_> {
    fn emit(&mut self, event: &Event) {
        self.tracker.emit(event);
        self.observer.emit(event);
    }

    fn enabled(&self) -> bool {
        // The tracker always listens (it is what checks the bounds), so
        // the tee is enabled regardless of the observer.
        true
    }
}

/// Runs one validated spec to completion.
///
/// The run is observed end-to-end: phases (`build_tree`, `explore`) are
/// timed, a [`BoundTracker`] follows the Theorem 1 / Lemma 2 margins
/// live, and the returned [`RunManifest`] records instance shape,
/// counters, final margins and per-depth reanchors — one manifest per
/// served job, mirroring what the CLI writes for `--manifest-out`.
///
/// # Errors
///
/// Returns a `bad_request` error from [`validate`], or an `internal`
/// error if the simulation itself fails (round limit, invalid move).
pub fn run_spec(spec: &ExploreSpec) -> Result<(ExploreResult, RunManifest), WireError> {
    run_spec_observed(spec, &mut NullSink)
}

/// [`run_spec`] with an explicit intra-round thread budget for the
/// explorer (see [`build_explorer_with_threads`]); the result is
/// byte-identical at any value.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_spec_with_threads(
    spec: &ExploreSpec,
    threads: usize,
) -> Result<(ExploreResult, RunManifest), WireError> {
    run_spec_observed_with_threads(spec, &mut NullSink, threads)
}

/// [`run_spec`] with an external observer: every simulator event is
/// forwarded to `observer` alongside the bound tracker, and the
/// per-phase wall clocks (`build_tree`, `explore`, the simulator's
/// `sim_rounds`) are re-emitted as [`Event::PhaseTimer`]s once the run
/// finishes — the server's span recorder turns them into child spans of
/// the request's `run_spec` span.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_spec_observed(
    spec: &ExploreSpec,
    observer: &mut dyn EventSink,
) -> Result<(ExploreResult, RunManifest), WireError> {
    run_spec_observed_with_threads(spec, observer, bfdn_sim::parallel::round_threads())
}

/// [`run_spec_observed`] with an explicit intra-round thread budget.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_spec_observed_with_threads(
    spec: &ExploreSpec,
    observer: &mut dyn EventSink,
    threads: usize,
) -> Result<(ExploreResult, RunManifest), WireError> {
    validate(spec)?;
    if spec.options.delay_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(spec.options.delay_ms));
    }
    let family = find_family(&spec.family).expect("validated family");
    let k = spec.k as usize;

    let mut phases = Phases::default();
    let tree = phases.time("build_tree", || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
        family.instance(spec.n as usize, &mut rng)
    });
    let bound = bfdn::theorem1_bound(tree.len(), tree.depth(), k, tree.max_degree());
    let tracker = BoundTracker::new(BoundConfig {
        rounds: Some(bound),
        reanchors_per_depth: Some(bfdn::lemma2_bound(k, tree.max_degree())),
        urn_steps: None,
    });

    let mut explorer =
        build_explorer_with_threads(&spec.algorithm, k, threads).expect("validated algorithm");
    let mut sim = Simulator::new(&tree, k).with_sink(Tee { tracker, observer });
    let outcome = phases
        .time("explore", || sim.run(explorer.as_mut()))
        .map_err(|e| {
            WireError::new(
                crate::protocol::ErrorCode::Internal,
                format!("simulation failed: {e}"),
            )
        })?;
    let tee = sim.into_sink();
    let tracker = tee.tracker;
    phases.emit(tee.observer);

    let mut manifest = RunManifest::new(&spec.algorithm, &spec.family);
    manifest.seed = spec.seed;
    manifest.n = tree.len() as u64;
    manifest.depth = tree.depth() as u64;
    manifest.max_degree = tree.max_degree() as u64;
    manifest.k = spec.k;
    manifest.set_phases(&phases);
    manifest
        .metric("rounds", outcome.rounds)
        .metric("moves", outcome.metrics.moves)
        .metric("idle", outcome.metrics.idle)
        .metric("stalled", outcome.metrics.stalled)
        .metric("allowed_moves", outcome.metrics.allowed_moves)
        .metric("edges_discovered", outcome.metrics.edges_discovered)
        .metric("edge_events", outcome.metrics.edge_events);
    if let Some(sample) = tracker.current() {
        if let Some(v) = sample.rounds {
            manifest.margin("theorem1_rounds", v);
        }
        if let Some(v) = sample.reanchors {
            manifest.margin("lemma2_reanchors", v);
        }
    }
    manifest.reanchors_by_depth = tracker.reanchors_by_depth().to_vec();

    let result = ExploreResult {
        spec: spec.clone(),
        cached: false,
        nodes: tree.len() as u64,
        depth: tree.depth() as u64,
        max_degree: tree.max_degree() as u64,
        metrics: MetricsPayload::from_metrics(outcome.rounds, &outcome.metrics),
        bound,
        margin: bound - outcome.rounds as f64,
        manifest: spec.options.manifest.then(|| manifest.to_json()),
    };
    Ok((result, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    #[test]
    fn every_algorithm_is_buildable_and_runs() {
        for algo in ALGORITHMS {
            assert!(build_explorer(algo, 4).is_some(), "{algo}");
            let spec = ExploreSpec::new(algo, "comb", 60, 4, 1);
            let (result, manifest) = run_spec(&spec).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(result.metrics.rounds > 0, "{algo}");
            assert_eq!(result.metrics.edges_discovered, result.nodes - 1, "{algo}");
            assert!(result.margin >= 0.0, "{algo}: Theorem 1 envelope violated");
            assert_eq!(manifest.algorithm, algo);
            assert_eq!(
                manifest.metrics[0],
                ("rounds".into(), result.metrics.rounds)
            );
        }
        assert!(build_explorer("quantum", 4).is_none());
    }

    #[test]
    fn results_are_deterministic_in_the_spec() {
        let spec = ExploreSpec::new("bfdn", "random-recursive", 300, 8, 42);
        let (a, _) = run_spec(&spec).unwrap();
        let (b, _) = run_spec(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.payload_json(), b.payload_json());
        let mut other_seed = spec.clone();
        other_seed.seed = 43;
        let (c, _) = run_spec(&other_seed).unwrap();
        assert_ne!(a.metrics, c.metrics, "different seed, different run");
    }

    #[test]
    fn round_thread_budget_never_changes_the_payload() {
        // The cache stores payloads keyed without the thread budget;
        // this is the invariant that makes that sound.
        for algo in ["bfdn", "bfdn-shortcut", "write-read", "bfdn-l2"] {
            let spec = ExploreSpec::new(algo, "random-recursive", 400, 16, 9);
            let (seq, _) = run_spec_with_threads(&spec, 1).unwrap();
            for threads in [2usize, 4] {
                let (par, _) = run_spec_with_threads(&spec, threads).unwrap();
                assert_eq!(seq, par, "{algo} threads={threads}");
                assert_eq!(seq.payload_json(), par.payload_json(), "{algo}");
            }
        }
    }

    #[test]
    fn validation_rejects_out_of_registry_requests() {
        let cases = [
            ExploreSpec::new("quantum", "comb", 100, 4, 0),
            ExploreSpec::new("bfdn", "nope", 100, 4, 0),
            ExploreSpec::new("bfdn", "comb", 100, 0, 0),
            ExploreSpec::new("bfdn", "comb", MAX_N + 1, 4, 0),
            ExploreSpec::new("bfdn", "comb", 100, MAX_K + 1, 0),
        ];
        for spec in cases {
            let err = validate(&spec).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{spec:?}");
            assert!(run_spec(&spec).is_err());
        }
        let mut slow = ExploreSpec::new("bfdn", "comb", 100, 4, 0);
        slow.options.delay_ms = MAX_DELAY_MS + 1;
        assert!(validate(&slow).is_err());
    }

    #[test]
    fn observed_runs_emit_phase_timers_for_span_building() {
        use bfdn_obs::MemorySink;
        let spec = ExploreSpec::new("bfdn", "comb", 60, 4, 1);
        let mut sink = MemorySink::default();
        let (observed, _) = run_spec_observed(&spec, &mut sink).unwrap();
        let (plain, _) = run_spec(&spec).unwrap();
        assert_eq!(observed, plain, "observation must not perturb the run");
        let phases: Vec<&str> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PhaseTimer { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&"build_tree"), "{phases:?}");
        assert!(phases.contains(&"explore"), "{phases:?}");
        assert!(phases.contains(&"sim_rounds"), "{phases:?}");
    }

    #[test]
    fn manifest_travels_inline_when_requested() {
        let mut spec = ExploreSpec::new("bfdn", "comb", 80, 4, 7);
        spec.options.manifest = true;
        let (result, manifest) = run_spec(&spec).unwrap();
        let inline = result.manifest.expect("manifest requested");
        assert_eq!(inline, manifest.to_json());
        assert!(inline.contains(r#""algorithm":"bfdn""#));
        assert!(inline.contains(r#""phases":{"build_tree":"#));
        assert!(inline.contains(r#""margins":{"theorem1_rounds":"#));
    }
}
