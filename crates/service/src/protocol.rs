//! The wire protocol of the simulation service: versioned JSON documents
//! over length-prefixed TCP frames.
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON; [`MAX_FRAME_LEN`] caps the payload so a
//! hostile peer cannot make the server allocate unboundedly. Every
//! document carries the protocol version (`"v"`) and a `"type"` tag;
//! requests are decoded by [`Request::from_json`], responses by
//! [`Response::from_json`], and both serialize through the workspace's
//! hand-rolled JSON writer ([`bfdn_obs::json`]) — the serde derives
//! behind the `serde` feature wire the types into serde-aware callers
//! without pulling a format crate onto the wire path.
//!
//! Documents may additionally carry an optional top-level `"trace"`
//! field — a nonzero trace id in 16-digit hex — propagated outside the
//! typed [`Request`]/[`Response`] enums by
//! [`Request::to_json_traced`]/[`Request::from_json_traced`] (and the
//! `Response` twins). The server echoes a request's trace id in its
//! reply and threads it through batch-split sub-jobs, so one traced
//! request yields one span tree; [`Request::Trace`] fetches the
//! server's recent-span ring ([`TracePayload`]) for live introspection.
//! The trace id deliberately stays out of [`ExploreSpec::canonical`]:
//! tracing must never fragment the result cache.
//!
//! Errors are structured ([`WireError`] with an [`ErrorCode`]), so
//! clients can distinguish a malformed request from backpressure
//! ([`ErrorCode::Busy`]) or a draining server.

use crate::jsonval::{Json, JsonError};
use bfdn_obs::json::{escape_into, float_into, JsonObject};
use bfdn_obs::tracing::{hex16, parse_hex16, SpanRecord};
use bfdn_sim::Metrics;
use std::fmt;
use std::io::{self, Read, Write};

/// Version tag carried by every request and response document.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on a frame payload (1 MiB), enforced on both read and write.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Per-request options of an [`ExploreSpec`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExploreOptions {
    /// Return the run manifest JSON inline with the result.
    pub manifest: bool,
    /// Artificial pre-execution delay in milliseconds (traffic shaping
    /// and backpressure testing; capped by the server).
    pub delay_ms: u64,
}

impl ExploreOptions {
    fn is_default(&self) -> bool {
        *self == ExploreOptions::default()
    }
}

/// One simulation request: run `algorithm` with `k` robots on an
/// instance of `family` with roughly `n` nodes generated from `seed`.
///
/// Runs are fully deterministic in these fields, which is what makes
/// results content-addressable: [`ExploreSpec::canonical`] is the cache
/// key.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExploreSpec {
    /// Algorithm name (see [`crate::exec::ALGORITHMS`]).
    pub algorithm: String,
    /// Workload family name (a [`bfdn_trees::generators::Family`] name).
    pub family: String,
    /// Approximate node count.
    pub n: u64,
    /// Number of robots.
    pub k: u64,
    /// RNG seed for instance generation.
    pub seed: u64,
    /// Per-request options.
    pub options: ExploreOptions,
}

impl ExploreSpec {
    /// A spec with default options.
    pub fn new(
        algorithm: impl Into<String>,
        family: impl Into<String>,
        n: u64,
        k: u64,
        seed: u64,
    ) -> Self {
        ExploreSpec {
            algorithm: algorithm.into(),
            family: family.into(),
            n,
            k,
            seed,
            options: ExploreOptions::default(),
        }
    }

    /// The canonical content address of this request: every field that
    /// influences the reply, in a fixed order, prefixed with the
    /// protocol version so cache entries never survive a wire-format
    /// revision.
    pub fn canonical(&self) -> String {
        format!(
            "v{}|algo={}|family={}|n={}|k={}|seed={}|manifest={}|delay={}",
            PROTOCOL_VERSION,
            self.algorithm,
            self.family,
            self.n,
            self.k,
            self.seed,
            self.options.manifest,
            self.options.delay_ms,
        )
    }

    /// FNV-1a hash of [`ExploreSpec::canonical`] — the content address
    /// used for cache sharding and manifest file names.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    fn json_into(&self, o: &mut JsonObject) {
        o.str("algorithm", &self.algorithm)
            .str("family", &self.family)
            .u64("n", self.n)
            .u64("k", self.k)
            .u64("seed", self.seed);
        if !self.options.is_default() {
            let mut opts = JsonObject::new();
            opts.bool("manifest", self.options.manifest)
                .u64("delay_ms", self.options.delay_ms);
            o.raw("options", &opts.finish());
        }
    }

    fn to_json_value(&self) -> String {
        let mut o = JsonObject::new();
        self.json_into(&mut o);
        o.finish()
    }

    fn from_value(v: &Json) -> Result<Self, WireError> {
        let options = match v.get("options") {
            None => ExploreOptions::default(),
            Some(opts) => ExploreOptions {
                manifest: opts
                    .get("manifest")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                delay_ms: opts.get("delay_ms").and_then(Json::as_u64).unwrap_or(0),
            },
        };
        Ok(ExploreSpec {
            algorithm: require_str(v, "algorithm")?.to_string(),
            family: require_str(v, "family")?.to_string(),
            n: require_u64(v, "n")?,
            k: require_u64(v, "k")?,
            seed: require_u64(v, "seed")?,
            options,
        })
    }
}

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Request {
    /// Run (or serve from cache) one simulation.
    Explore(ExploreSpec),
    /// Run many simulations as one queued job (fanned out over the
    /// worker substrate on the server).
    Batch(Vec<ExploreSpec>),
    /// Server counters: requests, hits/misses, queue depth, rejects,
    /// per-phase latency totals.
    Status,
    /// Result-cache counters and occupancy.
    CacheStats,
    /// The full telemetry registry rendered as Prometheus text
    /// exposition (latency histograms, cache counters, bound-margin
    /// aggregates) — the wire-protocol twin of the `--metrics-addr`
    /// HTTP endpoint.
    Metrics,
    /// The server's recent-span ring ([`TracePayload`]). When the
    /// document carries a `trace` envelope id, only that trace's spans
    /// are returned; the request itself is never traced.
    Trace,
    /// A cluster peer asking whether this shard already holds the
    /// result for a spec. Answered purely from the cache — a
    /// [`Response::Result`] on a hit, [`Response::PeerMiss`] otherwise —
    /// and never enqueued, so peer probes can neither execute work nor
    /// recurse across the ring.
    PeerFill(ExploreSpec),
    /// Stop accepting work, drain in-flight jobs, and exit.
    Shutdown,
}

impl Request {
    /// Serializes the request document without a trace id.
    pub fn to_json(&self) -> String {
        self.to_json_traced(None)
    }

    /// Serializes the request document, attaching `trace` as the
    /// envelope trace id when given.
    pub fn to_json_traced(&self, trace: Option<u64>) -> String {
        let mut o = JsonObject::new();
        o.u64("v", PROTOCOL_VERSION);
        if let Some(id) = trace {
            o.str("trace", &hex16(id));
        }
        match self {
            Request::Explore(spec) => {
                o.str("type", "explore");
                spec.json_into(&mut o);
            }
            Request::Batch(specs) => {
                o.str("type", "batch");
                let items: Vec<String> = specs.iter().map(ExploreSpec::to_json_value).collect();
                o.raw("items", &format!("[{}]", items.join(",")));
            }
            Request::Status => {
                o.str("type", "status");
            }
            Request::CacheStats => {
                o.str("type", "cache_stats");
            }
            Request::Metrics => {
                o.str("type", "metrics");
            }
            Request::Trace => {
                o.str("type", "trace");
            }
            Request::PeerFill(spec) => {
                o.str("type", "peer_fill");
                spec.json_into(&mut o);
            }
            Request::Shutdown => {
                o.str("type", "shutdown");
            }
        }
        o.finish()
    }

    /// Decodes a request document, checking version and type and
    /// discarding any envelope trace id.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] (ready to send back) describing the
    /// malformation or version mismatch.
    pub fn from_json(text: &str) -> Result<Request, WireError> {
        Self::from_json_traced(text).map(|(request, _)| request)
    }

    /// Decodes a request document along with its envelope trace id.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the malformation, version
    /// mismatch, or an invalid `trace` field.
    pub fn from_json_traced(text: &str) -> Result<(Request, Option<u64>), WireError> {
        let v = parse_versioned(text)?;
        let trace = envelope_trace(&v)?;
        let request = match require_str(&v, "type")? {
            "explore" => Ok(Request::Explore(ExploreSpec::from_value(&v)?)),
            "batch" => {
                let items = v
                    .get("items")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| WireError::bad_request("batch needs an `items` array"))?;
                if items.is_empty() {
                    return Err(WireError::bad_request("batch must not be empty"));
                }
                items
                    .iter()
                    .map(ExploreSpec::from_value)
                    .collect::<Result<Vec<_>, _>>()
                    .map(Request::Batch)
            }
            "status" => Ok(Request::Status),
            "cache_stats" => Ok(Request::CacheStats),
            "metrics" => Ok(Request::Metrics),
            "trace" => Ok(Request::Trace),
            "peer_fill" => Ok(Request::PeerFill(ExploreSpec::from_value(&v)?)),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(WireError::bad_request(format!(
                "unknown request type `{other}`"
            ))),
        }?;
        Ok((request, trace))
    }
}

/// The counters of a [`Metrics`] in wire form (the private per-robot
/// distances stay server-side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetricsPayload {
    /// Rounds until the stop condition held.
    pub rounds: u64,
    /// Edge traversals performed.
    pub moves: u64,
    /// Idle robot-rounds.
    pub idle: u64,
    /// Adversary-stalled robot-rounds.
    pub stalled: u64,
    /// Allowed robot-rounds granted by the schedule.
    pub allowed_moves: u64,
    /// First-time edge traversals.
    pub edges_discovered: u64,
    /// Edge events (first down plus first up per edge).
    pub edge_events: u64,
}

impl MetricsPayload {
    /// Extracts the wire counters from a run's [`Metrics`].
    pub fn from_metrics(rounds: u64, m: &Metrics) -> Self {
        MetricsPayload {
            rounds,
            moves: m.moves,
            idle: m.idle,
            stalled: m.stalled,
            allowed_moves: m.allowed_moves,
            edges_discovered: m.edges_discovered,
            edge_events: m.edge_events,
        }
    }

    fn to_json_value(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("rounds", self.rounds)
            .u64("moves", self.moves)
            .u64("idle", self.idle)
            .u64("stalled", self.stalled)
            .u64("allowed_moves", self.allowed_moves)
            .u64("edges_discovered", self.edges_discovered)
            .u64("edge_events", self.edge_events);
        o.finish()
    }

    fn from_value(v: &Json) -> Result<Self, WireError> {
        Ok(MetricsPayload {
            rounds: require_u64(v, "rounds")?,
            moves: require_u64(v, "moves")?,
            idle: require_u64(v, "idle")?,
            stalled: require_u64(v, "stalled")?,
            allowed_moves: require_u64(v, "allowed_moves")?,
            edges_discovered: require_u64(v, "edges_discovered")?,
            edge_events: require_u64(v, "edge_events")?,
        })
    }
}

/// The reply to one [`ExploreSpec`]: instance shape, counters, and the
/// Theorem 1 envelope with its margin.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExploreResult {
    /// The spec this result answers (canonicalized echo).
    pub spec: ExploreSpec,
    /// Whether the reply was served from the result cache.
    pub cached: bool,
    /// Exact node count of the generated instance.
    pub nodes: u64,
    /// Depth of the instance.
    pub depth: u64,
    /// Maximum degree of the instance.
    pub max_degree: u64,
    /// Run counters.
    pub metrics: MetricsPayload,
    /// Theorem 1 round envelope for this instance.
    pub bound: f64,
    /// `bound - rounds` (non-negative means the envelope held).
    pub margin: f64,
    /// The run manifest JSON, when `options.manifest` was set.
    pub manifest: Option<String>,
}

impl ExploreResult {
    /// Serializes the cache-stable payload: everything except the
    /// transport-dependent `cached` flag. Spill files and byte-equality
    /// checks use this form, so a cache hit is literally byte-identical
    /// to the original computation.
    pub fn payload_json(&self) -> String {
        let mut o = JsonObject::new();
        o.raw("spec", &self.spec.to_json_value())
            .u64("nodes", self.nodes)
            .u64("depth", self.depth)
            .u64("max_degree", self.max_degree)
            .raw("metrics", &self.metrics.to_json_value());
        o.f64("bound", self.bound).f64("margin", self.margin);
        match &self.manifest {
            Some(m) => o.str("manifest", m),
            None => o.raw("manifest", "null"),
        };
        o.finish()
    }

    fn to_json_value(&self) -> String {
        let mut o = JsonObject::new();
        o.bool("cached", self.cached)
            .raw("payload", &self.payload_json());
        o.finish()
    }

    /// Decodes the `{cached, payload}` wire form.
    fn from_value(v: &Json) -> Result<Self, WireError> {
        let cached = v
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::bad_request("result needs `cached`"))?;
        let p = v
            .get("payload")
            .ok_or_else(|| WireError::bad_request("result needs `payload`"))?;
        Self::from_payload_value(p, cached)
    }

    /// Decodes a bare payload object (as spilled to disk) into a result
    /// with the given `cached` flag.
    pub(crate) fn from_payload_value(p: &Json, cached: bool) -> Result<Self, WireError> {
        let spec = p
            .get("spec")
            .ok_or_else(|| WireError::bad_request("payload needs `spec`"))
            .and_then(ExploreSpec::from_value)?;
        let metrics = p
            .get("metrics")
            .ok_or_else(|| WireError::bad_request("payload needs `metrics`"))
            .and_then(MetricsPayload::from_value)?;
        Ok(ExploreResult {
            spec,
            cached,
            nodes: require_u64(p, "nodes")?,
            depth: require_u64(p, "depth")?,
            max_degree: require_u64(p, "max_degree")?,
            metrics,
            bound: require_f64(p, "bound")?,
            margin: require_f64(p, "margin")?,
            manifest: match p.get("manifest") {
                None => None,
                Some(m) if m.is_null() => None,
                Some(m) => Some(
                    m.as_str()
                        .ok_or_else(|| WireError::bad_request("manifest must be a string"))?
                        .to_string(),
                ),
            },
        })
    }

    /// Parses one spill-file line (a bare payload object).
    pub(crate) fn from_payload_json(line: &str) -> Result<Self, WireError> {
        let v = Json::parse(line).map_err(|e| WireError::bad_request(e.to_string()))?;
        Self::from_payload_value(&v, false)
    }
}

/// Machine-readable failure categories of [`WireError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ErrorCode {
    /// The request was malformed or referenced unknown
    /// algorithms/families/limits.
    BadRequest,
    /// The document's `v` does not match [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The frame exceeded [`MAX_FRAME_LEN`].
    TooLarge,
    /// The job queue is full — retry later.
    Busy,
    /// The server is draining after a shutdown request.
    ShuttingDown,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire tag of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "too_large" => ErrorCode::TooLarge,
            "busy" => ErrorCode::Busy,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A structured error reply.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WireError {
    /// Failure category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A [`ErrorCode::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        WireError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }

    /// An error with the given code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// Server counters reported by [`Request::Status`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StatusPayload {
    /// Requests received (all types).
    pub requests: u64,
    /// Explore requests received (batch items included).
    pub explores: u64,
    /// Batch requests received.
    pub batches: u64,
    /// Replies served from the result cache.
    pub cache_hits: u64,
    /// Specs that had to be simulated.
    pub cache_misses: u64,
    /// Jobs rejected with [`ErrorCode::Busy`].
    pub rejects: u64,
    /// Jobs completed by the worker pool.
    pub completed: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_capacity: u64,
    /// Worker threads draining the queue.
    pub workers: u64,
    /// Jobs currently executing.
    pub in_flight: u64,
    /// Total nanoseconds jobs spent waiting in the queue.
    pub queue_wait_ns: u64,
    /// Total nanoseconds jobs spent executing.
    pub exec_ns: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

impl StatusPayload {
    fn to_json_value(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("requests", self.requests)
            .u64("explores", self.explores)
            .u64("batches", self.batches)
            .u64("cache_hits", self.cache_hits)
            .u64("cache_misses", self.cache_misses)
            .u64("rejects", self.rejects)
            .u64("completed", self.completed)
            .u64("queue_depth", self.queue_depth)
            .u64("queue_capacity", self.queue_capacity)
            .u64("workers", self.workers)
            .u64("in_flight", self.in_flight)
            .u64("queue_wait_ns", self.queue_wait_ns)
            .u64("exec_ns", self.exec_ns)
            .u64("uptime_ms", self.uptime_ms);
        o.finish()
    }

    fn from_value(v: &Json) -> Result<Self, WireError> {
        Ok(StatusPayload {
            requests: require_u64(v, "requests")?,
            explores: require_u64(v, "explores")?,
            batches: require_u64(v, "batches")?,
            cache_hits: require_u64(v, "cache_hits")?,
            cache_misses: require_u64(v, "cache_misses")?,
            rejects: require_u64(v, "rejects")?,
            completed: require_u64(v, "completed")?,
            queue_depth: require_u64(v, "queue_depth")?,
            queue_capacity: require_u64(v, "queue_capacity")?,
            workers: require_u64(v, "workers")?,
            in_flight: require_u64(v, "in_flight")?,
            queue_wait_ns: require_u64(v, "queue_wait_ns")?,
            exec_ns: require_u64(v, "exec_ns")?,
            uptime_ms: require_u64(v, "uptime_ms")?,
        })
    }
}

/// Result-cache counters reported by [`Request::CacheStats`].
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStatsPayload {
    /// Entries currently resident.
    pub entries: u64,
    /// Configured capacity (entries across all shards).
    pub capacity: u64,
    /// Number of shards.
    pub shards: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries inserted (spill loads included).
    pub insertions: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries warm-loaded from a spill file over the cache's lifetime.
    pub spill_loaded: u64,
    /// Approximate bytes of resident payload JSON across all shards.
    pub resident_bytes: u64,
    /// Lookups answered from the on-disk result store (a third outcome,
    /// counted as neither hit nor miss). Zero without a store.
    pub store_hits: u64,
    /// Segment files in the attached result store (zero without one).
    pub segments: u64,
    /// Logical bytes across the store's segments (zero without one).
    pub on_disk_bytes: u64,
    /// Uncompressed-to-stored ratio over the store's live records
    /// (0.0 when empty or storeless; >1.0 means compression is winning).
    pub compression_ratio: f64,
}

impl CacheStatsPayload {
    fn to_json_value(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("entries", self.entries)
            .u64("capacity", self.capacity)
            .u64("shards", self.shards)
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .u64("insertions", self.insertions)
            .u64("evictions", self.evictions)
            .u64("spill_loaded", self.spill_loaded)
            .u64("resident_bytes", self.resident_bytes)
            .u64("store_hits", self.store_hits)
            .u64("segments", self.segments)
            .u64("on_disk_bytes", self.on_disk_bytes)
            .f64("compression_ratio", self.compression_ratio);
        o.finish()
    }

    fn from_value(v: &Json) -> Result<Self, WireError> {
        Ok(CacheStatsPayload {
            entries: require_u64(v, "entries")?,
            capacity: require_u64(v, "capacity")?,
            shards: require_u64(v, "shards")?,
            hits: require_u64(v, "hits")?,
            misses: require_u64(v, "misses")?,
            insertions: require_u64(v, "insertions")?,
            evictions: require_u64(v, "evictions")?,
            // Absent on pre-telemetry peers: default rather than reject,
            // so a new client can still read an old daemon's stats.
            spill_loaded: v.get("spill_loaded").and_then(Json::as_u64).unwrap_or(0),
            resident_bytes: v.get("resident_bytes").and_then(Json::as_u64).unwrap_or(0),
            store_hits: v.get("store_hits").and_then(Json::as_u64).unwrap_or(0),
            segments: v.get("segments").and_then(Json::as_u64).unwrap_or(0),
            on_disk_bytes: v.get("on_disk_bytes").and_then(Json::as_u64).unwrap_or(0),
            compression_ratio: v
                .get("compression_ratio")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

/// One span of a server-side trace, in wire form (see
/// [`bfdn_obs::tracing::SpanRecord`] for the recorder-side twin).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpanPayload {
    /// The trace this span belongs to (nonzero).
    pub trace: u64,
    /// This span's id (nonzero, unique within the serving process).
    pub span: u64,
    /// Parent span id; `0` for the tree root.
    pub parent: u64,
    /// Operation name (`"request"`, `"execute"`, `"build_tree"`, …).
    pub name: String,
    /// Start, in nanoseconds since the server's recorder epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Attributes, rendered to strings for the wire.
    pub attrs: Vec<(String, String)>,
}

impl From<&SpanRecord> for SpanPayload {
    fn from(record: &SpanRecord) -> Self {
        SpanPayload {
            trace: record.trace,
            span: record.span,
            parent: record.parent,
            name: record.name.to_string(),
            start_ns: record.start_ns,
            duration_ns: record.duration_ns,
            attrs: record
                .attrs
                .iter()
                .map(|(key, value)| (key.to_string(), value.render()))
                .collect(),
        }
    }
}

impl SpanPayload {
    /// Renders one span as a standalone JSON object — the same document
    /// shape the wire uses, so tools can print spans one per line.
    pub fn to_json_value(&self) -> String {
        let parent = if self.parent == 0 {
            String::new()
        } else {
            hex16(self.parent)
        };
        let mut o = JsonObject::new();
        o.str("trace", &hex16(self.trace))
            .str("span", &hex16(self.span))
            .str("parent", &parent)
            .str("name", &self.name)
            .u64("start_ns", self.start_ns)
            .u64("dur_ns", self.duration_ns);
        if !self.attrs.is_empty() {
            let mut attrs = String::from("{");
            for (i, (key, value)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    attrs.push(',');
                }
                escape_into(&mut attrs, key);
                attrs.push(':');
                escape_into(&mut attrs, value);
            }
            attrs.push('}');
            o.raw("attrs", &attrs);
        }
        o.finish()
    }

    fn from_value(v: &Json) -> Result<Self, WireError> {
        let id = |key: &str| -> Result<u64, WireError> {
            let s = require_str(v, key)?;
            parse_hex16(s).filter(|&id| id != 0).ok_or_else(|| {
                WireError::bad_request(format!("span `{key}` must be 16 hex digits"))
            })
        };
        let parent = match v.get("parent").and_then(Json::as_str) {
            None | Some("") => 0,
            Some(s) => parse_hex16(s)
                .ok_or_else(|| WireError::bad_request("span `parent` must be 16 hex digits"))?,
        };
        let attrs = match v.get("attrs") {
            None => Vec::new(),
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(key, value)| {
                    value
                        .as_str()
                        .map(|s| (key.clone(), s.to_string()))
                        .ok_or_else(|| WireError::bad_request("span attrs must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(WireError::bad_request("span `attrs` must be an object")),
        };
        Ok(SpanPayload {
            trace: id("trace")?,
            span: id("span")?,
            parent,
            name: require_str(v, "name")?.to_string(),
            start_ns: require_u64(v, "start_ns")?,
            duration_ns: require_u64(v, "dur_ns")?,
            attrs,
        })
    }
}

/// The recent-span ring reported by [`Request::Trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TracePayload {
    /// Spans currently in the ring (filtered to one trace when the
    /// request carried an envelope trace id), sorted by start time.
    pub spans: Vec<SpanPayload>,
    /// Spans accepted by the recorder over its lifetime.
    pub recorded: u64,
    /// Spans lost to ring wrap-around or write contention; `0` means
    /// the ring still holds everything ever recorded.
    pub dropped: u64,
}

impl TracePayload {
    fn to_json_value(&self) -> String {
        let items: Vec<String> = self.spans.iter().map(SpanPayload::to_json_value).collect();
        let mut o = JsonObject::new();
        o.raw("spans", &format!("[{}]", items.join(",")))
            .u64("recorded", self.recorded)
            .u64("dropped", self.dropped);
        o.finish()
    }

    fn from_value(v: &Json) -> Result<Self, WireError> {
        let spans = v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::bad_request("trace needs a `spans` array"))?
            .iter()
            .map(SpanPayload::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TracePayload {
            spans,
            recorded: require_u64(v, "recorded")?,
            dropped: require_u64(v, "dropped")?,
        })
    }
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Response {
    /// One simulation result.
    Result(Box<ExploreResult>),
    /// Results of a batch, in request order, with the split between
    /// cache hits and executed simulations.
    Batch {
        /// Per-item results, aligned with the request's `items`.
        results: Vec<ExploreResult>,
        /// Items served from the cache.
        hits: u64,
        /// Items that were simulated.
        misses: u64,
    },
    /// Server counters.
    Status(StatusPayload),
    /// Cache counters.
    CacheStats(CacheStatsPayload),
    /// The telemetry registry rendered as Prometheus text exposition.
    Metrics(String),
    /// The recent-span ring, answering [`Request::Trace`].
    Trace(TracePayload),
    /// The shard does not hold the requested spec, answering
    /// [`Request::PeerFill`]. Deliberately distinct from
    /// [`Response::Error`]: a peer miss is the expected cold-path
    /// outcome, not a failure.
    PeerMiss,
    /// Acknowledgement of a shutdown request; the server drains and
    /// exits after sending it.
    Bye,
    /// A structured failure.
    Error(WireError),
}

impl Response {
    /// Serializes the response document without a trace id.
    pub fn to_json(&self) -> String {
        self.to_json_traced(None)
    }

    /// Serializes the response document, echoing `trace` as the
    /// envelope trace id when given.
    pub fn to_json_traced(&self, trace: Option<u64>) -> String {
        let mut o = JsonObject::new();
        o.u64("v", PROTOCOL_VERSION);
        if let Some(id) = trace {
            o.str("trace", &hex16(id));
        }
        match self {
            Response::Result(r) => {
                o.str("type", "result").raw("result", &r.to_json_value());
            }
            Response::Batch {
                results,
                hits,
                misses,
            } => {
                o.str("type", "batch_result");
                let items: Vec<String> = results.iter().map(ExploreResult::to_json_value).collect();
                o.raw("results", &format!("[{}]", items.join(",")))
                    .u64("hits", *hits)
                    .u64("misses", *misses);
            }
            Response::Status(s) => {
                o.str("type", "status").raw("status", &s.to_json_value());
            }
            Response::CacheStats(c) => {
                o.str("type", "cache_stats")
                    .raw("cache", &c.to_json_value());
            }
            Response::Metrics(text) => {
                o.str("type", "metrics").str("text", text);
            }
            Response::Trace(t) => {
                o.str("type", "trace").raw("spans", &t.to_json_value());
            }
            Response::PeerMiss => {
                o.str("type", "peer_miss");
            }
            Response::Bye => {
                o.str("type", "bye");
            }
            Response::Error(e) => {
                o.str("type", "error").str("code", e.code.as_str());
                let mut buf = String::new();
                escape_into(&mut buf, &e.message);
                o.raw("message", &buf);
            }
        }
        o.finish()
    }

    /// Decodes a response document, checking version and type and
    /// discarding any envelope trace id.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the malformation.
    pub fn from_json(text: &str) -> Result<Response, WireError> {
        Self::from_json_traced(text).map(|(response, _)| response)
    }

    /// Decodes a response document along with the trace id the server
    /// echoed, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the malformation or an
    /// invalid `trace` field.
    pub fn from_json_traced(text: &str) -> Result<(Response, Option<u64>), WireError> {
        let v = parse_versioned(text)?;
        let trace = envelope_trace(&v)?;
        let response = match require_str(&v, "type")? {
            "result" => {
                let r = v
                    .get("result")
                    .ok_or_else(|| WireError::bad_request("missing `result`"))?;
                Ok(Response::Result(Box::new(ExploreResult::from_value(r)?)))
            }
            "batch_result" => {
                let items = v
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| WireError::bad_request("missing `results` array"))?;
                Ok(Response::Batch {
                    results: items
                        .iter()
                        .map(ExploreResult::from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    hits: require_u64(&v, "hits")?,
                    misses: require_u64(&v, "misses")?,
                })
            }
            "status" => {
                let s = v
                    .get("status")
                    .ok_or_else(|| WireError::bad_request("missing `status`"))?;
                Ok(Response::Status(StatusPayload::from_value(s)?))
            }
            "cache_stats" => {
                let c = v
                    .get("cache")
                    .ok_or_else(|| WireError::bad_request("missing `cache`"))?;
                Ok(Response::CacheStats(CacheStatsPayload::from_value(c)?))
            }
            "metrics" => Ok(Response::Metrics(require_str(&v, "text")?.to_string())),
            "trace" => {
                let t = v
                    .get("spans")
                    .ok_or_else(|| WireError::bad_request("missing `spans`"))?;
                Ok(Response::Trace(TracePayload::from_value(t)?))
            }
            "peer_miss" => Ok(Response::PeerMiss),
            "bye" => Ok(Response::Bye),
            "error" => Ok(Response::Error(WireError {
                code: require_str(&v, "code")
                    .ok()
                    .and_then(ErrorCode::from_str)
                    .unwrap_or(ErrorCode::Internal),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            })),
            other => Err(WireError::bad_request(format!(
                "unknown response type `{other}`"
            ))),
        }?;
        Ok((response, trace))
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes clean EOF between
    /// frames, surfaced as `UnexpectedEof`).
    Io(io::Error),
    /// The announced payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The payload was not UTF-8.
    Utf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            FrameError::Utf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// `true` when the peer closed the connection cleanly between
    /// frames.
    pub fn is_eof(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// Fails with `InvalidInput` if the payload exceeds [`MAX_FRAME_LEN`],
/// or with the transport's error.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the frame cap", payload.len()),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame, enforcing [`MAX_FRAME_LEN`] *before* allocating.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on transport failure (clean EOF included),
/// [`FrameError::TooLarge`] on an oversized announcement, or
/// [`FrameError::Utf8`] on a non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload).map_err(|_| FrameError::Utf8)
}

/// Parses a document and checks its `v` field.
fn parse_versioned(text: &str) -> Result<Json, WireError> {
    let v = Json::parse(text).map_err(|e: JsonError| WireError::bad_request(e.to_string()))?;
    match v.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => Ok(v),
        Some(other) => Err(WireError::new(
            ErrorCode::UnsupportedVersion,
            format!("protocol version {other} (this build speaks {PROTOCOL_VERSION})"),
        )),
        None => Err(WireError::bad_request("missing protocol version `v`")),
    }
}

/// Extracts the optional top-level `trace` envelope id: absent means
/// untraced; present, it must be a nonzero 16-digit hex string.
fn envelope_trace(v: &Json) -> Result<Option<u64>, WireError> {
    match v.get("trace") {
        None => Ok(None),
        Some(t) => {
            let s = t
                .as_str()
                .ok_or_else(|| WireError::bad_request("`trace` must be a string"))?;
            parse_hex16(s)
                .filter(|&id| id != 0)
                .map(Some)
                .ok_or_else(|| WireError::bad_request("`trace` must be 16 nonzero hex digits"))
        }
    }
}

fn require_str<'j>(v: &'j Json, key: &str) -> Result<&'j str, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::bad_request(format!("missing string field `{key}`")))
}

fn require_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::bad_request(format!("missing integer field `{key}`")))
}

fn require_f64(v: &Json, key: &str) -> Result<f64, WireError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| WireError::bad_request(format!("missing number field `{key}`")))
}

/// Formats a float exactly as the wire does (shortest round-trip repr),
/// exposed for tests asserting byte equality across transports.
pub fn wire_f64(v: f64) -> String {
    let mut s = String::new();
    float_into(&mut s, v);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ExploreSpec {
        ExploreSpec::new("bfdn", "comb", 500, 8, 7)
    }

    fn sample_result() -> ExploreResult {
        ExploreResult {
            spec: sample_spec(),
            cached: false,
            nodes: 506,
            depth: 23,
            max_degree: 3,
            metrics: MetricsPayload {
                rounds: 210,
                moves: 1400,
                idle: 12,
                stalled: 0,
                allowed_moves: 1680,
                edges_discovered: 505,
                edge_events: 1010,
            },
            bound: 1831.5,
            margin: 1621.5,
            manifest: None,
        }
    }

    #[test]
    fn canonical_covers_every_request_field() {
        let mut spec = sample_spec();
        let base = spec.canonical();
        spec.seed += 1;
        assert_ne!(spec.canonical(), base);
        spec.seed -= 1;
        spec.options.delay_ms = 5;
        assert_ne!(spec.canonical(), base);
        assert_eq!(sample_spec().canonical(), base);
        assert_ne!(sample_spec().content_hash(), 0);
    }

    #[test]
    fn request_documents_round_trip() {
        let mut with_opts = sample_spec();
        with_opts.options = ExploreOptions {
            manifest: true,
            delay_ms: 25,
        };
        for req in [
            Request::Explore(sample_spec()),
            Request::Explore(with_opts.clone()),
            Request::Batch(vec![sample_spec(), with_opts]),
            Request::Status,
            Request::CacheStats,
            Request::Metrics,
            Request::Trace,
            Request::PeerFill(sample_spec()),
            Request::Shutdown,
        ] {
            let json = req.to_json();
            assert!(json.contains(&format!("\"v\":{PROTOCOL_VERSION}")));
            assert_eq!(Request::from_json(&json).unwrap(), req, "{json}");
        }
    }

    #[test]
    fn response_documents_round_trip() {
        let mut hit = sample_result();
        hit.cached = true;
        hit.manifest = Some(r#"{"algorithm":"bfdn"}"#.into());
        for resp in [
            Response::Result(Box::new(sample_result())),
            Response::Batch {
                results: vec![sample_result(), hit],
                hits: 1,
                misses: 1,
            },
            Response::Status(StatusPayload {
                requests: 10,
                queue_capacity: 64,
                uptime_ms: 1234,
                ..StatusPayload::default()
            }),
            Response::CacheStats(CacheStatsPayload {
                entries: 3,
                capacity: 1024,
                shards: 8,
                hits: 2,
                misses: 3,
                insertions: 3,
                evictions: 0,
                spill_loaded: 1,
                resident_bytes: 2048,
                store_hits: 4,
                segments: 2,
                on_disk_bytes: 4096,
                compression_ratio: 2.5,
            }),
            Response::Metrics("# HELP x y\n# TYPE x counter\nx 1\n".into()),
            Response::PeerMiss,
            Response::Bye,
            Response::Error(WireError::new(ErrorCode::Busy, "queue full (depth 64)")),
        ] {
            let json = resp.to_json();
            assert_eq!(Response::from_json(&json).unwrap(), resp, "{json}");
        }
    }

    #[test]
    fn trace_envelope_round_trips_on_requests_and_responses() {
        let req = Request::Explore(sample_spec());
        let json = req.to_json_traced(Some(0xdead_beef_0000_0001));
        assert!(json.contains(r#""trace":"deadbeef00000001""#), "{json}");
        let (decoded, trace) = Request::from_json_traced(&json).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(trace, Some(0xdead_beef_0000_0001));

        // Untraced documents decode with `None`.
        let (_, trace) = Request::from_json_traced(&req.to_json()).unwrap();
        assert_eq!(trace, None);

        let resp = Response::Bye;
        let json = resp.to_json_traced(Some(7));
        let (decoded, trace) = Response::from_json_traced(&json).unwrap();
        assert_eq!(decoded, resp);
        assert_eq!(trace, Some(7));
    }

    #[test]
    fn invalid_trace_envelopes_are_rejected() {
        for doc in [
            r#"{"v":1,"trace":7,"type":"status"}"#,
            r#"{"v":1,"trace":"xyz","type":"status"}"#,
            r#"{"v":1,"trace":"abc","type":"status"}"#,
            r#"{"v":1,"trace":"0000000000000000","type":"status"}"#,
            r#"{"v":1,"trace":"00000000000000001","type":"status"}"#,
        ] {
            let err = Request::from_json_traced(doc).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{doc}");
        }
    }

    #[test]
    fn trace_response_round_trips_spans_and_counters() {
        let payload = TracePayload {
            spans: vec![
                SpanPayload {
                    trace: 0xabc,
                    span: 1,
                    parent: 0,
                    name: "request".into(),
                    start_ns: 10,
                    duration_ns: 5000,
                    attrs: vec![("kind".into(), "explore".into())],
                },
                SpanPayload {
                    trace: 0xabc,
                    span: 2,
                    parent: 1,
                    name: "execute".into(),
                    start_ns: 40,
                    duration_ns: 4000,
                    attrs: Vec::new(),
                },
            ],
            recorded: 2,
            dropped: 0,
        };
        let resp = Response::Trace(payload);
        let json = resp.to_json();
        assert!(json.contains(r#""dropped":0"#), "{json}");
        assert_eq!(Response::from_json(&json).unwrap(), resp, "{json}");

        // An empty ring is still a valid document.
        let empty = Response::Trace(TracePayload::default());
        assert_eq!(Response::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn version_mismatch_is_structured() {
        let doc = r#"{"v":99,"type":"status"}"#;
        let err = Request::from_json(doc).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
        let err = Request::from_json(r#"{"type":"status"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn malformed_requests_are_bad_requests() {
        for doc in [
            "nonsense",
            r#"{"v":1}"#,
            r#"{"v":1,"type":"warp"}"#,
            r#"{"v":1,"type":"explore","algorithm":"bfdn"}"#,
            r#"{"v":1,"type":"batch","items":[]}"#,
            r#"{"v":1,"type":"batch","items":7}"#,
            r#"{"v":1,"type":"explore","algorithm":"bfdn","family":"comb","n":1.5,"k":2,"seed":0}"#,
        ] {
            let err = Request::from_json(doc).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{doc}");
        }
    }

    #[test]
    fn frames_round_trip_and_enforce_the_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        assert_eq!(&buf[..4], &5u32.to_be_bytes());
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), "hello");
        // EOF between frames is clean.
        assert!(read_frame(&mut r).unwrap_err().is_eof());

        let oversized = (MAX_FRAME_LEN + 1).to_be_bytes();
        let mut r = io::Cursor::new(oversized.to_vec());
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TooLarge(len)) if len == MAX_FRAME_LEN + 1
        ));

        let big = "x".repeat(MAX_FRAME_LEN as usize + 1);
        assert!(write_frame(&mut Vec::new(), &big).is_err());

        // Truncated payload is an I/O error, not a hang or a panic.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, "full payload").unwrap();
        truncated.truncate(7);
        let mut r = io::Cursor::new(truncated);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));

        // Non-UTF-8 payloads are rejected.
        let mut bad = 2u32.to_be_bytes().to_vec();
        bad.extend([0xFF, 0xFE]);
        let mut r = io::Cursor::new(bad);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Utf8)));
    }

    #[test]
    fn payload_json_is_cache_stable() {
        let mut r = sample_result();
        let payload = r.payload_json();
        r.cached = true;
        assert_eq!(r.payload_json(), payload, "cached flag must not leak");
        let parsed = ExploreResult::from_payload_json(&payload).unwrap();
        assert_eq!(parsed.metrics, r.metrics);
        assert_eq!(parsed.spec, r.spec);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
