//! A blocking wire client for the serving daemon.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/reply per frame). The typed
//! helpers ([`Client::explore`], [`Client::batch`], …) unwrap the
//! matching [`Response`] variant and surface server-side
//! [`WireError`]s — including [`crate::protocol::ErrorCode::Busy`]
//! backpressure — as [`ClientError::Server`], so callers can branch on
//! the structured code.

use crate::protocol::{
    read_frame, write_frame, CacheStatsPayload, ExploreResult, ExploreSpec, FrameError, Request,
    Response, StatusPayload, TracePayload, WireError,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, send, or receive).
    Io(io::Error),
    /// The reply frame was unreadable (oversized or not UTF-8).
    Frame(FrameError),
    /// The reply document did not decode.
    Decode(WireError),
    /// The server answered with a structured error.
    Server(WireError),
    /// The server answered with a well-formed but wrong-typed response.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "bad reply frame: {e}"),
            ClientError::Decode(e) => write!(f, "undecodable reply: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(kind) => write!(f, "unexpected reply of type {kind}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server's structured error, when there is one.
    pub fn as_server_error(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
    trace: Option<u64>,
    last_trace: Option<u64>,
}

impl Client {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            trace: None,
            last_trace: None,
        })
    }

    /// Connects with a bounded connect timeout. A dead or blackholed
    /// address fails within `timeout` instead of blocking on the OS
    /// default (minutes on most stacks) — the cluster client's failover
    /// and the daemon's peer cache-fill both depend on this bound.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure or timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            trace: None,
            last_trace: None,
        })
    }

    /// Attaches (or detaches) a trace id to every subsequent request.
    ///
    /// A nonzero id rides the wire envelope, forces server-side span
    /// recording for those requests, and is echoed back in each reply.
    /// Zero is reserved and silently treated as "no trace".
    pub fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace.filter(|&id| id != 0);
    }

    /// The trace id the server echoed (or assigned, under sampling) on
    /// the most recent reply, if any.
    pub fn last_trace(&self) -> Option<u64> {
        self.last_trace
    }

    /// Sets (or clears) the receive timeout — useful for tests that must
    /// not hang on a wedged server.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and decodes the reply — any well-formed reply,
    /// including errors. The typed helpers below are usually what you
    /// want.
    ///
    /// # Errors
    ///
    /// Fails on transport or decoding problems; a structured server
    /// error is a *successful* call here.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let trace = self.trace;
        self.request_traced(request, trace)
    }

    fn request_traced(
        &mut self,
        request: &Request,
        trace: Option<u64>,
    ) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_json_traced(trace))?;
        let payload = match read_frame(&mut self.stream) {
            Ok(p) => p,
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Frame(e)),
        };
        let (response, echoed) =
            Response::from_json_traced(&payload).map_err(ClientError::Decode)?;
        self.last_trace = echoed;
        Ok(response)
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Ok(other),
        }
    }

    /// Runs (or fetches from cache) one simulation.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn explore(&mut self, spec: ExploreSpec) -> Result<ExploreResult, ClientError> {
        match self.expect(&Request::Explore(spec))? {
            Response::Result(r) => Ok(*r),
            _ => Err(ClientError::Unexpected("non-result")),
        }
    }

    /// Runs a batch as one queued job; results come back in request
    /// order together with the cache hit/miss split.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn batch(
        &mut self,
        specs: Vec<ExploreSpec>,
    ) -> Result<(Vec<ExploreResult>, u64, u64), ClientError> {
        match self.expect(&Request::Batch(specs))? {
            Response::Batch {
                results,
                hits,
                misses,
            } => Ok((results, hits, misses)),
            _ => Err(ClientError::Unexpected("non-batch")),
        }
    }

    /// Fetches the server counters.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn status(&mut self) -> Result<StatusPayload, ClientError> {
        match self.expect(&Request::Status)? {
            Response::Status(s) => Ok(s),
            _ => Err(ClientError::Unexpected("non-status")),
        }
    }

    /// Fetches the result-cache counters.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn cache_stats(&mut self) -> Result<CacheStatsPayload, ClientError> {
        match self.expect(&Request::CacheStats)? {
            Response::CacheStats(c) => Ok(c),
            _ => Err(ClientError::Unexpected("non-cache-stats")),
        }
    }

    /// Fetches the daemon's Prometheus text exposition over the wire
    /// protocol (no HTTP listener required).
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.expect(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            _ => Err(ClientError::Unexpected("non-metrics")),
        }
    }

    /// Fetches the server's recent-span ring, optionally filtered to one
    /// trace id. The filter rides the request's own `trace` envelope
    /// field; the `trace` request itself is never traced.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn trace_spans(&mut self, filter: Option<u64>) -> Result<TracePayload, ClientError> {
        match self.request_traced(&Request::Trace, filter.filter(|&id| id != 0))? {
            Response::Error(e) => Err(ClientError::Server(e)),
            Response::Trace(t) => Ok(t),
            _ => Err(ClientError::Unexpected("non-trace")),
        }
    }

    /// Asks a cluster peer whether it already holds the result for
    /// `spec`. `Ok(None)` is the expected cold-path outcome — the peer
    /// answered, it just has nothing cached. Never causes execution on
    /// the peer.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn peer_fill(&mut self, spec: ExploreSpec) -> Result<Option<ExploreResult>, ClientError> {
        match self.expect(&Request::PeerFill(spec))? {
            Response::Result(r) => Ok(Some(*r)),
            Response::PeerMiss => Ok(None),
            _ => Err(ClientError::Unexpected("non-peer-fill")),
        }
    }

    /// Asks the server to drain and exit; returns once the server
    /// acknowledged with `Bye`.
    ///
    /// # Errors
    ///
    /// Transport/decoding failures, or the server's structured error.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            _ => Err(ClientError::Unexpected("non-bye")),
        }
    }
}
