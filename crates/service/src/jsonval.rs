//! A minimal hand-rolled JSON *reader*, the inbound counterpart of
//! [`bfdn_obs::json`]'s writer.
//!
//! The workspace deliberately carries no serialization format crate
//! (serde wires derives only, see the crate features), so the wire
//! protocol parses its own JSON. The subset implemented is exactly what
//! the protocol emits: objects, arrays, strings, numbers, booleans and
//! `null`, with full string-escape handling and a nesting-depth cap so a
//! hostile frame cannot blow the stack.
//!
//! # Example
//!
//! ```
//! use bfdn_service::jsonval::Json;
//!
//! let v = Json::parse(r#"{"type":"status","pending":3}"#).unwrap();
//! assert_eq!(v.get("type").and_then(Json::as_str), Some("status"));
//! assert_eq!(v.get("pending").and_then(Json::as_u64), Some(3));
//! ```

use std::fmt;

/// Maximum container nesting accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Integers that fit `u64` are kept exact in [`Json::Int`] (the protocol
/// carries seeds and counters that must not round through `f64`); every
/// other number becomes [`Json::Num`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    Int(u64),
    /// Any other number (negative, fractional, or exponent-form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformation.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins, `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact integer payload ([`Json::Int`] only — a fractional
    /// number is never silently truncated).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (exact integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are trustworthy).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("bad \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(self.err("lone high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid code point"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Num(250.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn big_integers_stay_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn containers_and_accessors() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x","a2":1.5}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
        assert_eq!(v.get("a2").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("a2").and_then(Json::as_u64), None, "no truncation");
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut encoded = String::new();
        bfdn_obs::json::escape_into(&mut encoded, "a\"b\\c\nd\te\u{1}é✓");
        let v = Json::parse(&encoded).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}é✓"));
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01x",
            r#""\q""#,
            r#""\ud800""#,
            "1 2",
            "{1:2}",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn nesting_depth_is_capped() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
