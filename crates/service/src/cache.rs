//! The content-addressed result cache.
//!
//! Simulation runs are fully deterministic in their [`ExploreSpec`]
//! (seeded instance generation, deterministic explorers — see
//! [`crate::exec`]), so a completed [`ExploreResult`] is addressed by
//! the canonical form of the request that produced it:
//! [`ExploreSpec::canonical`] is the key, its FNV-1a hash picks the
//! shard, and the full canonical string is compared on lookup so a hash
//! collision can never serve the wrong payload.
//!
//! Entries live in a sharded in-memory LRU (per-shard mutexes keep
//! worker threads and connection handlers from serializing on one
//! lock). [`ResultCache::spill_to`] writes every resident payload as
//! one JSONL line for warm restarts; [`ResultCache::load_from`] reads
//! such a file back, so a restarted daemon answers yesterday's sweep
//! without re-simulating.
//!
//! Spill files are *revision-aware*: the first line is a header
//! recording the git revision the daemon ran from, and a warm start
//! refuses a spill whose recorded revision definitely differs from the
//! running binary's — results are deterministic in the spec only for a
//! fixed simulation code base, so entries must not survive a code
//! change. An unknown revision on either side (e.g. running from an
//! exported tarball) is accepted, and headerless legacy spills still
//! load.
//!
//! The cache can additionally be backed by a [`bfdn_store::Store`]
//! ([`ResultCache::attach_store`]): every `put` writes through to the
//! log-structured store, and a memory miss falls back to an indexed
//! disk read before being counted a true miss — a third lookup outcome
//! (`store_hits`) distinct from both hit and miss. With a store
//! attached the in-memory tier can also be bounded by a hard
//! resident-bytes budget: entries are admitted only while the shard
//! stays under its slice of the budget (evicting LRU first), and
//! anything not resident is still served byte-identically from disk.

use crate::protocol::{fnv1a, CacheStatsPayload, ExploreResult, ExploreSpec};
use bfdn_obs::json::JsonObject;
use bfdn_store::Store;
use std::collections::HashMap;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sizing of a [`ResultCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total entries kept across all shards.
    pub capacity: usize,
    /// Shard count (rounded up to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            shards: 8,
        }
    }
}

/// One resident result plus its LRU clock reading and the byte size of
/// its cache-stable payload (for the resident-bytes gauge).
struct Entry {
    result: ExploreResult,
    last_used: u64,
    bytes: u64,
}

/// One independently locked slice of the key space.
#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    /// Sum of `Entry::bytes` over `map` — the shard's share of the
    /// resident-bytes budget is enforced against this.
    bytes: u64,
}

/// A sharded LRU of completed simulation results, keyed by canonical
/// request, optionally backed by a log-structured on-disk store.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    spill_loaded: AtomicU64,
    resident_bytes: AtomicU64,
    store_hits: AtomicU64,
    revision: Option<String>,
    store: Option<Mutex<Store>>,
    /// Per-shard slice of the resident-bytes budget (`Some` only when a
    /// budget was set at [`ResultCache::attach_store`] time). The slices
    /// are `budget / shards` rounded down, so the global
    /// `resident_bytes` gauge can never exceed the configured budget.
    per_shard_budget: Option<u64>,
}

impl ResultCache {
    /// An empty cache sized by `config`, stamped with the current git
    /// revision (when discoverable) for revision-aware spill files.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_revision(config, bfdn_obs::git_revision())
    }

    /// An empty cache with an explicit revision stamp — what spill
    /// headers are written with and validated against. Tests use this to
    /// simulate a daemon restarted under different simulation code.
    pub fn with_revision(config: CacheConfig, revision: Option<String>) -> Self {
        let shards = config.shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: config.capacity.div_ceil(shards).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spill_loaded: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            revision,
            store: None,
            per_shard_budget: None,
        }
    }

    /// Backs the cache with an already-opened [`Store`]: every `put`
    /// writes through to it and a memory miss is retried against it
    /// before being counted a miss. `budget_bytes`, when set, caps the
    /// in-memory tier: each shard may hold at most
    /// `budget_bytes / shards` payload bytes, evicting LRU entries (or
    /// refusing admission outright for oversized payloads) to stay
    /// under — the overflow remains retrievable from disk.
    ///
    /// The store should have been opened with this cache's revision so
    /// the store's own refusal semantics line up with the spill's.
    pub fn attach_store(&mut self, store: Store, budget_bytes: Option<u64>) {
        self.per_shard_budget = budget_bytes.map(|b| b / self.shards.len() as u64);
        self.store = Some(Mutex::new(store));
    }

    /// `true` when a store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// A snapshot of the attached store's counters, `None` without one.
    pub fn store_stats(&self) -> Option<bfdn_store::StoreStats> {
        self.store
            .as_ref()
            .map(|s| s.lock().expect("result store").stats())
    }

    /// Runs one maintenance pass on the attached store (compaction when
    /// its dead-bytes trigger is crossed); returns the compaction
    /// report when one ran.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error.
    pub fn maintain_store(&self) -> io::Result<Option<bfdn_store::CompactReport>> {
        match &self.store {
            Some(store) => store.lock().expect("result store").maintain(),
            None => Ok(None),
        }
    }

    /// Persists the attached store's index for an instant next open;
    /// returns `false` without a store.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error.
    pub fn persist_store_index(&self) -> io::Result<bool> {
        match &self.store {
            Some(store) => {
                store.lock().expect("result store").persist_index()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn shard_for(&self, canonical: &str) -> &Mutex<Shard> {
        let h = fnv1a(canonical.as_bytes()) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks `spec` up; a hit returns the stored result with its
    /// `cached` flag set and refreshes the entry's recency.
    ///
    /// With a store attached, a memory miss falls back to an indexed
    /// disk read: a record found there counts as a *store hit* (not a
    /// hit, not a miss), is re-admitted to the in-memory tier under the
    /// budget, and is returned with `cached` set — byte-identical to
    /// what the original execution produced. Only when both tiers come
    /// up empty is the lookup a miss.
    pub fn get(&self, spec: &ExploreSpec) -> Option<ExploreResult> {
        let canonical = spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
            if let Some(entry) = shard.map.get_mut(&canonical) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut result = entry.result.clone();
                result.cached = true;
                return Some(result);
            }
        }
        if let Some(result) = self.store_lookup(&canonical) {
            self.store_hits.fetch_add(1, Ordering::Relaxed);
            // Re-admit: the store just proved this key is hot again.
            // No write-through — it is already on disk.
            self.admit(result.clone(), tick);
            let mut result = result;
            result.cached = true;
            return Some(result);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Reads `canonical` from the attached store, if any. A corrupt or
    /// unparsable record is treated as absent — the caller re-executes,
    /// which is always safe.
    fn store_lookup(&self, canonical: &str) -> Option<ExploreResult> {
        let store = self.store.as_ref()?;
        let payload = store
            .lock()
            .expect("result store")
            .get(canonical)
            .ok()
            .flatten()?;
        ExploreResult::from_payload_json(&payload).ok()
    }

    /// Like [`ResultCache::get`] but without touching the hit/miss
    /// counters: peer cache-fill probes answer from whatever happens to
    /// be resident, and another shard's traffic must not skew this
    /// shard's client-facing hit ratio. Serving a peer still refreshes
    /// the entry's recency — a result the ring keeps asking for is
    /// worth keeping.
    /// A store-backed cache also answers peer probes from disk — but
    /// without re-admitting the record to memory, so another shard's
    /// fill traffic cannot displace this shard's hot set.
    pub fn peek(&self, spec: &ExploreSpec) -> Option<ExploreResult> {
        let canonical = spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
            if let Some(entry) = shard.map.get_mut(&canonical) {
                entry.last_used = tick;
                let mut result = entry.result.clone();
                result.cached = true;
                return Some(result);
            }
        }
        let mut result = self.store_lookup(&canonical)?;
        result.cached = true;
        Some(result)
    }

    /// Stores a completed result under its spec's canonical key,
    /// normalizing `cached` to `false` so the stored payload is exactly
    /// what a fresh computation produces. Evicts the least-recently-used
    /// entry of the shard when it is full (by count, and by bytes when a
    /// resident budget is set). With a store attached the payload is
    /// also written through to disk, so an entry that is later evicted —
    /// or never admitted because it alone exceeds the shard's byte
    /// budget — remains retrievable.
    pub fn put(&self, result: &ExploreResult) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut stored = result.clone();
        stored.cached = false;
        if let Some(store) = &self.store {
            let canonical = stored.spec.canonical();
            let payload = stored.payload_json();
            if let Err(err) = store
                .lock()
                .expect("result store")
                .put_if_absent(&canonical, &payload)
            {
                // Disk trouble must not fail the request: the result is
                // still served (and cached in memory) this run.
                eprintln!("bfdn-serve: result store write failed for {canonical}: {err}");
            }
        }
        self.admit(stored, tick);
    }

    /// Inserts `stored` into its in-memory shard, enforcing both the
    /// per-shard entry capacity and (when set) the per-shard byte
    /// budget by LRU eviction. A payload larger than the whole shard
    /// budget is not admitted at all.
    fn admit(&self, stored: ExploreResult, tick: u64) {
        let canonical = stored.spec.canonical();
        let bytes = stored.payload_json().len() as u64;
        if self.per_shard_budget.is_some_and(|budget| bytes > budget) {
            return;
        }
        let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
        let was_present = if let Some(old) = shard.map.remove(&canonical) {
            shard.bytes -= old.bytes;
            self.resident_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
            true
        } else {
            false
        };
        while shard.map.len() >= self.per_shard_capacity
            || self
                .per_shard_budget
                .is_some_and(|budget| shard.bytes + bytes > budget)
        {
            if !self.evict_lru(&mut shard) {
                break;
            }
        }
        shard.bytes += bytes;
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
        shard.map.insert(
            canonical,
            Entry {
                result: stored,
                last_used: tick,
                bytes,
            },
        );
        if !was_present {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Removes the least-recently-used entry of `shard`; `false` when
    /// the shard is already empty.
    fn evict_lru(&self, shard: &mut Shard) -> bool {
        let Some(oldest) = shard
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        else {
            return false;
        };
        if let Some(evicted) = shard.map.remove(&oldest) {
            shard.bytes -= evicted.bytes;
            self.resident_bytes
                .fetch_sub(evicted.bytes, Ordering::Relaxed);
        }
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wire-form counters.
    pub fn stats(&self) -> CacheStatsPayload {
        let (segments, on_disk_bytes, compression_ratio) = match self.store_stats() {
            Some(s) => (s.segments, s.on_disk_bytes, s.compression_ratio()),
            None => (0, 0, 0.0),
        };
        CacheStatsPayload {
            entries: self.len() as u64,
            capacity: (self.per_shard_capacity * self.shards.len()) as u64,
            shards: self.shards.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spill_loaded: self.spill_loaded.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            segments,
            on_disk_bytes,
            compression_ratio,
        }
    }

    /// The revision stamp spill headers are written with.
    pub fn revision(&self) -> Option<&str> {
        self.revision.as_deref()
    }

    /// Writes the spill header followed by every resident payload as one
    /// JSONL line each (the cache-stable [`ExploreResult::payload_json`]
    /// form); returns the number of payload lines.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn spill_to(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut header = JsonObject::new();
        header.str("spill", "bfdn-result-cache");
        match &self.revision {
            Some(rev) => header.str("revision", rev),
            None => header.raw("revision", "null"),
        };
        w.write_all(header.finish().as_bytes())?;
        w.write_all(b"\n")?;
        let mut lines = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard");
            for entry in shard.map.values() {
                w.write_all(entry.result.payload_json().as_bytes())?;
                w.write_all(b"\n")?;
                lines += 1;
            }
        }
        w.flush()?;
        Ok(lines)
    }

    /// Loads a spill file, inserting every well-formed line; malformed
    /// lines are counted, not fatal (a truncated spill from a crashed
    /// daemon must not brick the restart).
    ///
    /// When the file's header records a git revision that definitely
    /// differs from this cache's, *every* entry is refused: a code
    /// change invalidates the determinism guarantee the cache relies
    /// on. Headerless legacy files and unknown revisions (either side)
    /// load normally.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error opening or reading the file.
    pub fn load_from(&self, path: impl AsRef<Path>) -> io::Result<SpillReport> {
        let reader = io::BufReader::new(std::fs::File::open(path)?);
        let mut report = SpillReport::default();
        let mut first_payload_line = true;
        let mut refuse = false;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if first_payload_line {
                first_payload_line = false;
                if let Some(header_revision) = parse_spill_header(&line) {
                    if let (Some(ours), Some(theirs)) = (&self.revision, &header_revision) {
                        refuse = ours != theirs;
                        report.revision_mismatch = refuse;
                    }
                    continue; // The header is not a payload either way.
                }
            }
            if refuse {
                report.refused += 1;
                continue;
            }
            match ExploreResult::from_payload_json(&line) {
                Ok(result) => {
                    self.put(&result);
                    self.spill_loaded.fetch_add(1, Ordering::Relaxed);
                    report.loaded += 1;
                }
                Err(_) => report.malformed += 1,
            }
        }
        Ok(report)
    }

    /// Imports a legacy JSONL spill into the *attached store* (not the
    /// in-memory tier), with the same revision-refusal and
    /// malformed-line semantics as [`ResultCache::load_from`]. Returns
    /// an error when no store is attached.
    ///
    /// Re-importing the same spill supersedes the earlier records —
    /// the duplicates become dead bytes that the next compaction
    /// reclaims — so running this on every start is safe, if wasteful.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading the spill or appending to the
    /// store, and reports a store-less cache as `InvalidInput`.
    pub fn import_spill_to_store(&self, path: impl AsRef<Path>) -> io::Result<SpillReport> {
        let Some(store) = &self.store else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no result store attached",
            ));
        };
        let mut store = store.lock().expect("result store");
        migrate_spill(&mut store, path)
    }
}

/// Replays a legacy JSONL spill file into `store`, one record per
/// well-formed payload line, validating the spill header's revision
/// against the store's stamp exactly like [`ResultCache::load_from`]
/// does against the cache's. This is the one-shot migration behind
/// `bfdn-store-admin migrate` and `bfdn-serve --migrate-spill`.
///
/// # Errors
///
/// Propagates I/O errors from reading the spill or appending to the
/// store; malformed lines and revision refusals are counted in the
/// report instead.
pub fn migrate_spill(store: &mut Store, path: impl AsRef<Path>) -> io::Result<SpillReport> {
    let reader = io::BufReader::new(std::fs::File::open(path)?);
    let store_revision = store.revision().map(String::from);
    let mut report = SpillReport::default();
    let mut first_payload_line = true;
    let mut refuse = false;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if first_payload_line {
            first_payload_line = false;
            if let Some(header_revision) = parse_spill_header(&line) {
                if let (Some(ours), Some(theirs)) = (&store_revision, &header_revision) {
                    refuse = ours != theirs;
                    report.revision_mismatch = refuse;
                }
                continue;
            }
        }
        if refuse {
            report.refused += 1;
            continue;
        }
        // Parse before appending: only payloads the running build can
        // serve belong in the store.
        match ExploreResult::from_payload_json(&line) {
            Ok(result) => {
                let mut normalized = result;
                normalized.cached = false;
                store.put(&normalized.spec.canonical(), &normalized.payload_json())?;
                report.loaded += 1;
            }
            Err(_) => report.malformed += 1,
        }
    }
    Ok(report)
}

/// Recognizes a spill header line; returns its recorded revision
/// (`Some(None)` for an explicit `null`) or `None` when the line is not
/// a header.
fn parse_spill_header(line: &str) -> Option<Option<String>> {
    let v = crate::jsonval::Json::parse(line).ok()?;
    match v.get("spill").and_then(crate::jsonval::Json::as_str) {
        Some("bfdn-result-cache") => Some(
            v.get("revision")
                .and_then(crate::jsonval::Json::as_str)
                .map(String::from),
        ),
        _ => None,
    }
}

/// What [`ResultCache::load_from`] found in a spill file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpillReport {
    /// Lines successfully parsed and inserted.
    pub loaded: usize,
    /// Lines skipped as malformed.
    pub malformed: usize,
    /// Entries refused because the spill's revision differs from ours.
    pub refused: usize,
    /// `true` when the header named a different git revision.
    pub revision_mismatch: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MetricsPayload;

    fn result_for(seed: u64) -> ExploreResult {
        ExploreResult {
            spec: ExploreSpec::new("bfdn", "comb", 100, 4, seed),
            cached: false,
            nodes: 102,
            depth: 11,
            max_degree: 3,
            metrics: MetricsPayload {
                rounds: 50 + seed,
                moves: 400,
                idle: 3,
                stalled: 0,
                allowed_moves: 480,
                edges_discovered: 101,
                edge_events: 202,
            },
            bound: 400.25,
            margin: 400.25 - (50 + seed) as f64,
            manifest: None,
        }
    }

    #[test]
    fn hit_after_miss_returns_the_identical_result() {
        let cache = ResultCache::new(CacheConfig::default());
        let spec = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
        assert!(cache.get(&spec).is_none(), "first lookup is a miss");
        let computed = result_for(1);
        cache.put(&computed);
        let hit = cache.get(&spec).expect("hit after put");
        assert!(hit.cached, "hit is flagged");
        assert_eq!(hit.metrics, computed.metrics, "identical Metrics");
        assert_eq!(hit.payload_json(), computed.payload_json());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_options_are_distinct_addresses() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.put(&result_for(1));
        let mut with_delay = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
        with_delay.options.delay_ms = 10;
        assert!(cache.get(&with_delay).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // One shard makes the LRU order fully observable.
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        cache.put(&result_for(1));
        cache.put(&result_for(2));
        // Touch 1 so 2 becomes the coldest.
        assert!(cache.get(&result_for(1).spec).is_some());
        cache.put(&result_for(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&result_for(1).spec).is_some(), "kept (warm)");
        assert!(cache.get(&result_for(2).spec).is_none(), "evicted (cold)");
        assert!(cache.get(&result_for(3).spec).is_some(), "kept (new)");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_replaces_without_growing() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.put(&result_for(1));
        cache.put(&result_for(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn spill_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.jsonl");

        let cache = ResultCache::new(CacheConfig::default());
        for seed in 0..5 {
            cache.put(&result_for(seed));
        }
        assert_eq!(cache.spill_to(&path).unwrap(), 5);

        let warm = ResultCache::new(CacheConfig::default());
        let report = warm.load_from(&path).unwrap();
        assert_eq!(
            report,
            SpillReport {
                loaded: 5,
                ..SpillReport::default()
            }
        );
        assert_eq!(warm.stats().spill_loaded, 5);
        for seed in 0..5 {
            let hit = warm.get(&result_for(seed).spec).expect("warm hit");
            assert_eq!(hit.payload_json(), result_for(seed).payload_json());
        }

        // A truncated/corrupt line after the header is skipped, the rest
        // still loads.
        let text = std::fs::read_to_string(&path).unwrap();
        let (header, payloads) = text.split_once('\n').unwrap();
        let text = format!("{header}\n{{\"broken\":\n{payloads}");
        std::fs::write(&path, text).unwrap();
        let partial = ResultCache::new(CacheConfig::default());
        let report = partial.load_from(&path).unwrap();
        assert_eq!(report.malformed, 1);
        assert_eq!(report.loaded, 5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_from_a_different_revision_is_refused() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_revision_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.jsonl");

        let old = ResultCache::with_revision(CacheConfig::default(), Some("a".repeat(40)));
        for seed in 0..3 {
            old.put(&result_for(seed));
        }
        assert_eq!(old.spill_to(&path).unwrap(), 3);

        // Same revision: everything loads.
        let same = ResultCache::with_revision(CacheConfig::default(), Some("a".repeat(40)));
        let report = same.load_from(&path).unwrap();
        assert_eq!((report.loaded, report.refused), (3, 0));
        assert!(!report.revision_mismatch);

        // Different revision: every entry is refused, nothing resident.
        let changed = ResultCache::with_revision(CacheConfig::default(), Some("b".repeat(40)));
        let report = changed.load_from(&path).unwrap();
        assert_eq!((report.loaded, report.refused), (0, 3));
        assert!(report.revision_mismatch);
        assert!(changed.is_empty());
        assert_eq!(changed.stats().spill_loaded, 0);

        // Unknown revision on either side is accepted (tarball builds
        // must still warm-start their own spills).
        let unknown = ResultCache::with_revision(CacheConfig::default(), None);
        assert_eq!(unknown.load_from(&path).unwrap().loaded, 3);

        // A headerless legacy spill still loads.
        let text = std::fs::read_to_string(&path).unwrap();
        let legacy: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, legacy).unwrap();
        let compat = ResultCache::with_revision(CacheConfig::default(), Some("c".repeat(40)));
        assert_eq!(compat.load_from(&path).unwrap().loaded, 3);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_bytes_follow_inserts_replacements_and_evictions() {
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        assert_eq!(cache.stats().resident_bytes, 0);
        cache.put(&result_for(1));
        let one = cache.stats().resident_bytes;
        assert_eq!(one, result_for(1).payload_json().len() as u64);
        // Replacement swaps the accounted size, no double count.
        cache.put(&result_for(1));
        assert_eq!(cache.stats().resident_bytes, one);
        cache.put(&result_for(2));
        let two = cache.stats().resident_bytes;
        assert!(two > one);
        // Eviction releases the evicted entry's bytes.
        cache.put(&result_for(3));
        assert_eq!(cache.len(), 2);
        let after_evict = cache.stats().resident_bytes;
        assert!(after_evict < two + result_for(3).payload_json().len() as u64);
        assert_eq!(cache.stats().evictions, 1);
    }

    /// A store opened fresh in `dir` with revision `rev`.
    fn test_store(dir: &Path, rev: &str) -> bfdn_store::Store {
        let mut config = bfdn_store::StoreConfig::new(dir);
        config.revision = Some(rev.to_string());
        bfdn_store::Store::open(config).expect("open store").0
    }

    #[test]
    fn store_backed_get_survives_eviction_as_a_store_hit() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_store_hit_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Capacity 1, one shard: the second put evicts the first from
        // memory, but the write-through keeps it on disk.
        let mut cache = ResultCache::with_revision(
            CacheConfig {
                capacity: 1,
                shards: 1,
            },
            Some("r".repeat(40)),
        );
        cache.attach_store(test_store(&dir, &"r".repeat(40)), None);
        cache.put(&result_for(1));
        cache.put(&result_for(2));
        assert_eq!(cache.len(), 1, "memory tier holds one entry");

        let hit = cache.get(&result_for(1).spec).expect("served from disk");
        assert!(hit.cached, "store hits are flagged as cached");
        assert_eq!(
            hit.payload_json(),
            result_for(1).payload_json(),
            "byte-identical through the codec"
        );
        let stats = cache.stats();
        assert_eq!(stats.store_hits, 1, "disk fallback is its own outcome");
        assert_eq!(stats.misses, 0, "a store hit is not a miss");
        assert_eq!(stats.hits, 0, "…and not a memory hit");
        assert!(stats.segments >= 1);
        assert!(stats.on_disk_bytes > 0);

        // The record was re-admitted, so the next get is a memory hit.
        assert!(cache.get(&result_for(1).spec).is_some());
        assert_eq!(cache.stats().hits, 1);

        // A spec never stored anywhere is still a plain miss.
        assert!(cache.get(&result_for(99).spec).is_none());
        assert_eq!(cache.stats().misses, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_budget_is_a_hard_bound_with_disk_overflow() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_budget_test");
        let _ = std::fs::remove_dir_all(&dir);
        let one_payload = result_for(0).payload_json().len() as u64;
        // Budget fits ~3 payloads across 2 shards; flood it with 40.
        let budget = one_payload * 3;
        let mut cache = ResultCache::with_revision(
            CacheConfig {
                capacity: 1024,
                shards: 2,
            },
            Some("r".repeat(40)),
        );
        cache.attach_store(test_store(&dir, &"r".repeat(40)), Some(budget));
        for seed in 0..40 {
            cache.put(&result_for(seed));
            assert!(
                cache.stats().resident_bytes <= budget,
                "resident bytes {} exceed budget {budget} after seed {seed}",
                cache.stats().resident_bytes,
            );
        }
        assert!(cache.len() < 40, "memory tier is bounded");
        // Everything floods back from disk, byte-identical, and the
        // budget still holds while it does.
        for seed in 0..40 {
            let hit = cache.get(&result_for(seed).spec).expect("retrievable");
            assert_eq!(hit.payload_json(), result_for(seed).payload_json());
            assert!(cache.stats().resident_bytes <= budget);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 0, "nothing was lost");
        assert!(stats.store_hits > 0, "overflow came back from disk");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_restart_from_store_is_byte_identical_without_spill() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_restart_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rev = "r".repeat(40);
        let mut first = ResultCache::with_revision(CacheConfig::default(), Some(rev.clone()));
        first.attach_store(test_store(&dir, &rev), None);
        let mut expected = Vec::new();
        for seed in 0..8 {
            first.put(&result_for(seed));
            expected.push(result_for(seed).payload_json());
        }
        assert!(first.persist_store_index().unwrap());
        drop(first);

        // "Restart": a brand-new empty cache over the same directory.
        let mut second = ResultCache::with_revision(CacheConfig::default(), Some(rev.clone()));
        second.attach_store(test_store(&dir, &rev), None);
        assert!(second.is_empty(), "nothing preloaded into memory");
        for (seed, payload) in expected.iter().enumerate() {
            let hit = second
                .get(&result_for(seed as u64).spec)
                .expect("warm store hit");
            assert!(hit.cached);
            assert_eq!(&hit.payload_json(), payload, "byte-identical after restart");
        }
        assert_eq!(second.stats().store_hits, 8);
        assert_eq!(second.stats().misses, 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrating_a_foreign_revision_spill_into_a_store_refuses_it() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_migrate_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spill = dir.join("spill.jsonl");
        let old = ResultCache::with_revision(CacheConfig::default(), Some("a".repeat(40)));
        for seed in 0..3 {
            old.put(&result_for(seed));
        }
        old.spill_to(&spill).unwrap();

        // Foreign revision: the whole spill is refused, store stays empty.
        let mut foreign = test_store(&dir.join("store-b"), &"b".repeat(40));
        let report = migrate_spill(&mut foreign, &spill).unwrap();
        assert_eq!((report.loaded, report.refused), (0, 3));
        assert!(report.revision_mismatch);
        assert!(foreign.is_empty());

        // Matching revision: everything lands, and a second import just
        // supersedes (dead bytes for compaction, not duplicates).
        let mut matching = test_store(&dir.join("store-a"), &"a".repeat(40));
        let report = migrate_spill(&mut matching, &spill).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(matching.len(), 3);
        let report = migrate_spill(&mut matching, &spill).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(matching.len(), 3, "still three live records");
        assert!(
            matching.stats().dead_bytes > 0,
            "re-import leaves dead bytes"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_spill_to_store_requires_and_uses_the_attached_store() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_import_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spill = dir.join("spill.jsonl");
        let rev = "r".repeat(40);
        let source = ResultCache::with_revision(CacheConfig::default(), Some(rev.clone()));
        for seed in 0..4 {
            source.put(&result_for(seed));
        }
        source.spill_to(&spill).unwrap();

        let storeless = ResultCache::with_revision(CacheConfig::default(), Some(rev.clone()));
        assert!(storeless.import_spill_to_store(&spill).is_err());

        let mut cache = ResultCache::with_revision(CacheConfig::default(), Some(rev.clone()));
        cache.attach_store(test_store(&dir.join("store"), &rev), None);
        let report = cache.import_spill_to_store(&spill).unwrap();
        assert_eq!(report.loaded, 4);
        assert!(cache.is_empty(), "import fills the store, not memory");
        for seed in 0..4 {
            let hit = cache.get(&result_for(seed).spec).expect("from store");
            assert_eq!(hit.payload_json(), result_for(seed).payload_json());
        }
        assert_eq!(cache.stats().store_hits, 4);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let cache = ResultCache::new(CacheConfig {
            capacity: 4096,
            shards: 8,
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        let seed = t * 100 + i;
                        cache.put(&result_for(seed));
                        assert!(cache.get(&result_for(seed).spec).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
        assert_eq!(cache.stats().hits, 200);
    }
}
