//! The content-addressed result cache.
//!
//! Simulation runs are fully deterministic in their [`ExploreSpec`]
//! (seeded instance generation, deterministic explorers — see
//! [`crate::exec`]), so a completed [`ExploreResult`] is addressed by
//! the canonical form of the request that produced it:
//! [`ExploreSpec::canonical`] is the key, its FNV-1a hash picks the
//! shard, and the full canonical string is compared on lookup so a hash
//! collision can never serve the wrong payload.
//!
//! Entries live in a sharded in-memory LRU (per-shard mutexes keep
//! worker threads and connection handlers from serializing on one
//! lock). [`ResultCache::spill_to`] writes every resident payload as
//! one JSONL line for warm restarts; [`ResultCache::load_from`] reads
//! such a file back, so a restarted daemon answers yesterday's sweep
//! without re-simulating.

use crate::protocol::{fnv1a, CacheStatsPayload, ExploreResult, ExploreSpec};
use std::collections::HashMap;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sizing of a [`ResultCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total entries kept across all shards.
    pub capacity: usize,
    /// Shard count (rounded up to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            shards: 8,
        }
    }
}

/// One resident result plus its LRU clock reading.
struct Entry {
    result: ExploreResult,
    last_used: u64,
}

/// One independently locked slice of the key space.
#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
}

/// A sharded LRU of completed simulation results, keyed by canonical
/// request.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// An empty cache sized by `config`.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: config.capacity.div_ceil(shards).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, canonical: &str) -> &Mutex<Shard> {
        let h = fnv1a(canonical.as_bytes()) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks `spec` up; a hit returns the stored result with its
    /// `cached` flag set and refreshes the entry's recency.
    pub fn get(&self, spec: &ExploreSpec) -> Option<ExploreResult> {
        let canonical = spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
        match shard.map.get_mut(&canonical) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut result = entry.result.clone();
                result.cached = true;
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a completed result under its spec's canonical key,
    /// normalizing `cached` to `false` so the stored payload is exactly
    /// what a fresh computation produces. Evicts the least-recently-used
    /// entry of the shard when it is full.
    pub fn put(&self, result: &ExploreResult) {
        let canonical = result.spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut stored = result.clone();
        stored.cached = false;
        let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
        if !shard.map.contains_key(&canonical) && shard.map.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let replaced = shard
            .map
            .insert(
                canonical,
                Entry {
                    result: stored,
                    last_used: tick,
                },
            )
            .is_some();
        if !replaced {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wire-form counters.
    pub fn stats(&self) -> CacheStatsPayload {
        CacheStatsPayload {
            entries: self.len() as u64,
            capacity: (self.per_shard_capacity * self.shards.len()) as u64,
            shards: self.shards.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Writes every resident payload as one JSONL line (the cache-stable
    /// [`ExploreResult::payload_json`] form).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn spill_to(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut lines = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard");
            for entry in shard.map.values() {
                w.write_all(entry.result.payload_json().as_bytes())?;
                w.write_all(b"\n")?;
                lines += 1;
            }
        }
        w.flush()?;
        Ok(lines)
    }

    /// Loads a spill file, inserting every well-formed line; malformed
    /// lines are counted, not fatal (a truncated spill from a crashed
    /// daemon must not brick the restart).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error opening or reading the file.
    pub fn load_from(&self, path: impl AsRef<Path>) -> io::Result<SpillReport> {
        let reader = io::BufReader::new(std::fs::File::open(path)?);
        let mut report = SpillReport::default();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match ExploreResult::from_payload_json(&line) {
                Ok(result) => {
                    self.put(&result);
                    report.loaded += 1;
                }
                Err(_) => report.malformed += 1,
            }
        }
        Ok(report)
    }
}

/// What [`ResultCache::load_from`] found in a spill file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillReport {
    /// Lines successfully parsed and inserted.
    pub loaded: usize,
    /// Lines skipped as malformed.
    pub malformed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MetricsPayload;

    fn result_for(seed: u64) -> ExploreResult {
        ExploreResult {
            spec: ExploreSpec::new("bfdn", "comb", 100, 4, seed),
            cached: false,
            nodes: 102,
            depth: 11,
            max_degree: 3,
            metrics: MetricsPayload {
                rounds: 50 + seed,
                moves: 400,
                idle: 3,
                stalled: 0,
                allowed_moves: 480,
                edges_discovered: 101,
                edge_events: 202,
            },
            bound: 400.25,
            margin: 400.25 - (50 + seed) as f64,
            manifest: None,
        }
    }

    #[test]
    fn hit_after_miss_returns_the_identical_result() {
        let cache = ResultCache::new(CacheConfig::default());
        let spec = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
        assert!(cache.get(&spec).is_none(), "first lookup is a miss");
        let computed = result_for(1);
        cache.put(&computed);
        let hit = cache.get(&spec).expect("hit after put");
        assert!(hit.cached, "hit is flagged");
        assert_eq!(hit.metrics, computed.metrics, "identical Metrics");
        assert_eq!(hit.payload_json(), computed.payload_json());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_options_are_distinct_addresses() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.put(&result_for(1));
        let mut with_delay = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
        with_delay.options.delay_ms = 10;
        assert!(cache.get(&with_delay).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // One shard makes the LRU order fully observable.
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        cache.put(&result_for(1));
        cache.put(&result_for(2));
        // Touch 1 so 2 becomes the coldest.
        assert!(cache.get(&result_for(1).spec).is_some());
        cache.put(&result_for(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&result_for(1).spec).is_some(), "kept (warm)");
        assert!(cache.get(&result_for(2).spec).is_none(), "evicted (cold)");
        assert!(cache.get(&result_for(3).spec).is_some(), "kept (new)");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_replaces_without_growing() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.put(&result_for(1));
        cache.put(&result_for(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn spill_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.jsonl");

        let cache = ResultCache::new(CacheConfig::default());
        for seed in 0..5 {
            cache.put(&result_for(seed));
        }
        assert_eq!(cache.spill_to(&path).unwrap(), 5);

        let warm = ResultCache::new(CacheConfig::default());
        let report = warm.load_from(&path).unwrap();
        assert_eq!(
            report,
            SpillReport {
                loaded: 5,
                malformed: 0
            }
        );
        for seed in 0..5 {
            let hit = warm.get(&result_for(seed).spec).expect("warm hit");
            assert_eq!(hit.payload_json(), result_for(seed).payload_json());
        }

        // A truncated/corrupt line is skipped, the rest still loads.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.insert_str(0, "{\"broken\":\n");
        std::fs::write(&path, text).unwrap();
        let partial = ResultCache::new(CacheConfig::default());
        let report = partial.load_from(&path).unwrap();
        assert_eq!(report.malformed, 1);
        assert_eq!(report.loaded, 5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let cache = ResultCache::new(CacheConfig {
            capacity: 4096,
            shards: 8,
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        let seed = t * 100 + i;
                        cache.put(&result_for(seed));
                        assert!(cache.get(&result_for(seed).spec).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
        assert_eq!(cache.stats().hits, 200);
    }
}
