//! The content-addressed result cache.
//!
//! Simulation runs are fully deterministic in their [`ExploreSpec`]
//! (seeded instance generation, deterministic explorers — see
//! [`crate::exec`]), so a completed [`ExploreResult`] is addressed by
//! the canonical form of the request that produced it:
//! [`ExploreSpec::canonical`] is the key, its FNV-1a hash picks the
//! shard, and the full canonical string is compared on lookup so a hash
//! collision can never serve the wrong payload.
//!
//! Entries live in a sharded in-memory LRU (per-shard mutexes keep
//! worker threads and connection handlers from serializing on one
//! lock). [`ResultCache::spill_to`] writes every resident payload as
//! one JSONL line for warm restarts; [`ResultCache::load_from`] reads
//! such a file back, so a restarted daemon answers yesterday's sweep
//! without re-simulating.
//!
//! Spill files are *revision-aware*: the first line is a header
//! recording the git revision the daemon ran from, and a warm start
//! refuses a spill whose recorded revision definitely differs from the
//! running binary's — results are deterministic in the spec only for a
//! fixed simulation code base, so entries must not survive a code
//! change. An unknown revision on either side (e.g. running from an
//! exported tarball) is accepted, and headerless legacy spills still
//! load.

use crate::protocol::{fnv1a, CacheStatsPayload, ExploreResult, ExploreSpec};
use bfdn_obs::json::JsonObject;
use std::collections::HashMap;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sizing of a [`ResultCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total entries kept across all shards.
    pub capacity: usize,
    /// Shard count (rounded up to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            shards: 8,
        }
    }
}

/// One resident result plus its LRU clock reading and the byte size of
/// its cache-stable payload (for the resident-bytes gauge).
struct Entry {
    result: ExploreResult,
    last_used: u64,
    bytes: u64,
}

/// One independently locked slice of the key space.
#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
}

/// A sharded LRU of completed simulation results, keyed by canonical
/// request.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    spill_loaded: AtomicU64,
    resident_bytes: AtomicU64,
    revision: Option<String>,
}

impl ResultCache {
    /// An empty cache sized by `config`, stamped with the current git
    /// revision (when discoverable) for revision-aware spill files.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_revision(config, bfdn_obs::git_revision())
    }

    /// An empty cache with an explicit revision stamp — what spill
    /// headers are written with and validated against. Tests use this to
    /// simulate a daemon restarted under different simulation code.
    pub fn with_revision(config: CacheConfig, revision: Option<String>) -> Self {
        let shards = config.shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: config.capacity.div_ceil(shards).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spill_loaded: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            revision,
        }
    }

    fn shard_for(&self, canonical: &str) -> &Mutex<Shard> {
        let h = fnv1a(canonical.as_bytes()) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks `spec` up; a hit returns the stored result with its
    /// `cached` flag set and refreshes the entry's recency.
    pub fn get(&self, spec: &ExploreSpec) -> Option<ExploreResult> {
        let canonical = spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
        match shard.map.get_mut(&canonical) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut result = entry.result.clone();
                result.cached = true;
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`ResultCache::get`] but without touching the hit/miss
    /// counters: peer cache-fill probes answer from whatever happens to
    /// be resident, and another shard's traffic must not skew this
    /// shard's client-facing hit ratio. Serving a peer still refreshes
    /// the entry's recency — a result the ring keeps asking for is
    /// worth keeping.
    pub fn peek(&self, spec: &ExploreSpec) -> Option<ExploreResult> {
        let canonical = spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
        let entry = shard.map.get_mut(&canonical)?;
        entry.last_used = tick;
        let mut result = entry.result.clone();
        result.cached = true;
        Some(result)
    }

    /// Stores a completed result under its spec's canonical key,
    /// normalizing `cached` to `false` so the stored payload is exactly
    /// what a fresh computation produces. Evicts the least-recently-used
    /// entry of the shard when it is full.
    pub fn put(&self, result: &ExploreResult) {
        let canonical = result.spec.canonical();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut stored = result.clone();
        stored.cached = false;
        let bytes = stored.payload_json().len() as u64;
        let mut shard = self.shard_for(&canonical).lock().expect("cache shard");
        if !shard.map.contains_key(&canonical) && shard.map.len() >= self.per_shard_capacity {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = shard.map.remove(&oldest) {
                    self.resident_bytes
                        .fetch_sub(evicted.bytes, Ordering::Relaxed);
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let replaced = shard.map.insert(
            canonical,
            Entry {
                result: stored,
                last_used: tick,
                bytes,
            },
        );
        if let Some(old) = &replaced {
            self.resident_bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        } else {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wire-form counters.
    pub fn stats(&self) -> CacheStatsPayload {
        CacheStatsPayload {
            entries: self.len() as u64,
            capacity: (self.per_shard_capacity * self.shards.len()) as u64,
            shards: self.shards.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            spill_loaded: self.spill_loaded.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// The revision stamp spill headers are written with.
    pub fn revision(&self) -> Option<&str> {
        self.revision.as_deref()
    }

    /// Writes the spill header followed by every resident payload as one
    /// JSONL line each (the cache-stable [`ExploreResult::payload_json`]
    /// form); returns the number of payload lines.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn spill_to(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let mut header = JsonObject::new();
        header.str("spill", "bfdn-result-cache");
        match &self.revision {
            Some(rev) => header.str("revision", rev),
            None => header.raw("revision", "null"),
        };
        w.write_all(header.finish().as_bytes())?;
        w.write_all(b"\n")?;
        let mut lines = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard");
            for entry in shard.map.values() {
                w.write_all(entry.result.payload_json().as_bytes())?;
                w.write_all(b"\n")?;
                lines += 1;
            }
        }
        w.flush()?;
        Ok(lines)
    }

    /// Loads a spill file, inserting every well-formed line; malformed
    /// lines are counted, not fatal (a truncated spill from a crashed
    /// daemon must not brick the restart).
    ///
    /// When the file's header records a git revision that definitely
    /// differs from this cache's, *every* entry is refused: a code
    /// change invalidates the determinism guarantee the cache relies
    /// on. Headerless legacy files and unknown revisions (either side)
    /// load normally.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error opening or reading the file.
    pub fn load_from(&self, path: impl AsRef<Path>) -> io::Result<SpillReport> {
        let reader = io::BufReader::new(std::fs::File::open(path)?);
        let mut report = SpillReport::default();
        let mut first_payload_line = true;
        let mut refuse = false;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if first_payload_line {
                first_payload_line = false;
                if let Some(header_revision) = parse_spill_header(&line) {
                    if let (Some(ours), Some(theirs)) = (&self.revision, &header_revision) {
                        refuse = ours != theirs;
                        report.revision_mismatch = refuse;
                    }
                    continue; // The header is not a payload either way.
                }
            }
            if refuse {
                report.refused += 1;
                continue;
            }
            match ExploreResult::from_payload_json(&line) {
                Ok(result) => {
                    self.put(&result);
                    self.spill_loaded.fetch_add(1, Ordering::Relaxed);
                    report.loaded += 1;
                }
                Err(_) => report.malformed += 1,
            }
        }
        Ok(report)
    }
}

/// Recognizes a spill header line; returns its recorded revision
/// (`Some(None)` for an explicit `null`) or `None` when the line is not
/// a header.
fn parse_spill_header(line: &str) -> Option<Option<String>> {
    let v = crate::jsonval::Json::parse(line).ok()?;
    match v.get("spill").and_then(crate::jsonval::Json::as_str) {
        Some("bfdn-result-cache") => Some(
            v.get("revision")
                .and_then(crate::jsonval::Json::as_str)
                .map(String::from),
        ),
        _ => None,
    }
}

/// What [`ResultCache::load_from`] found in a spill file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpillReport {
    /// Lines successfully parsed and inserted.
    pub loaded: usize,
    /// Lines skipped as malformed.
    pub malformed: usize,
    /// Entries refused because the spill's revision differs from ours.
    pub refused: usize,
    /// `true` when the header named a different git revision.
    pub revision_mismatch: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MetricsPayload;

    fn result_for(seed: u64) -> ExploreResult {
        ExploreResult {
            spec: ExploreSpec::new("bfdn", "comb", 100, 4, seed),
            cached: false,
            nodes: 102,
            depth: 11,
            max_degree: 3,
            metrics: MetricsPayload {
                rounds: 50 + seed,
                moves: 400,
                idle: 3,
                stalled: 0,
                allowed_moves: 480,
                edges_discovered: 101,
                edge_events: 202,
            },
            bound: 400.25,
            margin: 400.25 - (50 + seed) as f64,
            manifest: None,
        }
    }

    #[test]
    fn hit_after_miss_returns_the_identical_result() {
        let cache = ResultCache::new(CacheConfig::default());
        let spec = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
        assert!(cache.get(&spec).is_none(), "first lookup is a miss");
        let computed = result_for(1);
        cache.put(&computed);
        let hit = cache.get(&spec).expect("hit after put");
        assert!(hit.cached, "hit is flagged");
        assert_eq!(hit.metrics, computed.metrics, "identical Metrics");
        assert_eq!(hit.payload_json(), computed.payload_json());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_options_are_distinct_addresses() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.put(&result_for(1));
        let mut with_delay = ExploreSpec::new("bfdn", "comb", 100, 4, 1);
        with_delay.options.delay_ms = 10;
        assert!(cache.get(&with_delay).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // One shard makes the LRU order fully observable.
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        cache.put(&result_for(1));
        cache.put(&result_for(2));
        // Touch 1 so 2 becomes the coldest.
        assert!(cache.get(&result_for(1).spec).is_some());
        cache.put(&result_for(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&result_for(1).spec).is_some(), "kept (warm)");
        assert!(cache.get(&result_for(2).spec).is_none(), "evicted (cold)");
        assert!(cache.get(&result_for(3).spec).is_some(), "kept (new)");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_replaces_without_growing() {
        let cache = ResultCache::new(CacheConfig::default());
        cache.put(&result_for(1));
        cache.put(&result_for(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn spill_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.jsonl");

        let cache = ResultCache::new(CacheConfig::default());
        for seed in 0..5 {
            cache.put(&result_for(seed));
        }
        assert_eq!(cache.spill_to(&path).unwrap(), 5);

        let warm = ResultCache::new(CacheConfig::default());
        let report = warm.load_from(&path).unwrap();
        assert_eq!(
            report,
            SpillReport {
                loaded: 5,
                ..SpillReport::default()
            }
        );
        assert_eq!(warm.stats().spill_loaded, 5);
        for seed in 0..5 {
            let hit = warm.get(&result_for(seed).spec).expect("warm hit");
            assert_eq!(hit.payload_json(), result_for(seed).payload_json());
        }

        // A truncated/corrupt line after the header is skipped, the rest
        // still loads.
        let text = std::fs::read_to_string(&path).unwrap();
        let (header, payloads) = text.split_once('\n').unwrap();
        let text = format!("{header}\n{{\"broken\":\n{payloads}");
        std::fs::write(&path, text).unwrap();
        let partial = ResultCache::new(CacheConfig::default());
        let report = partial.load_from(&path).unwrap();
        assert_eq!(report.malformed, 1);
        assert_eq!(report.loaded, 5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_from_a_different_revision_is_refused() {
        let dir = std::env::temp_dir().join("bfdn_service_cache_revision_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.jsonl");

        let old = ResultCache::with_revision(CacheConfig::default(), Some("a".repeat(40)));
        for seed in 0..3 {
            old.put(&result_for(seed));
        }
        assert_eq!(old.spill_to(&path).unwrap(), 3);

        // Same revision: everything loads.
        let same = ResultCache::with_revision(CacheConfig::default(), Some("a".repeat(40)));
        let report = same.load_from(&path).unwrap();
        assert_eq!((report.loaded, report.refused), (3, 0));
        assert!(!report.revision_mismatch);

        // Different revision: every entry is refused, nothing resident.
        let changed = ResultCache::with_revision(CacheConfig::default(), Some("b".repeat(40)));
        let report = changed.load_from(&path).unwrap();
        assert_eq!((report.loaded, report.refused), (0, 3));
        assert!(report.revision_mismatch);
        assert!(changed.is_empty());
        assert_eq!(changed.stats().spill_loaded, 0);

        // Unknown revision on either side is accepted (tarball builds
        // must still warm-start their own spills).
        let unknown = ResultCache::with_revision(CacheConfig::default(), None);
        assert_eq!(unknown.load_from(&path).unwrap().loaded, 3);

        // A headerless legacy spill still loads.
        let text = std::fs::read_to_string(&path).unwrap();
        let legacy: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, legacy).unwrap();
        let compat = ResultCache::with_revision(CacheConfig::default(), Some("c".repeat(40)));
        assert_eq!(compat.load_from(&path).unwrap().loaded, 3);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_bytes_follow_inserts_replacements_and_evictions() {
        let cache = ResultCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
        });
        assert_eq!(cache.stats().resident_bytes, 0);
        cache.put(&result_for(1));
        let one = cache.stats().resident_bytes;
        assert_eq!(one, result_for(1).payload_json().len() as u64);
        // Replacement swaps the accounted size, no double count.
        cache.put(&result_for(1));
        assert_eq!(cache.stats().resident_bytes, one);
        cache.put(&result_for(2));
        let two = cache.stats().resident_bytes;
        assert!(two > one);
        // Eviction releases the evicted entry's bytes.
        cache.put(&result_for(3));
        assert_eq!(cache.len(), 2);
        let after_evict = cache.stats().resident_bytes;
        assert!(after_evict < two + result_for(3).payload_json().len() as u64);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_readers_and_writers_do_not_lose_entries() {
        let cache = ResultCache::new(CacheConfig {
            capacity: 4096,
            shards: 8,
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        let seed = t * 100 + i;
                        cache.put(&result_for(seed));
                        assert!(cache.get(&result_for(seed).spec).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
        assert_eq!(cache.stats().hits, 200);
    }
}
