//! `bfdn-request` — issue one request to a running `bfdn-serve`.
//!
//! ```text
//! bfdn-request [--addr HOST:PORT] [--retry N] [--backoff-ms M]
//!              [--backoff-jitter MS] [--jitter-seed N]
//!              explore --algo A --family F --n N --k K --seed S
//!              [--manifest] [--delay-ms MS]
//! bfdn-request [--addr HOST:PORT] [--retry N] [--backoff-ms M]
//!              [--backoff-jitter MS] [--jitter-seed N]
//!              batch --algos A,B --families F,G
//!              --n N --ks K1,K2 --seeds S [--delay-ms MS]
//! bfdn-request [--addr HOST:PORT] status
//! bfdn-request [--addr HOST:PORT] cache-stats
//! bfdn-request [--addr HOST:PORT] metrics
//! bfdn-request [--addr HOST:PORT] shutdown
//! ```
//!
//! `explore` and `batch` print the cache-stable payload JSON of each
//! result to stdout, one per line and in deterministic request order —
//! so two identical invocations against a warm vs. cold server must
//! produce byte-identical stdout, which is exactly what the CI service
//! smoke job diffs. Bookkeeping (`cached=…`, `hits=… misses=…`) goes to
//! stderr. `batch` expands the cross product `algos × families × ks ×
//! seeds 0..S` in that nesting order. `metrics` prints the daemon's
//! Prometheus exposition.
//!
//! A structured server error exits non-zero with a distinct code:
//! `3` for `busy` backpressure, `4` for a draining (`shutting_down`)
//! server, `1` for everything else. `--retry N` re-issues a
//! `busy`-rejected explore/batch up to `N` more times, sleeping
//! `--backoff-ms M` (default 100) plus a uniformly drawn `0..=J` ms of
//! jitter (`--backoff-jitter J`, default = the backoff itself, so
//! sleeps span one to two backoff intervals) between attempts — the
//! jitter decorrelates clients rejected by the same Busy burst so they
//! do not re-arrive as a thundering herd. The jitter stream is seeded
//! (`--jitter-seed`, default: process id) and therefore reproducible.

use bfdn_service::client::Client;
use bfdn_service::protocol::{ErrorCode, ExploreSpec, Request, Response, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

struct Invocation {
    addr: String,
    retry: u32,
    backoff_ms: u64,
    backoff_jitter: u64,
    jitter_seed: u64,
    command: Command,
}

enum Command {
    Explore(ExploreSpec),
    Batch(Vec<ExploreSpec>),
    Status,
    CacheStats,
    Metrics,
    Shutdown,
}

fn parse(args: Vec<String>) -> Result<Invocation, String> {
    let mut it = args.into_iter().peekable();
    let mut addr = "127.0.0.1:4077".to_string();
    let mut retry = 0u32;
    let mut backoff_ms = 100u64;
    let mut backoff_jitter: Option<u64> = None;
    let mut jitter_seed = u64::from(std::process::id());
    loop {
        match it.peek().map(String::as_str) {
            Some("--addr") => {
                it.next();
                addr = it.next().ok_or("--addr needs a value")?;
            }
            Some("--retry") => {
                it.next();
                let v = it.next().ok_or("--retry needs a value")?;
                retry = v.parse().map_err(|_| format!("bad --retry `{v}`"))?;
            }
            Some("--backoff-ms") => {
                it.next();
                let v = it.next().ok_or("--backoff-ms needs a value")?;
                backoff_ms = v.parse().map_err(|_| format!("bad --backoff-ms `{v}`"))?;
            }
            Some("--backoff-jitter") => {
                it.next();
                let v = it.next().ok_or("--backoff-jitter needs a value")?;
                backoff_jitter =
                    Some(v.parse().map_err(|_| format!("bad --backoff-jitter `{v}`"))?);
            }
            Some("--jitter-seed") => {
                it.next();
                let v = it.next().ok_or("--jitter-seed needs a value")?;
                jitter_seed = v.parse().map_err(|_| format!("bad --jitter-seed `{v}`"))?;
            }
            _ => break,
        }
    }
    // Full jitter by default: an extra uniform 0..=backoff on top of the
    // fixed backoff keeps simultaneously rejected clients decorrelated.
    let backoff_jitter = backoff_jitter.unwrap_or(backoff_ms);
    let verb = it.next().ok_or(
        "missing command (one of: explore, batch, status, cache-stats, metrics, shutdown)",
    )?;
    let rest: Vec<String> = it.collect();
    let command = match verb.as_str() {
        "explore" => Command::Explore(parse_explore(rest)?),
        "batch" => Command::Batch(parse_batch(rest)?),
        "status" => Command::Status,
        "cache-stats" => Command::CacheStats,
        "metrics" => Command::Metrics,
        "shutdown" => Command::Shutdown,
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Invocation {
        addr,
        retry,
        backoff_ms,
        backoff_jitter,
        jitter_seed,
        command,
    })
}

fn parse_explore(args: Vec<String>) -> Result<ExploreSpec, String> {
    let mut spec = ExploreSpec::new("bfdn", "random-recursive", 1000, 8, 42);
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--algo" => spec.algorithm = value("--algo")?,
            "--family" => spec.family = value("--family")?,
            "--n" => spec.n = parse_u64("--n", &value("--n")?)?,
            "--k" => spec.k = parse_u64("--k", &value("--k")?)?,
            "--seed" => spec.seed = parse_u64("--seed", &value("--seed")?)?,
            "--manifest" => spec.options.manifest = true,
            "--delay-ms" => spec.options.delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
            other => return Err(format!("unknown explore flag `{other}`")),
        }
    }
    Ok(spec)
}

fn parse_batch(args: Vec<String>) -> Result<Vec<ExploreSpec>, String> {
    let mut algos = vec!["bfdn".to_string()];
    let mut families = vec!["random-recursive".to_string()];
    let mut n = 1000u64;
    let mut ks = vec![8u64];
    let mut seeds = 1u64;
    let mut delay_ms = 0u64;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--algos" => algos = split_list(&value("--algos")?),
            "--families" => families = split_list(&value("--families")?),
            "--n" => n = parse_u64("--n", &value("--n")?)?,
            "--ks" => {
                ks = split_list(&value("--ks")?)
                    .iter()
                    .map(|v| parse_u64("--ks", v))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => seeds = parse_u64("--seeds", &value("--seeds")?)?,
            "--delay-ms" => delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
            other => return Err(format!("unknown batch flag `{other}`")),
        }
    }
    if seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let mut specs = Vec::new();
    for algo in &algos {
        for family in &families {
            for &k in &ks {
                for seed in 0..seeds {
                    let mut spec = ExploreSpec::new(algo.clone(), family.clone(), n, k, seed);
                    spec.options.delay_ms = delay_ms;
                    specs.push(spec);
                }
            }
        }
    }
    Ok(specs)
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

fn parse_u64(name: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("bad {name} `{v}`"))
}

/// A failure with its process exit code: `3` for busy backpressure,
/// `4` for a draining server, `1` otherwise.
struct Failure {
    message: String,
    exit: u8,
}

impl Failure {
    fn plain(message: impl Into<String>) -> Self {
        Failure {
            message: message.into(),
            exit: 1,
        }
    }

    /// Structured rendering of the daemon's error: the wire code tag,
    /// then the human-readable detail.
    fn from_wire(e: &WireError) -> Self {
        Failure {
            message: format!(
                "server refused the request ({}): {}",
                e.code.as_str(),
                e.message
            ),
            exit: match e.code {
                ErrorCode::Busy => 3,
                ErrorCode::ShuttingDown => 4,
                _ => 1,
            },
        }
    }

    fn from_client(e: &bfdn_service::client::ClientError) -> Self {
        match e.as_server_error() {
            Some(wire) => Failure::from_wire(wire),
            None => Failure::plain(e.to_string()),
        }
    }
}

/// Busy-retry policy: attempt budget, fixed backoff, and the seeded
/// jitter stream drawn on top of it.
struct RetryPolicy {
    retry: u32,
    backoff_ms: u64,
    backoff_jitter: u64,
    rng: StdRng,
}

impl RetryPolicy {
    fn new(invocation: &Invocation) -> Self {
        RetryPolicy {
            retry: invocation.retry,
            backoff_ms: invocation.backoff_ms,
            backoff_jitter: invocation.backoff_jitter,
            rng: StdRng::seed_from_u64(invocation.jitter_seed),
        }
    }

    /// The next sleep: fixed backoff plus a uniform draw from
    /// `0..=backoff_jitter` milliseconds.
    fn next_sleep_ms(&mut self) -> u64 {
        let jitter = match usize::try_from(self.backoff_jitter) {
            Ok(0) | Err(_) => 0,
            Ok(cap) => self.rng.random_range(0..=cap) as u64,
        };
        self.backoff_ms.saturating_add(jitter)
    }
}

/// Runs `attempt` up to `1 + retry` times, sleeping backoff + jitter
/// between tries; only `busy` answers are retried — a draining server
/// will not come back.
fn with_retry<T>(
    policy: &mut RetryPolicy,
    mut attempt: impl FnMut() -> Result<T, bfdn_service::client::ClientError>,
) -> Result<T, Failure> {
    let mut tries_left = policy.retry;
    loop {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let busy = e
                    .as_server_error()
                    .is_some_and(|w| w.code == ErrorCode::Busy);
                if busy && tries_left > 0 {
                    tries_left -= 1;
                    let sleep_ms = policy.next_sleep_ms();
                    eprintln!(
                        "bfdn-request: server busy, retrying in {sleep_ms} ms ({tries_left} retries left)"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                    continue;
                }
                let mut failure = Failure::from_client(&e);
                if busy {
                    failure.message =
                        format!("{} (after {} attempts)", failure.message, policy.retry + 1);
                }
                return Err(failure);
            }
        }
    }
}

fn run(invocation: Invocation) -> Result<(), Failure> {
    let mut policy = RetryPolicy::new(&invocation);
    let mut client = Client::connect(&invocation.addr)
        .map_err(|e| Failure::plain(format!("cannot connect to {}: {e}", invocation.addr)))?;
    match invocation.command {
        Command::Explore(spec) => {
            let result = with_retry(&mut policy, || client.explore(spec.clone()))?;
            eprintln!("cached={}", result.cached);
            println!("{}", result.payload_json());
        }
        Command::Batch(specs) => {
            let count = specs.len();
            let (results, hits, misses) =
                with_retry(&mut policy, || client.batch(specs.clone()))?;
            for result in &results {
                println!("{}", result.payload_json());
            }
            eprintln!("hits={hits} misses={misses} ({count} items)");
        }
        Command::Status => {
            print_document(&mut client, &Request::Status)?;
        }
        Command::CacheStats => {
            print_document(&mut client, &Request::CacheStats)?;
        }
        Command::Metrics => {
            let text = client.metrics().map_err(|e| Failure::from_client(&e))?;
            print!("{text}");
        }
        Command::Shutdown => {
            client.shutdown().map_err(|e| Failure::from_client(&e))?;
            eprintln!("server acknowledged shutdown");
        }
    }
    Ok(())
}

/// Prints the raw (already-JSON) reply document for introspection verbs.
fn print_document(client: &mut Client, request: &Request) -> Result<(), Failure> {
    match client
        .request(request)
        .map_err(|e| Failure::from_client(&e))?
    {
        Response::Error(e) => Err(Failure::from_wire(&e)),
        reply => {
            println!("{}", reply.to_json());
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1).collect()) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("bfdn-request: {e}");
            return ExitCode::from(2);
        }
    };
    match run(invocation) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bfdn-request: {}", e.message);
            ExitCode::from(e.exit)
        }
    }
}
