//! `bfdn-request` — issue one request to a running `bfdn-serve`.
//!
//! ```text
//! bfdn-request [--addr HOST:PORT] explore --algo A --family F --n N --k K --seed S
//!              [--manifest] [--delay-ms MS]
//! bfdn-request [--addr HOST:PORT] batch --algos A,B --families F,G
//!              --n N --ks K1,K2 --seeds S [--delay-ms MS]
//! bfdn-request [--addr HOST:PORT] status
//! bfdn-request [--addr HOST:PORT] cache-stats
//! bfdn-request [--addr HOST:PORT] shutdown
//! ```
//!
//! `explore` and `batch` print the cache-stable payload JSON of each
//! result to stdout, one per line and in deterministic request order —
//! so two identical invocations against a warm vs. cold server must
//! produce byte-identical stdout, which is exactly what the CI service
//! smoke job diffs. Bookkeeping (`cached=…`, `hits=… misses=…`) goes to
//! stderr. `batch` expands the cross product `algos × families × ks ×
//! seeds 0..S` in that nesting order.

use bfdn_service::client::Client;
use bfdn_service::protocol::{ExploreSpec, Request, Response};
use std::process::ExitCode;

struct Invocation {
    addr: String,
    command: Command,
}

enum Command {
    Explore(ExploreSpec),
    Batch(Vec<ExploreSpec>),
    Status,
    CacheStats,
    Shutdown,
}

fn parse(args: Vec<String>) -> Result<Invocation, String> {
    let mut it = args.into_iter().peekable();
    let mut addr = "127.0.0.1:4077".to_string();
    if it.peek().map(String::as_str) == Some("--addr") {
        it.next();
        addr = it.next().ok_or("--addr needs a value")?;
    }
    let verb = it
        .next()
        .ok_or("missing command (one of: explore, batch, status, cache-stats, shutdown)")?;
    let rest: Vec<String> = it.collect();
    let command = match verb.as_str() {
        "explore" => Command::Explore(parse_explore(rest)?),
        "batch" => Command::Batch(parse_batch(rest)?),
        "status" => Command::Status,
        "cache-stats" => Command::CacheStats,
        "shutdown" => Command::Shutdown,
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Invocation { addr, command })
}

fn parse_explore(args: Vec<String>) -> Result<ExploreSpec, String> {
    let mut spec = ExploreSpec::new("bfdn", "random-recursive", 1000, 8, 42);
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--algo" => spec.algorithm = value("--algo")?,
            "--family" => spec.family = value("--family")?,
            "--n" => spec.n = parse_u64("--n", &value("--n")?)?,
            "--k" => spec.k = parse_u64("--k", &value("--k")?)?,
            "--seed" => spec.seed = parse_u64("--seed", &value("--seed")?)?,
            "--manifest" => spec.options.manifest = true,
            "--delay-ms" => spec.options.delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
            other => return Err(format!("unknown explore flag `{other}`")),
        }
    }
    Ok(spec)
}

fn parse_batch(args: Vec<String>) -> Result<Vec<ExploreSpec>, String> {
    let mut algos = vec!["bfdn".to_string()];
    let mut families = vec!["random-recursive".to_string()];
    let mut n = 1000u64;
    let mut ks = vec![8u64];
    let mut seeds = 1u64;
    let mut delay_ms = 0u64;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--algos" => algos = split_list(&value("--algos")?),
            "--families" => families = split_list(&value("--families")?),
            "--n" => n = parse_u64("--n", &value("--n")?)?,
            "--ks" => {
                ks = split_list(&value("--ks")?)
                    .iter()
                    .map(|v| parse_u64("--ks", v))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => seeds = parse_u64("--seeds", &value("--seeds")?)?,
            "--delay-ms" => delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
            other => return Err(format!("unknown batch flag `{other}`")),
        }
    }
    if seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let mut specs = Vec::new();
    for algo in &algos {
        for family in &families {
            for &k in &ks {
                for seed in 0..seeds {
                    let mut spec = ExploreSpec::new(algo.clone(), family.clone(), n, k, seed);
                    spec.options.delay_ms = delay_ms;
                    specs.push(spec);
                }
            }
        }
    }
    Ok(specs)
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

fn parse_u64(name: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("bad {name} `{v}`"))
}

fn run(invocation: Invocation) -> Result<(), String> {
    let mut client = Client::connect(&invocation.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", invocation.addr))?;
    match invocation.command {
        Command::Explore(spec) => {
            let result = client.explore(spec).map_err(|e| e.to_string())?;
            eprintln!("cached={}", result.cached);
            println!("{}", result.payload_json());
        }
        Command::Batch(specs) => {
            let count = specs.len();
            let (results, hits, misses) = client.batch(specs).map_err(|e| e.to_string())?;
            for result in &results {
                println!("{}", result.payload_json());
            }
            eprintln!("hits={hits} misses={misses} ({count} items)");
        }
        Command::Status => {
            print_document(&mut client, &Request::Status)?;
        }
        Command::CacheStats => {
            print_document(&mut client, &Request::CacheStats)?;
        }
        Command::Shutdown => {
            client.shutdown().map_err(|e| e.to_string())?;
            eprintln!("server acknowledged shutdown");
        }
    }
    Ok(())
}

/// Prints the raw (already-JSON) reply document for introspection verbs.
fn print_document(client: &mut Client, request: &Request) -> Result<(), String> {
    match client.request(request).map_err(|e| e.to_string())? {
        Response::Error(e) => Err(e.to_string()),
        reply => {
            println!("{}", reply.to_json());
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1).collect()) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("bfdn-request: {e}");
            return ExitCode::from(2);
        }
    };
    match run(invocation) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bfdn-request: {e}");
            ExitCode::FAILURE
        }
    }
}
