//! `bfdn-request` — issue one request to a running `bfdn-serve`.
//!
//! ```text
//! bfdn-request [--addr HOST:PORT] [--retry N] [--backoff-ms M]
//!              [--backoff-jitter MS] [--jitter-seed N] [--trace]
//!              [--cluster H:P,H:P,...] [--connect-timeout-ms MS]
//!              explore --algo A --family F --n N --k K --seed S
//!              [--manifest] [--delay-ms MS]
//! bfdn-request [--addr HOST:PORT] [--retry N] [--backoff-ms M]
//!              [--backoff-jitter MS] [--jitter-seed N] [--trace]
//!              [--cluster H:P,H:P,...] [--connect-timeout-ms MS]
//!              batch --algos A,B --families F,G
//!              --n N --ks K1,K2 --seeds S [--delay-ms MS]
//! bfdn-request [--addr HOST:PORT] trace [--id HEX16]
//! bfdn-request [--addr HOST:PORT] status
//! bfdn-request [--addr HOST:PORT] cache-stats
//! bfdn-request [--addr HOST:PORT] metrics
//! bfdn-request [--addr HOST:PORT] shutdown
//! ```
//!
//! `explore` and `batch` print the cache-stable payload JSON of each
//! result to stdout, one per line and in deterministic request order —
//! so two identical invocations against a warm vs. cold server must
//! produce byte-identical stdout, which is exactly what the CI service
//! smoke job diffs. Bookkeeping (`cached=…`, `hits=… misses=…`) goes to
//! stderr. `batch` expands the cross product `algos × families × ks ×
//! seeds 0..S` in that nesting order. `metrics` prints the daemon's
//! Prometheus exposition.
//!
//! A structured server error exits non-zero with a distinct code:
//! `3` for `busy` backpressure, `4` for a draining (`shutting_down`)
//! server, `1` for everything else. `--retry N` re-issues a
//! `busy`-rejected explore/batch up to `N` more times, sleeping
//! `--backoff-ms M` (default 100) plus a uniformly drawn `0..=J` ms of
//! jitter (`--backoff-jitter J`, default = the backoff itself, so
//! sleeps span one to two backoff intervals) between attempts — the
//! jitter decorrelates clients rejected by the same Busy burst so they
//! do not re-arrive as a thundering herd. The jitter stream is seeded
//! (`--jitter-seed`, default: process id) and therefore reproducible.
//!
//! `--cluster` takes the shard list of a multi-daemon cluster instead
//! of `--addr`: the request's home shard is picked by hashing the spec
//! key (so repeat invocations land on the same shard's warm cache), and
//! connect failures fail over linearly through the remaining shards —
//! any shard can serve any spec, peer cache-fill keeps re-execution
//! rare. This is deliberately a *thin* client; full consistent-hash
//! routing lives in `bfdn-cluster-proxy`. `--connect-timeout-ms` bounds
//! each dial (default: the OS connect timeout — minutes — when talking
//! to one daemon, 250 ms per shard in `--cluster` mode so a dead shard
//! costs a bounded delay).
//!
//! `--trace` attaches a client-generated trace id (derived from the
//! jitter seed, so reproducible with `--jitter-seed`) to the explore or
//! batch request, then fetches the server-side span tree for that id
//! and prints an indented breakdown to stderr. With `--cluster`, the
//! breakdown is *stitched*: every shard's span ring is pulled for the
//! id and joined into one cross-process tree, so a peer cache-fill
//! shows up as the remote shard's subtree (tagged `[shard]`) under the
//! home shard's `peer_fill` span. Busy/draining failures (exit codes 3
//! and 4) include the trace id so the rejected attempt can still be
//! found in the server's span ring. The `trace` verb dumps the server's
//! recent-span ring as one JSON span per line (optionally filtered to
//! one trace with `--id`).

use bfdn_obs::tracing::{hex16, parse_hex16};
use bfdn_service::client::Client;
use bfdn_service::protocol::{
    fnv1a, ErrorCode, ExploreSpec, Request, Response, SpanPayload, WireError,
};
use bfdn_service::stitch::{stitch, ProcessSpans, SHARD_ATTR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

struct Invocation {
    addr: String,
    cluster: Vec<String>,
    connect_timeout_ms: Option<u64>,
    retry: u32,
    backoff_ms: u64,
    backoff_jitter: u64,
    jitter_seed: u64,
    trace: bool,
    command: Command,
}

enum Command {
    Explore(ExploreSpec),
    Batch(Vec<ExploreSpec>),
    Trace(Option<u64>),
    Status,
    CacheStats,
    Metrics,
    Shutdown,
}

fn parse(args: Vec<String>) -> Result<Invocation, String> {
    let mut it = args.into_iter().peekable();
    let mut addr = "127.0.0.1:4077".to_string();
    let mut cluster: Vec<String> = Vec::new();
    let mut connect_timeout_ms: Option<u64> = None;
    let mut retry = 0u32;
    let mut backoff_ms = 100u64;
    let mut backoff_jitter: Option<u64> = None;
    let mut jitter_seed = u64::from(std::process::id());
    let mut trace = false;
    loop {
        match it.peek().map(String::as_str) {
            Some("--addr") => {
                it.next();
                addr = it.next().ok_or("--addr needs a value")?;
            }
            Some("--cluster") => {
                it.next();
                let v = it.next().ok_or("--cluster needs a value")?;
                cluster = split_list(&v);
                if cluster.is_empty() {
                    return Err("--cluster needs at least one HOST:PORT".into());
                }
            }
            Some("--connect-timeout-ms") => {
                it.next();
                let v = it.next().ok_or("--connect-timeout-ms needs a value")?;
                connect_timeout_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --connect-timeout-ms `{v}`"))?,
                );
            }
            Some("--retry") => {
                it.next();
                let v = it.next().ok_or("--retry needs a value")?;
                retry = v.parse().map_err(|_| format!("bad --retry `{v}`"))?;
            }
            Some("--backoff-ms") => {
                it.next();
                let v = it.next().ok_or("--backoff-ms needs a value")?;
                backoff_ms = v.parse().map_err(|_| format!("bad --backoff-ms `{v}`"))?;
            }
            Some("--backoff-jitter") => {
                it.next();
                let v = it.next().ok_or("--backoff-jitter needs a value")?;
                backoff_jitter = Some(
                    v.parse()
                        .map_err(|_| format!("bad --backoff-jitter `{v}`"))?,
                );
            }
            Some("--jitter-seed") => {
                it.next();
                let v = it.next().ok_or("--jitter-seed needs a value")?;
                jitter_seed = v.parse().map_err(|_| format!("bad --jitter-seed `{v}`"))?;
            }
            Some("--trace") => {
                it.next();
                trace = true;
            }
            _ => break,
        }
    }
    // Full jitter by default: an extra uniform 0..=backoff on top of the
    // fixed backoff keeps simultaneously rejected clients decorrelated.
    let backoff_jitter = backoff_jitter.unwrap_or(backoff_ms);
    let verb = it.next().ok_or(
        "missing command (one of: explore, batch, trace, status, cache-stats, metrics, shutdown)",
    )?;
    let rest: Vec<String> = it.collect();
    let command = match verb.as_str() {
        "explore" => Command::Explore(parse_explore(rest)?),
        "batch" => Command::Batch(parse_batch(rest)?),
        "trace" => Command::Trace(parse_trace(rest)?),
        "status" => Command::Status,
        "cache-stats" => Command::CacheStats,
        "metrics" => Command::Metrics,
        "shutdown" => Command::Shutdown,
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Invocation {
        addr,
        cluster,
        connect_timeout_ms,
        retry,
        backoff_ms,
        backoff_jitter,
        jitter_seed,
        trace,
        command,
    })
}

fn parse_trace(args: Vec<String>) -> Result<Option<u64>, String> {
    let mut filter = None;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--id" => {
                let v = it.next().ok_or("--id needs a value")?;
                let id = parse_hex16(&v)
                    .filter(|&id| id != 0)
                    .ok_or_else(|| format!("bad --id `{v}` (want 16 nonzero hex digits)"))?;
                filter = Some(id);
            }
            other => return Err(format!("unknown trace flag `{other}`")),
        }
    }
    Ok(filter)
}

fn parse_explore(args: Vec<String>) -> Result<ExploreSpec, String> {
    let mut spec = ExploreSpec::new("bfdn", "random-recursive", 1000, 8, 42);
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--algo" => spec.algorithm = value("--algo")?,
            "--family" => spec.family = value("--family")?,
            "--n" => spec.n = parse_u64("--n", &value("--n")?)?,
            "--k" => spec.k = parse_u64("--k", &value("--k")?)?,
            "--seed" => spec.seed = parse_u64("--seed", &value("--seed")?)?,
            "--manifest" => spec.options.manifest = true,
            "--delay-ms" => spec.options.delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
            other => return Err(format!("unknown explore flag `{other}`")),
        }
    }
    Ok(spec)
}

fn parse_batch(args: Vec<String>) -> Result<Vec<ExploreSpec>, String> {
    let mut algos = vec!["bfdn".to_string()];
    let mut families = vec!["random-recursive".to_string()];
    let mut n = 1000u64;
    let mut ks = vec![8u64];
    let mut seeds = 1u64;
    let mut delay_ms = 0u64;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--algos" => algos = split_list(&value("--algos")?),
            "--families" => families = split_list(&value("--families")?),
            "--n" => n = parse_u64("--n", &value("--n")?)?,
            "--ks" => {
                ks = split_list(&value("--ks")?)
                    .iter()
                    .map(|v| parse_u64("--ks", v))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => seeds = parse_u64("--seeds", &value("--seeds")?)?,
            "--delay-ms" => delay_ms = parse_u64("--delay-ms", &value("--delay-ms")?)?,
            other => return Err(format!("unknown batch flag `{other}`")),
        }
    }
    if seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    let mut specs = Vec::new();
    for algo in &algos {
        for family in &families {
            for &k in &ks {
                for seed in 0..seeds {
                    let mut spec = ExploreSpec::new(algo.clone(), family.clone(), n, k, seed);
                    spec.options.delay_ms = delay_ms;
                    specs.push(spec);
                }
            }
        }
    }
    Ok(specs)
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

fn parse_u64(name: &str, v: &str) -> Result<u64, String> {
    v.parse().map_err(|_| format!("bad {name} `{v}`"))
}

/// A failure with its process exit code: `3` for busy backpressure,
/// `4` for a draining server, `1` otherwise.
struct Failure {
    message: String,
    exit: u8,
}

impl Failure {
    fn plain(message: impl Into<String>) -> Self {
        Failure {
            message: message.into(),
            exit: 1,
        }
    }

    /// Structured rendering of the daemon's error: the wire code tag,
    /// then the human-readable detail.
    fn from_wire(e: &WireError) -> Self {
        Failure {
            message: format!(
                "server refused the request ({}): {}",
                e.code.as_str(),
                e.message
            ),
            exit: match e.code {
                ErrorCode::Busy => 3,
                ErrorCode::ShuttingDown => 4,
                _ => 1,
            },
        }
    }

    fn from_client(e: &bfdn_service::client::ClientError) -> Self {
        match e.as_server_error() {
            Some(wire) => Failure::from_wire(wire),
            None => Failure::plain(e.to_string()),
        }
    }

    /// Tags busy/draining failures (exit codes 3 and 4) with the trace
    /// id the rejected request carried, so the attempt can still be
    /// correlated with the server's span ring.
    fn with_trace(mut self, trace: Option<u64>) -> Self {
        if let Some(id) = trace {
            if self.exit == 3 || self.exit == 4 {
                self.message = format!("{} [trace_id={}]", self.message, hex16(id));
            }
        }
        self
    }
}

/// Busy-retry policy: attempt budget, fixed backoff, and the seeded
/// jitter stream drawn on top of it.
struct RetryPolicy {
    retry: u32,
    backoff_ms: u64,
    backoff_jitter: u64,
    rng: StdRng,
}

impl RetryPolicy {
    fn new(invocation: &Invocation) -> Self {
        RetryPolicy {
            retry: invocation.retry,
            backoff_ms: invocation.backoff_ms,
            backoff_jitter: invocation.backoff_jitter,
            rng: StdRng::seed_from_u64(invocation.jitter_seed),
        }
    }

    /// The next sleep: fixed backoff plus a uniform draw from
    /// `0..=backoff_jitter` milliseconds.
    fn next_sleep_ms(&mut self) -> u64 {
        let jitter = match usize::try_from(self.backoff_jitter) {
            Ok(0) | Err(_) => 0,
            Ok(cap) => self.rng.random_range(0..=cap) as u64,
        };
        self.backoff_ms.saturating_add(jitter)
    }
}

/// Runs `attempt` up to `1 + retry` times, sleeping backoff + jitter
/// between tries; only `busy` answers are retried — a draining server
/// will not come back.
fn with_retry<T>(
    policy: &mut RetryPolicy,
    mut attempt: impl FnMut() -> Result<T, bfdn_service::client::ClientError>,
) -> Result<T, Failure> {
    let mut tries_left = policy.retry;
    loop {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let busy = e
                    .as_server_error()
                    .is_some_and(|w| w.code == ErrorCode::Busy);
                if busy && tries_left > 0 {
                    tries_left -= 1;
                    let sleep_ms = policy.next_sleep_ms();
                    eprintln!(
                        "bfdn-request: server busy, retrying in {sleep_ms} ms ({tries_left} retries left)"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                    continue;
                }
                let mut failure = Failure::from_client(&e);
                if busy {
                    failure.message =
                        format!("{} (after {} attempts)", failure.message, policy.retry + 1);
                }
                return Err(failure);
            }
        }
    }
}

/// The spec key the command routes by in `--cluster` mode: single
/// explores hash their own canonical key, batches hash their first item
/// (so repeat invocations of the same batch land on the same shard's
/// warm cache), introspection verbs hash nothing.
fn routing_key(command: &Command) -> Option<String> {
    match command {
        Command::Explore(spec) => Some(spec.canonical()),
        Command::Batch(specs) => specs.first().map(|s| s.canonical()),
        _ => None,
    }
}

/// One dial, bounded by `--connect-timeout-ms` when set.
fn dial(addr: &str, timeout_ms: Option<u64>) -> Result<Client, String> {
    match timeout_ms {
        None => Client::connect(addr).map_err(|e| e.to_string()),
        Some(ms) => {
            let socket = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| format!("cannot resolve `{addr}`"))?;
            Client::connect_timeout(&socket, Duration::from_millis(ms.max(1)))
                .map_err(|e| e.to_string())
        }
    }
}

/// Connects to the daemon — or, in `--cluster` mode, to the command's
/// home shard with linear failover through the rest of the shard list.
/// Any shard can serve any spec (peer cache-fill makes a wrong-home
/// serve a copy, not a recompute), so failover never changes results.
fn connect_client(invocation: &Invocation) -> Result<Client, Failure> {
    if invocation.cluster.is_empty() {
        return dial(&invocation.addr, invocation.connect_timeout_ms)
            .map_err(|e| Failure::plain(format!("cannot connect to {}: {e}", invocation.addr)));
    }
    let shards = &invocation.cluster;
    // Dials must stay bounded when there are shards to fail over to.
    let timeout = invocation.connect_timeout_ms.or(Some(250));
    let start = match routing_key(&invocation.command) {
        Some(key) => (fnv1a(key.as_bytes()) % shards.len() as u64) as usize,
        None => 0,
    };
    let mut last = String::new();
    for offset in 0..shards.len() {
        let addr = &shards[(start + offset) % shards.len()];
        match dial(addr, timeout) {
            Ok(client) => {
                if offset > 0 {
                    eprintln!("bfdn-request: home shard unreachable, failed over to {addr}");
                }
                return Ok(client);
            }
            Err(e) => last = format!("{addr}: {e}"),
        }
    }
    Err(Failure::plain(format!(
        "no cluster shard reachable (last: {last})"
    )))
}

fn run(invocation: Invocation) -> Result<(), Failure> {
    let mut policy = RetryPolicy::new(&invocation);
    let mut client = connect_client(&invocation)?;
    let cluster = invocation.cluster.clone();
    let connect_timeout_ms = invocation.connect_timeout_ms;
    // The trace id is drawn from its own copy of the seeded stream so it
    // is reproducible with --jitter-seed yet leaves the backoff jitter
    // sequence untouched. `| 1` keeps it off the reserved zero id.
    let trace = invocation
        .trace
        .then(|| StdRng::seed_from_u64(invocation.jitter_seed).random::<u64>() | 1);
    client.set_trace(trace);
    match invocation.command {
        Command::Explore(spec) => {
            let result = with_retry(&mut policy, || client.explore(spec.clone()))
                .map_err(|f| f.with_trace(trace))?;
            eprintln!("cached={}", result.cached);
            println!("{}", result.payload_json());
            print_trace_breakdown(&mut client, trace, &cluster, connect_timeout_ms)?;
        }
        Command::Batch(specs) => {
            let count = specs.len();
            let (results, hits, misses) = with_retry(&mut policy, || client.batch(specs.clone()))
                .map_err(|f| f.with_trace(trace))?;
            for result in &results {
                println!("{}", result.payload_json());
            }
            eprintln!("hits={hits} misses={misses} ({count} items)");
            print_trace_breakdown(&mut client, trace, &cluster, connect_timeout_ms)?;
        }
        Command::Trace(filter) => {
            let payload = client
                .trace_spans(filter)
                .map_err(|e| Failure::from_client(&e))?;
            for span in &payload.spans {
                println!("{}", span.to_json_value());
            }
            eprintln!(
                "spans={} recorded={} dropped={}",
                payload.spans.len(),
                payload.recorded,
                payload.dropped
            );
        }
        Command::Status => {
            print_document(&mut client, &Request::Status)?;
        }
        Command::CacheStats => {
            print_document(&mut client, &Request::CacheStats)?;
        }
        Command::Metrics => {
            let text = client.metrics().map_err(|e| Failure::from_client(&e))?;
            print!("{text}");
        }
        Command::Shutdown => {
            client.shutdown().map_err(|e| Failure::from_client(&e))?;
            eprintln!("server acknowledged shutdown");
        }
    }
    Ok(())
}

/// Fetches and prints the server-side span tree for `trace` (when set)
/// as an indented breakdown on stderr. Against one daemon the fetch
/// happens on the same connection right after the traced request, so
/// the spans are already in the ring by the time we ask; in `--cluster`
/// mode every shard's ring is pulled and the fragments are stitched
/// into one cross-process tree, each span tagged with the shard that
/// recorded it.
fn print_trace_breakdown(
    client: &mut Client,
    trace: Option<u64>,
    cluster: &[String],
    connect_timeout_ms: Option<u64>,
) -> Result<(), Failure> {
    let Some(id) = trace else { return Ok(()) };
    if cluster.is_empty() {
        let payload = client
            .trace_spans(Some(id))
            .map_err(|e| Failure::from_client(&e))?;
        eprintln!(
            "trace {} ({} spans, recorder dropped {})",
            hex16(id),
            payload.spans.len(),
            payload.dropped
        );
        let roots: Vec<&SpanPayload> = payload.spans.iter().filter(|s| s.parent == 0).collect();
        for root in roots {
            print_span(&payload.spans, root, 1);
        }
        return Ok(());
    }
    // Cluster mode: one ring per shard, joined into a single tree. An
    // unreachable shard only loses its own fragment.
    let timeout = connect_timeout_ms.or(Some(250));
    let mut processes = Vec::new();
    let mut unreachable = 0usize;
    for shard in cluster {
        let payload = dial(shard, timeout)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.trace_spans(Some(id)).map_err(|e| e.to_string()));
        match payload {
            Ok(payload) => processes.push(ProcessSpans::from_payload(shard, payload)),
            Err(_) => unreachable += 1,
        }
    }
    let stitched = stitch(&processes);
    let shards_with_spans = processes.iter().filter(|p| !p.spans.is_empty()).count();
    eprintln!(
        "trace {} stitched across {shards_with_spans} shard(s) \
         ({} spans, recorders dropped {}{})",
        hex16(id),
        stitched.spans.len(),
        stitched.dropped,
        if unreachable > 0 {
            format!(", {unreachable} shard(s) unreachable")
        } else {
            String::new()
        }
    );
    let roots: Vec<&SpanPayload> = stitched.spans.iter().filter(|s| s.parent == 0).collect();
    for root in roots {
        print_span(&stitched.spans, root, 1);
    }
    Ok(())
}

fn print_span(spans: &[SpanPayload], span: &SpanPayload, depth: usize) {
    // The stitch-added origin label leads in brackets; other attributes
    // keep their key=value form.
    let shard = span
        .attrs
        .iter()
        .find(|(key, _)| key == SHARD_ATTR)
        .map(|(_, value)| format!("[{value}] "))
        .unwrap_or_default();
    let attrs: Vec<String> = span
        .attrs
        .iter()
        .filter(|(key, _)| key != SHARD_ATTR)
        .map(|(key, value)| format!("{key}={value}"))
        .collect();
    eprintln!(
        "{:indent$}{shard}{} {:.1}us {}",
        "",
        span.name,
        span.duration_ns as f64 / 1_000.0,
        attrs.join(" "),
        indent = depth * 2
    );
    for child in spans.iter().filter(|s| s.parent == span.span) {
        print_span(spans, child, depth + 1);
    }
}

/// Prints the raw (already-JSON) reply document for introspection verbs.
fn print_document(client: &mut Client, request: &Request) -> Result<(), Failure> {
    match client
        .request(request)
        .map_err(|e| Failure::from_client(&e))?
    {
        Response::Error(e) => Err(Failure::from_wire(&e)),
        reply => {
            println!("{}", reply.to_json());
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1).collect()) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("bfdn-request: {e}");
            return ExitCode::from(2);
        }
    };
    match run(invocation) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bfdn-request: {}", e.message);
            ExitCode::from(e.exit)
        }
    }
}
