//! `bfdn-serve` — run the simulation-serving daemon.
//!
//! ```text
//! bfdn-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!            [--cache-capacity N] [--cache-shards N]
//!            [--spill PATH] [--store-dir DIR] [--store-budget-bytes N]
//!            [--compact-trigger N] [--migrate-spill PATH]
//!            [--manifest-dir DIR]
//!            [--metrics-addr HOST:PORT] [--metrics-scrapers N]
//!            [--access-log PATH] [--access-log-max-bytes N] [--slow-ms MS]
//!            [--batch-split N] [--read-timeout-ms MS]
//!            [--trace-out PATH] [--trace-sample N]
//!            [--round-threads N]
//!            [--peers HOST:PORT,HOST:PORT,...] [--peer-timeout-ms MS]
//!            [--profile-interval-ms MS] [--profile-out PATH]
//! ```
//!
//! `--peers` lists the *other* shards of a cluster; with it set, a
//! local cache miss asks each peer for its cached result (bounded by
//! `--peer-timeout-ms` per probe) before executing, so a spec is
//! computed once cluster-wide and then copied.
//!
//! `--store-dir` backs the cache with the log-structured compressed
//! result store: executed results are written through, memory misses
//! fall back to indexed disk reads, and a restart against the same
//! directory serves byte-identical results with zero re-executions.
//! `--store-budget-bytes` hard-caps the resident memory tier (overflow
//! stays on disk); `--compact-trigger` sets the dead-bytes threshold of
//! the background compactor; `--migrate-spill PATH` imports a legacy
//! JSONL spill into the store once at startup. `--spill` is deprecated
//! when a store is configured (it is imported, not loaded resident).
//!
//! The process serves until a client sends a `shutdown` request, then
//! drains in-flight jobs (spilling the cache when `--spill` is set) and
//! exits. Hand-rolled flag parsing — the workspace deliberately carries
//! no CLI dependency.

use bfdn_service::server::{serve, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn parse(args: impl IntoIterator<Item = String>) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                let v = value("--workers")?;
                let n: usize = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                config.workers = Some(n.max(1));
            }
            "--queue-depth" => {
                let v = value("--queue-depth")?;
                config.queue_depth = v.parse().map_err(|_| format!("bad --queue-depth `{v}`"))?;
            }
            "--cache-capacity" => {
                let v = value("--cache-capacity")?;
                config.cache.capacity = v
                    .parse()
                    .map_err(|_| format!("bad --cache-capacity `{v}`"))?;
            }
            "--cache-shards" => {
                let v = value("--cache-shards")?;
                config.cache.shards = v.parse().map_err(|_| format!("bad --cache-shards `{v}`"))?;
            }
            "--spill" => config.spill = Some(PathBuf::from(value("--spill")?)),
            "--store-dir" => config.store_dir = Some(PathBuf::from(value("--store-dir")?)),
            "--store-budget-bytes" => {
                let v = value("--store-budget-bytes")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --store-budget-bytes `{v}`"))?;
                config.store_budget_bytes = Some(n);
            }
            "--compact-trigger" => {
                let v = value("--compact-trigger")?;
                config.compact_trigger_bytes = v
                    .parse()
                    .map_err(|_| format!("bad --compact-trigger `{v}`"))?;
            }
            "--migrate-spill" => {
                config.migrate_spill = Some(PathBuf::from(value("--migrate-spill")?));
            }
            "--manifest-dir" => config.manifest_dir = Some(PathBuf::from(value("--manifest-dir")?)),
            "--metrics-addr" => config.metrics_addr = Some(value("--metrics-addr")?),
            "--access-log" => config.access_log = Some(PathBuf::from(value("--access-log")?)),
            "--slow-ms" => {
                let v = value("--slow-ms")?;
                config.slow_request_ms = v.parse().map_err(|_| format!("bad --slow-ms `{v}`"))?;
            }
            "--batch-split" => {
                let v = value("--batch-split")?;
                let n: usize = v.parse().map_err(|_| format!("bad --batch-split `{v}`"))?;
                config.batch_split = n.max(1);
            }
            "--read-timeout-ms" => {
                let v = value("--read-timeout-ms")?;
                config.read_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --read-timeout-ms `{v}`"))?;
            }
            "--trace-out" => config.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--trace-sample" => {
                let v = value("--trace-sample")?;
                config.trace_sample = v.parse().map_err(|_| format!("bad --trace-sample `{v}`"))?;
            }
            "--round-threads" => {
                let v = value("--round-threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --round-threads `{v}`"))?;
                config.round_threads = Some(n.max(1));
            }
            "--metrics-scrapers" => {
                let v = value("--metrics-scrapers")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --metrics-scrapers `{v}`"))?;
                config.metrics_scrapers = n.max(1);
            }
            "--peers" => {
                config.peers = value("--peers")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--peer-timeout-ms" => {
                let v = value("--peer-timeout-ms")?;
                config.peer_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --peer-timeout-ms `{v}`"))?;
            }
            "--access-log-max-bytes" => {
                let v = value("--access-log-max-bytes")?;
                config.access_log_max_bytes = v
                    .parse()
                    .map_err(|_| format!("bad --access-log-max-bytes `{v}`"))?;
            }
            "--profile-interval-ms" => {
                let v = value("--profile-interval-ms")?;
                config.profile_interval_ms = v
                    .parse()
                    .map_err(|_| format!("bad --profile-interval-ms `{v}`"))?;
            }
            "--profile-out" => config.profile_out = Some(PathBuf::from(value("--profile-out")?)),
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --addr --workers --queue-depth \
                     --cache-capacity --cache-shards --spill --store-dir \
                     --store-budget-bytes --compact-trigger --migrate-spill \
                     --manifest-dir \
                     --metrics-addr --metrics-scrapers --access-log \
                     --access-log-max-bytes --slow-ms \
                     --batch-split --read-timeout-ms --trace-out --trace-sample \
                     --round-threads --peers --peer-timeout-ms \
                     --profile-interval-ms --profile-out)"
                ))
            }
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("bfdn-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bfdn-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("bfdn-serve: listening on {}", handle.addr());
    if let Some(addr) = handle.metrics_addr() {
        eprintln!("bfdn-serve: serving Prometheus metrics on http://{addr}/metrics");
    }
    if let Err(e) = handle.join() {
        eprintln!("bfdn-serve: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bfdn-serve: drained, bye");
    ExitCode::SUCCESS
}
