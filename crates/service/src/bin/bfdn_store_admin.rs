//! `bfdn-store-admin` — offline maintenance of a `bfdn-store` result
//! store directory.
//!
//! ```text
//! bfdn-store-admin migrate --store-dir DIR --spill PATH [--revision REV]
//! bfdn-store-admin stats   --store-dir DIR [--revision REV]
//! bfdn-store-admin compact --store-dir DIR [--revision REV]
//! ```
//!
//! `migrate` is the one-shot legacy-spill import: every well-formed
//! JSONL payload line becomes one store record, the spill header's
//! revision is validated against the store's stamp, and the counts
//! (imported / refused / malformed) are printed. Re-running a migration
//! supersedes the earlier import — the duplicates are dead bytes that
//! `compact` (or the daemon's background compactor) reclaims.
//!
//! `--revision` overrides the stamp the store is opened with; without
//! it the binary's own git revision is used, exactly like the daemon.
//! Hand-rolled flag parsing — the workspace deliberately carries no CLI
//! dependency.

use bfdn_service::migrate_spill;
use bfdn_store::{Store, StoreConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Invocation {
    command: String,
    store_dir: PathBuf,
    spill: Option<PathBuf>,
    revision: Option<String>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Invocation, String> {
    let mut it = args.into_iter();
    let command = it.next().ok_or("missing command (migrate|stats|compact)")?;
    if !matches!(command.as_str(), "migrate" | "stats" | "compact") {
        return Err(format!(
            "unknown command `{command}` (try migrate|stats|compact)"
        ));
    }
    let mut store_dir = None;
    let mut spill = None;
    let mut revision = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--store-dir" => store_dir = Some(PathBuf::from(value("--store-dir")?)),
            "--spill" => spill = Some(PathBuf::from(value("--spill")?)),
            "--revision" => revision = Some(value("--revision")?),
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --store-dir --spill --revision)"
                ))
            }
        }
    }
    Ok(Invocation {
        command,
        store_dir: store_dir.ok_or("--store-dir is required")?,
        spill,
        revision,
    })
}

fn run(inv: Invocation) -> Result<(), String> {
    let mut config = StoreConfig::new(&inv.store_dir);
    config.revision = inv.revision.or_else(bfdn_obs::git_revision);
    let (mut store, report) = Store::open(config).map_err(|e| format!("cannot open store: {e}"))?;
    if report.revision_mismatch {
        eprintln!(
            "bfdn-store-admin: store was written by another revision — {} records refused, starting fresh",
            report.refused
        );
    }
    if report.truncated_segments > 0 {
        eprintln!(
            "bfdn-store-admin: dropped {} crash-truncated segment tail(s)",
            report.truncated_segments
        );
    }
    match inv.command.as_str() {
        "migrate" => {
            let spill = inv.spill.ok_or("migrate requires --spill PATH")?;
            let report =
                migrate_spill(&mut store, &spill).map_err(|e| format!("migration failed: {e}"))?;
            store
                .persist_index()
                .map_err(|e| format!("cannot persist index: {e}"))?;
            println!(
                "migrated {}: {} imported, {} refused{}, {} malformed",
                spill.display(),
                report.loaded,
                report.refused,
                if report.revision_mismatch {
                    " (revision mismatch)"
                } else {
                    ""
                },
                report.malformed
            );
        }
        "stats" => {
            let s = store.stats();
            println!(
                "records={} segments={} on_disk_bytes={} live_bytes={} dead_bytes={} \
                 raw_payload_bytes={} stored_payload_bytes={} compression_ratio={:.3}",
                s.records,
                s.segments,
                s.on_disk_bytes,
                s.live_bytes,
                s.dead_bytes,
                s.raw_payload_bytes,
                s.stored_payload_bytes,
                s.compression_ratio()
            );
        }
        "compact" => {
            let report = store
                .compact()
                .map_err(|e| format!("compaction failed: {e}"))?;
            store
                .persist_index()
                .map_err(|e| format!("cannot persist index: {e}"))?;
            println!(
                "compacted: reclaimed {} bytes, {} -> {} segments, {} live records",
                report.reclaimed_bytes,
                report.segments_before,
                report.segments_after,
                report.live_records
            );
        }
        _ => unreachable!("validated in parse"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let inv = match parse(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("bfdn-store-admin: {e}");
            eprintln!(
                "usage: bfdn-store-admin <migrate|stats|compact> --store-dir DIR \
                 [--spill PATH] [--revision REV]"
            );
            return ExitCode::from(2);
        }
    };
    match run(inv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bfdn-store-admin: {e}");
            ExitCode::FAILURE
        }
    }
}
