//! A simulation-serving daemon for the BFDN reproduction.
//!
//! The local harness re-runs every simulation from scratch; this crate
//! turns the workspace into a long-lived service so repeated sweeps,
//! CI jobs and notebook-style exploration share one warm process and
//! one result cache:
//!
//! - [`protocol`] — the versioned wire protocol: JSON documents over
//!   4-byte length-prefixed TCP frames, with structured error replies
//!   ([`jsonval`] is its hand-rolled inbound JSON reader).
//! - [`exec`] — the single algorithm/family registry; turns a validated
//!   [`protocol::ExploreSpec`] into a [`protocol::ExploreResult`] plus a
//!   per-request run manifest. The bench CLI delegates here, so daemon
//!   and local harness can never drift apart.
//! - [`cache`] — the content-addressed result cache: runs are fully
//!   deterministic in their spec, so results are keyed by the canonical
//!   request string. A sharded in-memory LRU in front, optionally
//!   backed by the `bfdn-store` log-structured compressed store
//!   (write-through puts, indexed disk reads on memory misses, a hard
//!   resident-bytes budget) — the legacy JSONL spill remains for
//!   store-less warm restarts.
//! - [`parallel`] — the deterministic work-sharing substrate (now hosted
//!   by `bfdn-sim` so the explorers' round loops can shard on it too;
//!   re-exported here and by the harness), used both by the local
//!   harness's fan-out and by the server's batch fan-out.
//! - [`server`] — the daemon: bounded job queue with `Busy`
//!   backpressure, a worker pool, per-job observability, graceful
//!   drain on shutdown.
//! - [`telemetry`] — the daemon's metrics surface: Prometheus-rendered
//!   request/latency/cache/bound-margin instruments (exposed through
//!   the `Metrics` wire request and an optional `--metrics-addr` HTTP
//!   listener) plus the structured JSONL access log.
//! - [`client`] — a blocking typed client; the `bfdn-serve` and
//!   `bfdn-request` binaries and the harness's `--via-service` mode sit
//!   on top of it.
//!
//! The determinism guarantee is load-bearing end to end: a cache hit is
//! byte-identical to recomputation, so a sweep routed through the
//! service produces byte-identical CSVs to a local run — CI asserts
//! exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod exec;
pub mod jsonval;
pub use bfdn_sim::parallel;
pub mod protocol;
pub mod server;
pub mod stitch;
pub mod telemetry;

pub use cache::{migrate_spill, CacheConfig, ResultCache, SpillReport};
pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, ExploreOptions, ExploreResult, ExploreSpec, Request, Response, WireError,
    PROTOCOL_VERSION,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use telemetry::{AccessLog, AccessRecord, ServiceMetrics};
