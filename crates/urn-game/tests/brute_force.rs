//! Brute-force validation of the `R(N, u)` dynamic program: for small
//! `k`, search the *entire* adversary game tree against the least-loaded
//! player and confirm the DP value is the exact optimum — not just an
//! upper bound that the greedy adversary happens to attain.

use std::collections::HashMap;
use urn_game::{Board, GameValue, LeastLoadedPlayer, Player};

/// Longest game reachable from `board` with optimal adversary play,
/// memoized on the full (loads, touched) state.
fn longest(board: &Board, delta: usize, memo: &mut HashMap<(Vec<usize>, Vec<bool>), u32>) -> u32 {
    if board.is_finished(delta) {
        return 0;
    }
    let key = (
        board.loads().to_vec(),
        (0..board.num_urns()).map(|i| board.is_touched(i)).collect(),
    );
    if let Some(&v) = memo.get(&key) {
        return v;
    }
    let mut best = 0;
    for from in board.pickable().collect::<Vec<_>>() {
        let mut player = LeastLoadedPlayer;
        let to = player.choose(board, from);
        let mut next = board.clone();
        next.step(from, to);
        best = best.max(1 + longest(&next, delta, memo));
    }
    memo.insert(key, best);
    best
}

#[test]
fn dp_equals_exhaustive_search_for_small_k() {
    for k in 1usize..=6 {
        for delta in [1usize, 2, 3, k.max(1)] {
            let mut memo = HashMap::new();
            let brute = longest(&Board::uniform(k), delta, &mut memo);
            let dp = GameValue::new(k, delta).value();
            assert_eq!(brute, dp, "k={k} Δ={delta}: exhaustive {brute} vs DP {dp}");
        }
    }
}

#[test]
fn dp_equals_exhaustive_search_on_reduction_boards() {
    // The Section 3.2 initial condition: u untouched singletons plus one
    // touched urn holding the rest. The DP table entry R(u, u) covers it.
    for k in 2usize..=6 {
        for u in 1..k {
            let mut memo = HashMap::new();
            let brute = longest(&Board::reduction(k, u), k, &mut memo);
            let dp = GameValue::new(k, k).r(u, u);
            assert_eq!(
                brute, dp,
                "k={k} u={u}: exhaustive {brute} vs DP R(u,u) = {dp}"
            );
        }
    }
}
