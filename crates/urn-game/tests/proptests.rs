//! Property-based tests: Theorem 3 must hold against *arbitrary*
//! adversaries, not just the named strategies.

use proptest::prelude::*;
use urn_game::{
    play, theorem3_bound, Adversary, Board, GameValue, LeastLoadedPlayer, Player, UrnGame,
};

/// An adversary driven by an arbitrary byte script: each step picks the
/// `b % |pickable|`-th non-empty urn.
#[derive(Debug)]
struct ScriptedAdversary {
    script: Vec<u8>,
    cursor: usize,
}

impl Adversary for ScriptedAdversary {
    fn choose(&mut self, board: &Board, delta: usize) -> Option<usize> {
        if board.is_finished(delta) {
            return None;
        }
        let pickable: Vec<usize> = board.pickable().collect();
        let b = *self.script.get(self.cursor).unwrap_or(&0);
        self.cursor += 1;
        Some(pickable[b as usize % pickable.len()])
    }
}

proptest! {
    #[test]
    fn theorem3_holds_for_scripted_adversaries(
        k in 1usize..128,
        delta_sel in 0usize..3,
        script in prop::collection::vec(any::<u8>(), 0..2000),
    ) {
        let delta = [2usize, 7, usize::MAX][delta_sel].min(k.max(2));
        let mut adv = ScriptedAdversary { script, cursor: 0 };
        let rec = play(UrnGame::new(k, delta), &mut LeastLoadedPlayer, &mut adv);
        let bound = theorem3_bound(k, delta);
        prop_assert!(
            (rec.steps as f64) <= bound,
            "k={k} Δ={delta}: {} > {bound}", rec.steps
        );
        prop_assert!(rec.final_board.validate().is_ok());
        prop_assert_eq!(rec.final_board.total_balls(), k);
    }

    /// The DP value upper-bounds any playout (it is the optimum against
    /// the balancing player).
    #[test]
    fn dp_dominates_scripted_adversaries(
        k in 2usize..48,
        script in prop::collection::vec(any::<u8>(), 0..1500),
    ) {
        let gv = GameValue::new(k, k);
        let mut adv = ScriptedAdversary { script, cursor: 0 };
        let rec = play(UrnGame::new(k, k), &mut LeastLoadedPlayer, &mut adv);
        prop_assert!(
            rec.steps as u32 <= gv.value(),
            "k={k}: scripted {} > DP optimum {}", rec.steps, gv.value()
        );
    }

    /// Balance invariant: the least-loaded player keeps untouched-urn
    /// loads within ±1 of each other at all times.
    #[test]
    fn least_loaded_keeps_untouched_urns_balanced(
        k in 2usize..64,
        script in prop::collection::vec(any::<u8>(), 0..800),
    ) {
        let mut board = Board::uniform(k);
        let mut adv = ScriptedAdversary { script, cursor: 0 };
        let mut player = LeastLoadedPlayer;
        let delta = k;
        for _ in 0..10_000 {
            if board.is_finished(delta) {
                break;
            }
            let Some(from) = adv.choose(&board, delta) else { break };
            let to = player.choose(&board, from);
            board.step(from, to);
            let loads: Vec<usize> = board.untouched().map(|i| board.load(i)).collect();
            if let (Some(&min), Some(&max)) = (loads.iter().min(), loads.iter().max()) {
                prop_assert!(max - min <= 1, "unbalanced untouched loads: {loads:?}");
            }
        }
    }

    /// Lemma 4's structural checks hold for arbitrary (k, Δ).
    #[test]
    fn lemma4_exhaustive(k in 1usize..40, delta in 1usize..40) {
        let gv = GameValue::new(k, delta);
        prop_assert!(gv.check_monotone());
        prop_assert!(gv.check_option_a_dominates());
    }
}
