//! The two-player zero-sum balls-in-urns game of Section 3 of the BFDN
//! paper, and its online resource-allocation interpretation.
//!
//! # The game
//!
//! The board is a list of `k` urns holding `k` balls in total (one each
//! at the start). Each step, the **adversary** picks a ball from a
//! non-empty urn `a_t`; the **player** moves it to an urn `b_t` of its
//! choice. `U_t` is the set of urns never picked by the adversary; the
//! game stops once every urn of `U_t` holds at least `Δ` balls (for
//! `Δ ≥ k`: once `U_t` is empty).
//!
//! **Theorem 3.** Under the least-loaded strategy — move the ball to the
//! untouched urn with the fewest balls — the game ends within
//! `k·min{log Δ, log k} + 2k` steps, whatever the adversary does.
//!
//! This game drives the analysis of BFDN's `Reanchor` procedure
//! (Lemma 2): urns are candidate anchors at the working depth, balls are
//! robots, and an adversary pick corresponds to an anchor running out of
//! dangling edges.
//!
//! # Example
//!
//! ```
//! use urn_game::{play, GreedyAdversary, LeastLoadedPlayer, UrnGame};
//!
//! let k = 64;
//! let delta = k; // unbounded-degree regime
//! let record = play(
//!     UrnGame::new(k, delta),
//!     &mut LeastLoadedPlayer,
//!     &mut GreedyAdversary,
//! );
//! let bound = urn_game::theorem3_bound(k, delta);
//! assert!(record.steps as f64 <= bound);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
pub mod allocation;
mod board;
mod dp;
mod game;
mod player;

pub use adversary::{Adversary, DrainAdversary, GreedyAdversary, RandomAdversary};
pub use board::Board;
pub use dp::GameValue;
pub use game::{play, play_observed, GameRecord, UrnGame};
pub use player::{LeastLoadedPlayer, MostLoadedPlayer, Player, RandomPlayer, RoundRobinPlayer};

/// The Theorem 3 upper bound `k·min{log Δ, log k} + 2k` on the number of
/// steps of the game (natural logarithm).
///
/// # Example
///
/// ```
/// let b = urn_game::theorem3_bound(8, 8);
/// assert!(b > 16.0 && b < 40.0);
/// ```
pub fn theorem3_bound(k: usize, delta: usize) -> f64 {
    let k_f = k as f64;
    let log = (delta.min(k).max(1) as f64).ln();
    k_f * log + 2.0 * k_f
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_monotone_in_k() {
        assert!(super::theorem3_bound(16, 16) < super::theorem3_bound(32, 32));
    }

    #[test]
    fn bound_caps_at_log_delta() {
        let small = super::theorem3_bound(1000, 2);
        let large = super::theorem3_bound(1000, 1000);
        assert!(small < large);
    }
}
