//! Player (urn-chooser) strategies.

use crate::Board;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The player of the game: given the board and the urn the adversary just
/// picked from, chooses where the ball goes.
pub trait Player {
    /// Chooses the destination urn `b_t`. Called after the adversary has
    /// committed to `from` (the pick is applied to the board only after
    /// both choices; `board` still shows the pre-step state, except that
    /// `from` must be considered touched).
    fn choose(&mut self, board: &Board, from: usize) -> usize;

    /// A short name for reports.
    fn name(&self) -> &str {
        "player"
    }
}

/// Helper: untouched urns excluding the one the adversary just touched.
fn candidates<'a>(board: &'a Board, from: usize) -> impl Iterator<Item = usize> + 'a {
    board.untouched().filter(move |&i| i != from)
}

/// The paper's strategy (Section 3.1): drop the ball into the untouched
/// urn with the fewest balls. Achieves the Theorem 3 bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoadedPlayer;

impl Player for LeastLoadedPlayer {
    fn choose(&mut self, board: &Board, from: usize) -> usize {
        candidates(board, from)
            .min_by_key(|&i| (board.load(i), i))
            // No untouched urn left: the game is over after this step; any
            // destination is equivalent.
            .unwrap_or(from)
    }

    fn name(&self) -> &str {
        "least-loaded"
    }
}

/// Foil strategy: drop the ball into the *most* loaded untouched urn.
/// Degrades to `Θ(k²)`-ish games against a draining adversary — used by
/// the ablation benches to show the least-loaded rule is load-bearing.
#[derive(Clone, Copy, Debug, Default)]
pub struct MostLoadedPlayer;

impl Player for MostLoadedPlayer {
    fn choose(&mut self, board: &Board, from: usize) -> usize {
        candidates(board, from)
            .max_by_key(|&i| (board.load(i), usize::MAX - i))
            .unwrap_or(from)
    }

    fn name(&self) -> &str {
        "most-loaded"
    }
}

/// Foil strategy: drop the ball into a uniformly random untouched urn.
#[derive(Clone, Debug)]
pub struct RandomPlayer {
    rng: StdRng,
}

impl RandomPlayer {
    /// Creates the strategy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        RandomPlayer {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Player for RandomPlayer {
    fn choose(&mut self, board: &Board, from: usize) -> usize {
        let cands: Vec<usize> = candidates(board, from).collect();
        if cands.is_empty() {
            from
        } else {
            cands[self.rng.random_range(0..cands.len())]
        }
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Foil strategy: cycle through untouched urns regardless of load.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinPlayer {
    next: usize,
}

impl Player for RoundRobinPlayer {
    fn choose(&mut self, board: &Board, from: usize) -> usize {
        let cands: Vec<usize> = candidates(board, from).collect();
        if cands.is_empty() {
            return from;
        }
        let pick = cands[self.next % cands.len()];
        self.next = self.next.wrapping_add(1);
        pick
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_prefers_min() {
        let mut b = Board::uniform(4);
        b.step(0, 1); // loads [0,2,1,1], urn 0 touched
        let mut p = LeastLoadedPlayer;
        // From urn 1 (being touched now): untouched candidates are 2, 3
        // with load 1 each; tie broken by index.
        assert_eq!(p.choose(&b, 1), 2);
    }

    #[test]
    fn least_loaded_excludes_from() {
        let b = Board::uniform(2);
        let mut p = LeastLoadedPlayer;
        assert_eq!(p.choose(&b, 0), 1);
    }

    #[test]
    fn most_loaded_prefers_max() {
        let mut b = Board::uniform(4);
        b.step(0, 1); // loads [0,2,1,1]
        let mut p = MostLoadedPlayer;
        // From urn 2: candidates 1 (load 2) and 3 (load 1).
        assert_eq!(p.choose(&b, 2), 1);
    }

    #[test]
    fn random_player_stays_in_candidates() {
        let mut b = Board::uniform(6);
        b.step(0, 1);
        let mut p = RandomPlayer::new(3);
        for _ in 0..50 {
            let c = p.choose(&b, 2);
            assert!(c != 0 && c != 2, "picked {c}");
        }
    }

    #[test]
    fn fallback_when_no_untouched() {
        let mut b = Board::uniform(2);
        b.step(0, 1);
        // Now only urn 1 untouched; pick from it: no candidates remain.
        let mut p = LeastLoadedPlayer;
        assert_eq!(p.choose(&b, 1), 1);
    }

    #[test]
    fn round_robin_cycles() {
        let b = Board::uniform(4);
        let mut p = RoundRobinPlayer::default();
        let picks: Vec<usize> = (0..3).map(|_| p.choose(&b, 0)).collect();
        assert_eq!(picks, vec![1, 2, 3]);
    }
}
