//! Exact game value by dynamic programming (the `R(N, u)` recursion of
//! Theorem 3's proof).
//!
//! `R(N, u)` is the largest number of steps the game may still last after
//! the player's move led to a configuration with `N` balls spread over
//! `u` untouched urns (loads within ±1 of each other, which the
//! least-loaded player maintains). The recursion of the paper:
//!
//! * `R(N, u) = 0` when `Δ·u − N ≤ 0`,
//! * option (a) — pick a touched urn — available when `N < k`:
//!   contributes `R(N + 1, u)`,
//! * option (b) — pick an untouched urn (needs `N ≥ 1`): contributes
//!   `R(N − ⌈N/u⌉ + 1, u − 1)` and `R(N − ⌊N/u⌋ + 1, u − 1)`.
//!
//! The table also lets us *verify Lemma 4 exhaustively* for concrete
//! `(k, Δ)`: option (a) always dominates, and `R(·, u)` is non-increasing.

/// The exact-value table for one `(k, Δ)` pair.
///
/// # Example
///
/// ```
/// use urn_game::GameValue;
/// let gv = GameValue::new(16, 16);
/// let exact = gv.value();
/// assert!(exact as f64 <= urn_game::theorem3_bound(16, 16));
/// ```
#[derive(Clone, Debug)]
pub struct GameValue {
    k: usize,
    delta: usize,
    /// `table[n * (k + 1) + u] = R(n, u)`.
    table: Vec<u32>,
}

impl GameValue {
    /// Builds the full table for `k` balls and threshold `delta`.
    ///
    /// Time and space are `O(k²)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, delta: usize) -> Self {
        assert!(k >= 1, "need at least one ball");
        let w = k + 1;
        let mut table = vec![0u32; w * w];
        for u in 0..=k {
            // N from k down: R(N, u) depends on R(N+1, u).
            for n in (0..=k).rev() {
                if (delta * u) <= n || u == 0 {
                    continue; // stays 0
                }
                let mut best: Option<u32> = None;
                if n < k {
                    best = Some(table[(n + 1) * w + u]);
                }
                if n >= 1 {
                    let ceil = n.div_ceil(u);
                    let floor = n / u;
                    for take in [ceil, floor] {
                        if take >= 1 {
                            let n2 = n - take + 1;
                            let v = table[n2 * w + (u - 1)];
                            best = Some(best.map_or(v, |b| b.max(v)));
                        }
                    }
                }
                if let Some(b) = best {
                    table[n * w + u] = 1 + b;
                }
            }
        }
        GameValue { k, delta, table }
    }

    /// `R(N, u)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > k` or `u > k`.
    pub fn r(&self, n: usize, u: usize) -> u32 {
        assert!(n <= self.k && u <= self.k);
        self.table[n * (self.k + 1) + u]
    }

    /// The value of the standard game (all `k` urns untouched, one ball
    /// each): `R(k, k)`.
    pub fn value(&self) -> u32 {
        self.r(self.k, self.k)
    }

    /// Number of balls `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Threshold `Δ`.
    #[inline]
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Exhaustively checks Lemma 4(i): `N ↦ R(N, u)` is non-increasing.
    pub fn check_monotone(&self) -> bool {
        (0..=self.k).all(|u| (0..self.k).all(|n| self.r(n, u) >= self.r(n + 1, u)))
    }

    /// Exhaustively checks Lemma 4(ii): whenever option (a) is available
    /// (`N < k`, game not over), it achieves the maximum.
    pub fn check_option_a_dominates(&self) -> bool {
        for u in 1..=self.k {
            for n in 1..self.k {
                if self.delta * u <= n {
                    continue;
                }
                let via_a = self.r(n + 1, u);
                let ceil = n.div_ceil(u);
                let floor = (n / u).max(1);
                let via_b = self
                    .r(n - ceil + 1, u - 1)
                    .max(self.r(n - floor + 1, u - 1));
                if via_b > via_a {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{play, theorem3_bound, GreedyAdversary, LeastLoadedPlayer, UrnGame};

    #[test]
    fn tiny_values_by_hand() {
        // k = 1, Δ = 1: the single urn already holds 1 ≥ Δ ball: over.
        assert_eq!(GameValue::new(1, 1).value(), 0);
        // k = 1, Δ = 2: u = 1, N = 1 < Δ·u = 2. Only option (b) (N = k so
        // no option (a)): take the ball, game over (u becomes 0): 1 step.
        assert_eq!(GameValue::new(1, 2).value(), 1);
    }

    #[test]
    fn k2_value() {
        // k = 2, Δ = 2, start (N=2, u=2): adversary must play (b)
        // (N = k): R(2,2) = 1 + R(2-1+1, 1) = 1 + R(2, 1); Δ·1 = 2 ≤ 2 so
        // R(2,1) = 0. Value 1.
        assert_eq!(GameValue::new(2, 2).value(), 1);
    }

    #[test]
    fn dp_below_theorem3_bound() {
        for k in [2usize, 3, 5, 8, 16, 48, 100] {
            for delta in [2usize, 3, k] {
                let v = GameValue::new(k, delta).value() as f64;
                let b = theorem3_bound(k, delta);
                assert!(v <= b, "k={k} Δ={delta}: DP {v} > bound {b}");
            }
        }
    }

    #[test]
    fn dp_is_order_k_log_k() {
        // The value should be Ω(k log k) too (the bound is near-tight):
        // check it exceeds k·log(k)/4 for Δ = k.
        for k in [16usize, 64, 256] {
            let v = GameValue::new(k, k).value() as f64;
            let lower = (k as f64) * (k as f64).ln() / 4.0;
            assert!(v >= lower, "k={k}: DP {v} < {lower}");
        }
    }

    #[test]
    fn lemma4_checks_pass() {
        for (k, delta) in [(8usize, 8usize), (16, 4), (32, 32), (48, 7)] {
            let gv = GameValue::new(k, delta);
            assert!(gv.check_monotone(), "monotonicity k={k} Δ={delta}");
            assert!(gv.check_option_a_dominates(), "option a k={k} Δ={delta}");
        }
    }

    #[test]
    fn greedy_adversary_matches_dp_exactly() {
        // The greedy adversary realizes the optimum against the
        // least-loaded player.
        for k in [2usize, 4, 8, 16, 40] {
            for delta in [2usize, 3, k] {
                let gv = GameValue::new(k, delta);
                let r = play(
                    UrnGame::new(k, delta),
                    &mut LeastLoadedPlayer,
                    &mut GreedyAdversary,
                );
                assert_eq!(
                    r.steps as u32,
                    gv.value(),
                    "k={k} Δ={delta}: simulated {} vs DP {}",
                    r.steps,
                    gv.value()
                );
            }
        }
    }
}
