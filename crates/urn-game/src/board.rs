//! The game board: urn loads plus the untouched set `U_t`.

use std::fmt;

/// The state of the balls-in-urns game at one instant: the load of each
/// urn and which urns the adversary has already picked from.
///
/// Invariant: the total number of balls never changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Board {
    loads: Vec<usize>,
    touched: Vec<bool>,
    total: usize,
    untouched_count: usize,
}

impl Board {
    /// The standard start: `k` urns with one ball each, all untouched.
    pub fn uniform(k: usize) -> Self {
        assert!(k >= 1, "need at least one urn");
        Board {
            loads: vec![1; k],
            touched: vec![false; k],
            total: k,
            untouched_count: k,
        }
    }

    /// The BFDN-reduction start (Section 3.2): `u` untouched urns with
    /// one ball each plus one extra *touched* urn holding the remaining
    /// `k - u` balls.
    ///
    /// # Panics
    ///
    /// Panics if `u > k` or `u == 0`.
    pub fn reduction(k: usize, u: usize) -> Self {
        assert!(u >= 1 && u <= k, "need 1 <= u <= k");
        let mut loads = vec![1; u];
        let mut touched = vec![false; u];
        if u < k {
            loads.push(k - u);
            touched.push(true);
        }
        let untouched_count = u;
        Board {
            loads,
            touched,
            total: k,
            untouched_count,
        }
    }

    /// Number of urns on the board.
    #[inline]
    pub fn num_urns(&self) -> usize {
        self.loads.len()
    }

    /// Total number of balls (constant over the game).
    #[inline]
    pub fn total_balls(&self) -> usize {
        self.total
    }

    /// Load of urn `i`.
    #[inline]
    pub fn load(&self, i: usize) -> usize {
        self.loads[i]
    }

    /// All loads.
    #[inline]
    pub fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// Whether urn `i` has ever been picked by the adversary.
    #[inline]
    pub fn is_touched(&self, i: usize) -> bool {
        self.touched[i]
    }

    /// Number of untouched urns `u_t = |U_t|`.
    #[inline]
    pub fn untouched_count(&self) -> usize {
        self.untouched_count
    }

    /// Iterates over the untouched urns `U_t`.
    pub fn untouched(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_urns()).filter(|&i| !self.touched[i])
    }

    /// Total balls in untouched urns, `N_t`.
    pub fn untouched_balls(&self) -> usize {
        self.untouched().map(|i| self.loads[i]).sum()
    }

    /// The urns the adversary may legally pick from (non-empty).
    pub fn pickable(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_urns()).filter(|&i| self.loads[i] > 0)
    }

    /// Returns `true` once every untouched urn holds at least `delta`
    /// balls (vacuously true when `U_t` is empty) — the stop condition.
    pub fn is_finished(&self, delta: usize) -> bool {
        self.untouched().all(|i| self.loads[i] >= delta)
    }

    /// Executes one step: the adversary takes a ball from `from`, the
    /// player drops it into `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is empty or either index is out of range.
    pub fn step(&mut self, from: usize, to: usize) {
        assert!(self.loads[from] > 0, "adversary picked an empty urn");
        self.loads[from] -= 1;
        self.loads[to] += 1;
        if !self.touched[from] {
            self.touched[from] = true;
            self.untouched_count -= 1;
        }
    }

    /// Checks counter invariants; used in tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.loads.iter().sum::<usize>() != self.total {
            return Err("ball total changed".into());
        }
        let untouched = self.touched.iter().filter(|&&t| !t).count();
        if untouched != self.untouched_count {
            return Err("untouched counter mismatch".into());
        }
        Ok(())
    }
}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &l) in self.loads.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if self.touched[i] {
                write!(f, "({l})")?;
            } else {
                write!(f, "{l}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_start() {
        let b = Board::uniform(5);
        assert_eq!(b.num_urns(), 5);
        assert_eq!(b.total_balls(), 5);
        assert_eq!(b.untouched_count(), 5);
        assert_eq!(b.untouched_balls(), 5);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn reduction_start() {
        let b = Board::reduction(10, 4);
        assert_eq!(b.num_urns(), 5);
        assert_eq!(b.total_balls(), 10);
        assert_eq!(b.untouched_count(), 4);
        assert_eq!(b.untouched_balls(), 4);
        assert_eq!(b.load(4), 6);
        assert!(b.is_touched(4));
        assert!(b.validate().is_ok());
    }

    #[test]
    fn reduction_full_u_has_no_extra_urn() {
        let b = Board::reduction(4, 4);
        assert_eq!(b.num_urns(), 4);
        assert_eq!(b.untouched_count(), 4);
    }

    #[test]
    fn step_moves_ball_and_touches() {
        let mut b = Board::uniform(3);
        b.step(0, 2);
        assert_eq!(b.load(0), 0);
        assert_eq!(b.load(2), 2);
        assert!(b.is_touched(0));
        assert_eq!(b.untouched_count(), 2);
        assert!(b.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "empty urn")]
    fn picking_empty_urn_panics() {
        let mut b = Board::uniform(2);
        b.step(0, 1);
        b.step(0, 1);
    }

    #[test]
    fn finish_conditions() {
        let mut b = Board::uniform(2);
        assert!(!b.is_finished(2));
        b.step(0, 1); // urn 1 untouched with 2 balls
        assert!(b.is_finished(2));
        assert!(!b.is_finished(3));
        b.step(1, 0); // all touched -> finished for every delta
        assert!(b.is_finished(usize::MAX));
    }

    #[test]
    fn display_marks_touched() {
        let mut b = Board::uniform(2);
        b.step(0, 1);
        assert_eq!(format!("{b}"), "[(0) 2]");
    }
}
