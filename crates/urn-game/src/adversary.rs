//! Adversary (ball-picker) strategies.

use crate::Board;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The adversary of the game: picks the urn to take a ball from.
pub trait Adversary {
    /// Chooses a non-empty urn `a_t`, or `None` to resign early (the
    /// harness treats this as the game ending).
    fn choose(&mut self, board: &Board, delta: usize) -> Option<usize>;

    /// A short name for reports.
    fn name(&self) -> &str {
        "adversary"
    }
}

/// The optimal adversary derived from Lemma 4: always prefers option (a)
/// — picking from an already-touched urn — and when forced to option (b)
/// picks the fullest untouched urn (`⌈N_t/u_t⌉` balls, the better branch
/// of the recursion).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyAdversary;

impl Adversary for GreedyAdversary {
    fn choose(&mut self, board: &Board, delta: usize) -> Option<usize> {
        if board.is_finished(delta) {
            return None;
        }
        // Option (a): a non-empty touched urn, available iff some ball
        // lies outside U_t.
        if let Some(i) = board
            .pickable()
            .filter(|&i| board.is_touched(i))
            .max_by_key(|&i| board.load(i))
        {
            return Some(i);
        }
        // Option (b): the fullest untouched urn.
        board
            .untouched()
            .filter(|&i| board.load(i) > 0)
            .max_by_key(|&i| (board.load(i), usize::MAX - i))
    }

    fn name(&self) -> &str {
        "greedy"
    }
}

/// Picks a uniformly random non-empty urn.
#[derive(Clone, Debug)]
pub struct RandomAdversary {
    rng: StdRng,
}

impl RandomAdversary {
    /// Creates the strategy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        RandomAdversary {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomAdversary {
    fn choose(&mut self, board: &Board, delta: usize) -> Option<usize> {
        if board.is_finished(delta) {
            return None;
        }
        let cands: Vec<usize> = board.pickable().collect();
        Some(cands[self.rng.random_range(0..cands.len())])
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// The weakest adversary: always picks an untouched urn (pure option (b)),
/// draining `U_t` as fast as possible — ends the game in at most `k` steps
/// when `Δ ≥ k`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainAdversary;

impl Adversary for DrainAdversary {
    fn choose(&mut self, board: &Board, delta: usize) -> Option<usize> {
        if board.is_finished(delta) {
            return None;
        }
        board
            .untouched()
            .filter(|&i| board.load(i) > 0)
            .min_by_key(|&i| (board.load(i), i))
            // All untouched urns empty (they then all hold ≥ Δ only if
            // Δ = 0; otherwise the game would have to continue via (a)):
            .or_else(|| board.pickable().next())
    }

    fn name(&self) -> &str {
        "drain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_prefers_touched() {
        let mut b = Board::uniform(3);
        b.step(0, 1); // loads [0,2,1]; touched: {0}
        b.step(1, 0); // loads [1,1,1]; touched: {0,1}
        let mut a = GreedyAdversary;
        let pick = a.choose(&b, 3).unwrap();
        assert!(b.is_touched(pick), "greedy must play option (a)");
    }

    #[test]
    fn greedy_forced_option_b_takes_fullest() {
        let b = Board::uniform(3); // nothing touched, all balls in U_t
        let mut a = GreedyAdversary;
        let pick = a.choose(&b, 3).unwrap();
        assert!(!b.is_touched(pick));
    }

    #[test]
    fn greedy_stops_when_finished() {
        let mut b = Board::uniform(2);
        b.step(0, 1); // urn 1 untouched with 2 = Δ balls
        let mut a = GreedyAdversary;
        assert_eq!(a.choose(&b, 2), None);
    }

    #[test]
    fn random_picks_nonempty() {
        let mut b = Board::uniform(4);
        b.step(0, 1);
        let mut a = RandomAdversary::new(5);
        for _ in 0..20 {
            let pick = a.choose(&b, 100).unwrap();
            assert!(b.load(pick) > 0);
        }
    }

    #[test]
    fn drain_touches_fresh_urns() {
        let b = Board::uniform(3);
        let mut a = DrainAdversary;
        let pick = a.choose(&b, 100).unwrap();
        assert!(!b.is_touched(pick));
    }
}
