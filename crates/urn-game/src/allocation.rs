//! Online resource allocation: the interpretation of the urn game given
//! in Section 3 of the paper.
//!
//! `k` workers process `k` parallelizable tasks with *unknown* lengths;
//! a task with `w` assigned workers completes `w` units of work per
//! round. When a task finishes, its workers are idle and must be
//! reassigned. The paper's result: reassigning each idle worker to the
//! unfinished task with the *fewest* workers bounds the total number of
//! task switches by `k·log(k) + 2k`, irrespective of the task lengths.
//!
//! # Example
//!
//! ```
//! use urn_game::allocation::{run, ReassignPolicy};
//! // Geometrically shrinking task lengths maximize switching pressure.
//! let lengths: Vec<u64> = (0..8).map(|i| 1u64 << i).collect();
//! let outcome = run(&lengths, 8, ReassignPolicy::LeastCrowded);
//! assert!(outcome.all_done);
//! assert!((outcome.switches as f64) <= urn_game::theorem3_bound(8, 8));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How idle workers pick their next task.
#[derive(Debug)]
pub enum ReassignPolicy {
    /// The paper's rule: join the unfinished task with the fewest
    /// workers.
    LeastCrowded,
    /// Foil: join the unfinished task with the most workers.
    MostCrowded,
    /// Foil: join a uniformly random unfinished task.
    Random(Box<StdRng>),
    /// Foil: cycle through unfinished tasks.
    RoundRobin {
        /// Rotating cursor over task indices.
        next: usize,
    },
}

impl ReassignPolicy {
    /// A seeded random policy.
    pub fn random(seed: u64) -> Self {
        ReassignPolicy::Random(Box::new(StdRng::seed_from_u64(seed)))
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReassignPolicy::LeastCrowded => "least-crowded",
            ReassignPolicy::MostCrowded => "most-crowded",
            ReassignPolicy::Random(_) => "random",
            ReassignPolicy::RoundRobin { .. } => "round-robin",
        }
    }

    fn choose(&mut self, workers_on: &[usize], unfinished: &[usize]) -> usize {
        match self {
            ReassignPolicy::LeastCrowded => *unfinished
                .iter()
                .min_by_key(|&&t| (workers_on[t], t))
                .expect("caller guarantees an unfinished task"),
            ReassignPolicy::MostCrowded => *unfinished
                .iter()
                .max_by_key(|&&t| (workers_on[t], usize::MAX - t))
                .expect("caller guarantees an unfinished task"),
            ReassignPolicy::Random(rng) => unfinished[rng.random_range(0..unfinished.len())],
            ReassignPolicy::RoundRobin { next } => {
                let pick = unfinished[*next % unfinished.len()];
                *next = next.wrapping_add(1);
                pick
            }
        }
    }
}

/// The result of one allocation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocationOutcome {
    /// Rounds until every task finished.
    pub rounds: u64,
    /// Total task switches performed (initial assignments not counted).
    pub switches: u64,
    /// Units of worker-rounds spent on already-finished work (overshoot
    /// plus idling in the final round fragment).
    pub wasted_work: u64,
    /// Whether all tasks completed (always true; present for harness
    /// symmetry).
    pub all_done: bool,
}

/// Runs `workers` workers over tasks of the given hidden `lengths` until
/// all tasks are done, reassigning idle workers per `policy`.
///
/// Workers are initially spread as evenly as possible (worker `i` starts
/// on task `i % lengths.len()`).
///
/// # Panics
///
/// Panics if `lengths` is empty or `workers == 0`.
pub fn run(lengths: &[u64], workers: usize, mut policy: ReassignPolicy) -> AllocationOutcome {
    assert!(!lengths.is_empty(), "need at least one task");
    assert!(workers >= 1, "need at least one worker");
    let m = lengths.len();
    let mut remaining: Vec<u64> = lengths.to_vec();
    let mut assignment: Vec<usize> = (0..workers).map(|i| i % m).collect();
    let mut workers_on = vec![0usize; m];
    for &t in &assignment {
        workers_on[t] += 1;
    }
    // Tasks of length zero are finished before the first round; their
    // workers switch immediately.
    let mut switches = 0u64;
    let mut wasted = 0u64;
    let mut rounds = 0u64;
    loop {
        // Reassign workers stuck on finished tasks.
        let unfinished: Vec<usize> = (0..m).filter(|&t| remaining[t] > 0).collect();
        if unfinished.is_empty() {
            break;
        }
        for w in 0..workers {
            if remaining[assignment[w]] == 0 {
                let unfinished_now: Vec<usize> = (0..m).filter(|&t| remaining[t] > 0).collect();
                if unfinished_now.is_empty() {
                    break;
                }
                let t = policy.choose(&workers_on, &unfinished_now);
                workers_on[assignment[w]] -= 1;
                assignment[w] = t;
                workers_on[t] += 1;
                switches += 1;
            }
        }
        // One synchronous round of work.
        for t in 0..m {
            if remaining[t] > 0 && workers_on[t] > 0 {
                let done = (workers_on[t] as u64).min(remaining[t]);
                wasted += workers_on[t] as u64 - done;
                remaining[t] -= done;
            }
        }
        rounds += 1;
    }
    AllocationOutcome {
        rounds,
        switches,
        wasted_work: wasted,
        all_done: remaining.iter().all(|&r| r == 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem3_bound;

    #[test]
    fn equal_tasks_never_switch() {
        let lengths = vec![10u64; 8];
        let out = run(&lengths, 8, ReassignPolicy::LeastCrowded);
        assert_eq!(out.switches, 0);
        assert_eq!(out.rounds, 10);
        assert!(out.all_done);
    }

    #[test]
    fn geometric_tasks_respect_theorem3_switch_bound() {
        for k in [4usize, 16, 64, 256] {
            let lengths: Vec<u64> = (0..k).map(|i| 1u64 << (i % 12)).collect();
            let out = run(&lengths, k, ReassignPolicy::LeastCrowded);
            assert!(out.all_done);
            let bound = theorem3_bound(k, k);
            assert!(
                (out.switches as f64) <= bound,
                "k={k}: {} switches > {bound}",
                out.switches
            );
        }
    }

    #[test]
    fn makespan_is_near_optimal() {
        // With least-crowded reassignment, the makespan is within the
        // total-work/k plus switching slack.
        let k = 32usize;
        let lengths: Vec<u64> = (1..=k as u64).map(|i| i * 7).collect();
        let total: u64 = lengths.iter().sum();
        let out = run(&lengths, k, ReassignPolicy::LeastCrowded);
        let lower = total / k as u64;
        assert!(out.rounds >= lower);
        assert!(out.rounds <= lower + theorem3_bound(k, k) as u64);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run(&[100, 1], 10, ReassignPolicy::LeastCrowded);
        assert!(out.all_done);
        // 5 workers on each initially; the short task finishes round 1
        // and its workers move over.
        assert!(out.rounds <= 100 / 5 + 2);
    }

    #[test]
    fn zero_length_tasks_reassign_immediately() {
        let out = run(&[0, 0, 12], 3, ReassignPolicy::LeastCrowded);
        assert!(out.all_done);
        assert_eq!(out.switches, 2);
        assert_eq!(out.rounds, 4);
    }

    #[test]
    fn foil_policies_complete_but_switch_more_or_equal() {
        let k = 64usize;
        let lengths: Vec<u64> = (0..k).map(|i| 1 + (i as u64 * i as u64) % 500).collect();
        let base = run(&lengths, k, ReassignPolicy::LeastCrowded);
        for policy in [
            ReassignPolicy::MostCrowded,
            ReassignPolicy::random(3),
            ReassignPolicy::RoundRobin { next: 0 },
        ] {
            let name = policy.name();
            let out = run(&lengths, k, policy);
            assert!(out.all_done, "{name}");
            // Foils finish too, but no foil beats the bound by an order;
            // we only assert completion and record relative counts in
            // the benches.
            assert!(out.rounds >= base.rounds.min(out.rounds));
        }
    }

    #[test]
    fn single_worker_serializes() {
        let out = run(&[3, 4, 5], 1, ReassignPolicy::LeastCrowded);
        assert_eq!(out.rounds, 12);
        assert_eq!(out.switches, 2);
    }
}
