//! The game loop.

use crate::{Adversary, Board, Player};
use bfdn_obs::{Event, EventSink, NullSink};

/// Configuration of one game: the board plus the stopping threshold `Δ`.
#[derive(Clone, Debug)]
pub struct UrnGame {
    board: Board,
    delta: usize,
}

impl UrnGame {
    /// The standard game: `k` urns, one ball each, threshold `delta`.
    pub fn new(k: usize, delta: usize) -> Self {
        UrnGame {
            board: Board::uniform(k),
            delta,
        }
    }

    /// A game from an arbitrary starting board (e.g.
    /// [`Board::reduction`]).
    pub fn from_board(board: Board, delta: usize) -> Self {
        UrnGame { board, delta }
    }

    /// The stopping threshold `Δ`.
    #[inline]
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The current board.
    #[inline]
    pub fn board(&self) -> &Board {
        &self.board
    }
}

/// The outcome of a played game.
#[derive(Clone, Debug)]
pub struct GameRecord {
    /// Number of steps until the stop condition held (or the adversary
    /// resigned).
    pub steps: u64,
    /// The final board.
    pub final_board: Board,
    /// The sequence of `(a_t, b_t)` moves.
    pub history: Vec<(usize, usize)>,
}

impl GameRecord {
    /// The number of distinct urns the adversary picked over the game.
    pub fn touched_urns(&self) -> usize {
        self.final_board.num_urns() - self.final_board.untouched_count()
    }

    /// Replays the recorded history from `start` and checks it is a
    /// legal game whose final position matches [`GameRecord::final_board`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first illegal step or mismatch.
    pub fn verify(&self, start: Board) -> Result<(), String> {
        let mut board = start;
        for (step, &(from, to)) in self.history.iter().enumerate() {
            if from >= board.num_urns() || to >= board.num_urns() {
                return Err(format!("step {step}: urn out of range"));
            }
            if board.load(from) == 0 {
                return Err(format!("step {step}: picked empty urn {from}"));
            }
            board.step(from, to);
        }
        if board != self.final_board {
            return Err("final board mismatch".into());
        }
        Ok(())
    }
}

/// Plays a game to completion.
///
/// Each step the adversary picks a ball, then the player redirects it; the
/// game stops when every untouched urn holds at least `Δ` balls. A safety
/// cap of `16·k·(log k + 2) + 64` steps guards against non-terminating
/// strategy pairs (the theoretical maximum for *any* adversary against the
/// least-loaded player is far below it).
///
/// # Example
///
/// ```
/// use urn_game::{play, DrainAdversary, LeastLoadedPlayer, UrnGame};
/// let record = play(UrnGame::new(8, 8), &mut LeastLoadedPlayer, &mut DrainAdversary);
/// assert!(record.steps <= 8);
/// ```
pub fn play(game: UrnGame, player: &mut dyn Player, adversary: &mut dyn Adversary) -> GameRecord {
    play_observed(game, player, adversary, &mut NullSink)
}

/// [`play`] with an [`EventSink`]: every step of the game additionally
/// emits an [`Event::UrnStep`] carrying the adversary's pick and the
/// player's redirection, so a [`BoundTracker`](bfdn_obs::BoundTracker)
/// configured with [`theorem3_bound`](crate::theorem3_bound) can follow
/// the live margin of Theorem 3.
pub fn play_observed(
    game: UrnGame,
    player: &mut dyn Player,
    adversary: &mut dyn Adversary,
    sink: &mut dyn EventSink,
) -> GameRecord {
    let UrnGame { mut board, delta } = game;
    let k = board.total_balls() as u64;
    let cap = 16 * k * ((k.max(2) as f64).ln() as u64 + 2) + 64;
    let mut history = Vec::new();
    let mut steps = 0u64;
    while !board.is_finished(delta) && steps < cap {
        let Some(from) = adversary.choose(&board, delta) else {
            break;
        };
        let to = player.choose(&board, from);
        board.step(from, to);
        history.push((from, to));
        if sink.enabled() {
            sink.emit(&Event::UrnStep {
                step: steps,
                from: from as u32,
                to: to as u32,
            });
        }
        steps += 1;
    }
    GameRecord {
        steps,
        final_board: board,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        theorem3_bound, DrainAdversary, GreedyAdversary, LeastLoadedPlayer, MostLoadedPlayer,
        RandomAdversary, RandomPlayer, RoundRobinPlayer,
    };

    #[test]
    fn drain_vs_least_loaded_is_linear() {
        for k in [2usize, 5, 16, 100] {
            let r = play(
                UrnGame::new(k, k),
                &mut LeastLoadedPlayer,
                &mut DrainAdversary,
            );
            assert!(r.steps <= k as u64, "k={k}: {} steps", r.steps);
        }
    }

    #[test]
    fn theorem3_bound_holds_for_all_adversaries() {
        for k in [2usize, 3, 8, 32, 128, 512] {
            for delta in [2usize, 4, k] {
                let adversaries: Vec<Box<dyn crate::Adversary>> = vec![
                    Box::new(GreedyAdversary),
                    Box::new(DrainAdversary),
                    Box::new(RandomAdversary::new(k as u64)),
                ];
                for mut adv in adversaries {
                    let r = play(UrnGame::new(k, delta), &mut LeastLoadedPlayer, &mut *adv);
                    let bound = theorem3_bound(k, delta);
                    assert!(
                        (r.steps as f64) <= bound,
                        "k={k} Δ={delta} adv={}: {} > {bound}",
                        adv.name(),
                        r.steps
                    );
                }
            }
        }
    }

    #[test]
    fn game_ends_with_valid_board() {
        let r = play(
            UrnGame::new(40, 40),
            &mut LeastLoadedPlayer,
            &mut GreedyAdversary,
        );
        assert!(r.final_board.validate().is_ok());
        assert!(r.final_board.is_finished(40));
        assert_eq!(r.history.len() as u64, r.steps);
    }

    #[test]
    fn reduction_board_games_respect_bound() {
        for k in [8usize, 64] {
            for u in [1usize, k / 2, k - 1] {
                let game = UrnGame::from_board(crate::Board::reduction(k, u), k);
                let r = play(game, &mut LeastLoadedPlayer, &mut GreedyAdversary);
                // Section 3.2: the modified initial condition admits the
                // same analysis with bound k(min(log k, log Δ) + 2).
                let bound = theorem3_bound(k, k);
                assert!((r.steps as f64) <= bound, "k={k} u={u}: {}", r.steps);
            }
        }
    }

    #[test]
    fn greedy_beats_drain_in_game_length() {
        let k = 128;
        let long = play(
            UrnGame::new(k, k),
            &mut LeastLoadedPlayer,
            &mut GreedyAdversary,
        );
        let short = play(
            UrnGame::new(k, k),
            &mut LeastLoadedPlayer,
            &mut DrainAdversary,
        );
        assert!(long.steps > 2 * short.steps);
    }

    #[test]
    fn weak_players_cannot_beat_the_cap_but_exceed_least_loaded() {
        // Against the greedy adversary, foil players last longer than the
        // least-loaded player (this is what the ablation measures).
        let k = 64;
        let base = play(
            UrnGame::new(k, k),
            &mut LeastLoadedPlayer,
            &mut GreedyAdversary,
        );
        for mut p in [
            Box::new(MostLoadedPlayer) as Box<dyn crate::Player>,
            Box::new(RandomPlayer::new(1)),
            Box::new(RoundRobinPlayer::default()),
        ] {
            let r = play(UrnGame::new(k, k), &mut *p, &mut GreedyAdversary);
            assert!(
                r.steps >= base.steps,
                "{} lasted {} < least-loaded {}",
                p.name(),
                r.steps,
                base.steps
            );
        }
    }

    #[test]
    fn records_verify_against_their_start() {
        let rec = play(
            UrnGame::new(12, 12),
            &mut LeastLoadedPlayer,
            &mut GreedyAdversary,
        );
        assert!(rec.verify(crate::Board::uniform(12)).is_ok());
        // A wrong start is rejected.
        assert!(rec.verify(crate::Board::uniform(13)).is_err());
    }

    #[test]
    fn observed_play_emits_one_urn_step_per_move() {
        use bfdn_obs::{Event, MemorySink};
        let k = 32;
        let mut mem = MemorySink::default();
        let rec = play_observed(
            UrnGame::new(k, k),
            &mut LeastLoadedPlayer,
            &mut GreedyAdversary,
            &mut mem,
        );
        // The observed game is the same game...
        let plain = play(
            UrnGame::new(k, k),
            &mut LeastLoadedPlayer,
            &mut GreedyAdversary,
        );
        assert_eq!(rec.steps, plain.steps);
        assert_eq!(rec.history, plain.history);
        // ...and every (from, to) move became exactly one UrnStep event.
        let events: Vec<(usize, usize)> = mem
            .events()
            .iter()
            .map(|e| match e {
                Event::UrnStep { from, to, .. } => (*from as usize, *to as usize),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(events, rec.history);
    }

    #[test]
    fn theorem3_margin_stays_non_negative_live() {
        use bfdn_obs::{BoundConfig, BoundTracker};
        for k in [4usize, 16, 64] {
            let mut tracker = BoundTracker::new(BoundConfig {
                urn_steps: Some(crate::theorem3_bound(k, k)),
                ..BoundConfig::default()
            });
            let rec = play_observed(
                UrnGame::new(k, k),
                &mut LeastLoadedPlayer,
                &mut GreedyAdversary,
                &mut tracker,
            );
            assert_eq!(tracker.urn_steps(), rec.steps);
            assert_eq!(tracker.series().len() as u64, rec.steps);
            assert!(tracker.all_non_negative(), "k={k}");
        }
    }

    #[test]
    fn touched_urns_counted() {
        let r = play(
            UrnGame::new(6, 6),
            &mut LeastLoadedPlayer,
            &mut DrainAdversary,
        );
        assert!(r.touched_urns() >= 5);
    }
}
