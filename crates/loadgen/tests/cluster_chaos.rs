//! End-to-end breakdown tolerance: the quick plan driven through a
//! 3-shard in-process cluster while the shard-killer takes one shard
//! down mid-storm and brings it back. The SLOs must hold anyway, no
//! shard may report a Theorem 1 bound violation, and the peer-fill
//! probe leg must observe a shard answering from a peer's cache —
//! the serving-layer reading of the paper's Proposition 7.

use bfdn_loadgen::{
    cluster::execute_cluster, report, Collector, Plan, Profile, ShardBreaker, ShardKillPlan,
};
use bfdn_service::client::Client;
use bfdn_service::jsonval::Json;
use bfdn_service::server::{serve, ServerConfig, ServerHandle};
use std::net::TcpListener;

/// Reserves distinct loopback ports by binding and dropping listeners,
/// so every shard's peer list is known before any shard starts.
fn reserve_ports(count: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").port())
        .collect()
}

/// An in-process shard the breaker can break: `kill` drains it via the
/// wire (the closest an in-process daemon gets to dying), `restart`
/// re-serves the identical config on the same port.
struct LocalShard {
    config: ServerConfig,
    handle: Option<ServerHandle>,
}

impl ShardBreaker for LocalShard {
    fn kill(&mut self) -> Result<(), String> {
        let handle = self.handle.take().ok_or("shard is not running")?;
        Client::connect(&self.config.addr)
            .and_then(|mut c| c.shutdown())
            .map_err(|e| format!("shutdown: {e:?}"))?;
        handle.join().map_err(|e| format!("drain: {e}"))
    }

    fn restart(&mut self) -> Result<(), String> {
        if self.handle.is_some() {
            return Err("shard is already running".into());
        }
        self.handle = Some(serve(self.config.clone()).map_err(|e| format!("rebind: {e}"))?);
        Ok(())
    }
}

#[test]
fn cluster_survives_a_mid_storm_shard_kill_and_restart() {
    let ports = reserve_ports(3);
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let configs: Vec<ServerConfig> = addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| ServerConfig {
            addr: addr.clone(),
            peers: addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect(),
            read_timeout_ms: 1_000,
            ..ServerConfig::default()
        })
        .collect();
    let mut shards: Vec<LocalShard> = configs
        .into_iter()
        .map(|config| LocalShard {
            handle: Some(serve(config.clone()).expect("bind shard")),
            config,
        })
        .collect();

    let config = Profile::Quick.config();
    let plan = Plan::generate(&config, 11);
    let collector = Collector::new();
    let metrics_http = vec![None, None, None];
    let kill_plan = ShardKillPlan {
        at_ms: 250,
        restart_after_ms: Some(300),
    };
    let outcome = execute_cluster(
        &addrs,
        &metrics_http,
        &plan,
        &config.slo,
        &collector,
        Some((1, kill_plan, &mut shards[1])),
    );
    let summaries = collector.snapshot();

    // The killer itself reported a clean kill and a clean restart.
    let killer = summaries
        .iter()
        .find(|s| s.class == "chaos:shard_killer")
        .expect("shard-killer tallied");
    assert_eq!(killer.count, 2, "{:?}", killer.outcomes);
    assert!(killer
        .outcomes
        .iter()
        .any(|(label, n)| label == "killed" && *n == 1));
    assert!(killer
        .outcomes
        .iter()
        .any(|(label, n)| label == "restarted" && *n == 1));
    assert_eq!(
        outcome.chaos_unexpected, 0,
        "unexplained chaos outcomes: {summaries:#?}"
    );

    // Everything sent was eventually served — the failover clients
    // routed around the corpse.
    assert_eq!(
        outcome.workload_ok, outcome.workload_ops,
        "per-class tallies: {summaries:#?}"
    );

    // Post-storm consistency held, including the peer-fill leg: a shard
    // that did not serve the probe answered it byte-identically from
    // its peer's cache.
    assert_eq!(outcome.probe_consistent, Some(true), "{summaries:#?}");

    // Summed over every shard still answering: bounds re-checked on
    // everything served, zero violations — Proposition 7, as telemetry.
    let daemon = outcome.daemon.as_ref().expect("scrape succeeded");
    assert_eq!(daemon.bound_violations, Some(0.0));
    assert!(daemon.bound_checked.unwrap_or(0.0) > 0.0);

    let cluster = outcome.cluster.as_ref().expect("cluster stats");
    assert_eq!(cluster.shards, 3);
    assert_eq!(cluster.shards_scraped, 3, "restarted shard answers again");
    assert!(
        cluster.peer_fill_hits >= 1.0,
        "the probe's peer-fill leg is a guaranteed hit"
    );

    assert!(outcome.pass, "SLO violations: {:?}", outcome.violations);

    // The report carries the cluster section for CI to grep.
    let text = report::render(&plan, &outcome, &summaries);
    let json = Json::parse(&text).expect("report parses");
    assert_eq!(json.get("pass").and_then(Json::as_bool), Some(true));
    let cluster = json.get("cluster").expect("cluster section");
    assert_eq!(cluster.get("shards").and_then(Json::as_u64), Some(3));
    assert!(
        cluster
            .get("peer_fill_hits")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            >= 1.0
    );

    for shard in &mut shards {
        if let Some(handle) = shard.handle.take() {
            Client::connect(&shard.config.addr)
                .and_then(|mut c| c.shutdown())
                .expect("shutdown");
            handle.join().expect("clean drain");
        }
    }
}
