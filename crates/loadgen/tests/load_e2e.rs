//! End-to-end: a full chaos-profile run against a live in-process
//! daemon. This is the acceptance test of the subsystem — the plan is
//! deterministic, every persona's outcome lands in its expected set,
//! the SLOs pass, and after the storm the daemon still serves a
//! response byte-identical to a fresh local execution.

use bfdn_loadgen::{execute, report, Collector, Persona, Plan, Profile};
use bfdn_service::jsonval::Json;
use bfdn_service::server::{serve, ServerConfig};

#[test]
fn chaos_run_passes_slo_against_a_live_daemon() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        metrics_addr: Some("127.0.0.1:0".into()),
        // A short read budget so the slow-loris is cut off and the idle
        // socket reaped within the personas' patience window.
        read_timeout_ms: 1_000,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let metrics_http = handle.metrics_addr().expect("metrics listener bound");

    let config = Profile::Chaos.config();
    let plan = Plan::generate(&config, 42);
    assert_eq!(
        plan.fingerprint(),
        Plan::generate(&config, 42).fingerprint(),
        "the request sequence is a pure function of (profile, seed)"
    );

    let collector = Collector::new();
    let outcome = execute(
        handle.addr(),
        Some(&metrics_http.to_string()),
        &plan,
        &config.slo,
        &collector,
    );
    let summaries = collector.snapshot();

    // Every persona ran (once per rotation) and every outcome is
    // explained by its expected set.
    for persona in Persona::ALL {
        let class_name = format!("chaos:{}", persona.as_str());
        let class = summaries
            .iter()
            .find(|s| s.class == class_name)
            .unwrap_or_else(|| panic!("{class_name} missing from the tallies"));
        assert_eq!(class.count, 2, "{class_name}: {:?}", class.outcomes);
    }
    assert_eq!(
        outcome.chaos_unexpected, 0,
        "unexplained chaos outcomes: {summaries:#?}"
    );

    // Post-storm consistency: cold execution byte-identical to a local
    // run, then the identical bytes again from the cache.
    assert_eq!(outcome.probe_consistent, Some(true));

    // The daemon's own telemetry survived the storm: bounds re-checked
    // on everything served, zero violations.
    let daemon = outcome.daemon.as_ref().expect("scrape succeeded");
    assert_eq!(daemon.bound_violations, Some(0.0));
    assert!(daemon.bound_checked.unwrap_or(0.0) > 0.0);

    assert!(outcome.pass, "SLO violations: {:?}", outcome.violations);
    assert!(outcome.workload_ok > 0);

    // The report round-trips and records the verdict.
    let text = report::render(&plan, &outcome, &summaries);
    let json = Json::parse(&text).expect("report parses");
    assert_eq!(json.get("pass").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("profile").and_then(Json::as_str), Some("chaos"));
    assert_eq!(json.get("chaos_unexpected").and_then(Json::as_u64), Some(0));
    let classes = json.get("classes").and_then(Json::as_arr).expect("classes");
    assert!(
        classes.len() >= Persona::ALL.len() + 3,
        "chaos personas + open + closed + probe: {}",
        classes.len()
    );

    let mut client =
        bfdn_service::client::Client::connect(handle.addr()).expect("daemon still accepts");
    client.shutdown().expect("bye");
    handle.join().expect("clean drain after the storm");
}
