//! Cluster-mode driving: the same deterministic plan, issued through
//! ring-routed failover clients against N shards — plus the
//! `shard-killer` chaos persona, which SIGKILLs a daemon mid-storm and
//! (optionally) restarts it, asserting the cluster's breakdown
//! tolerance the way the paper's Proposition 7 asserts `BFDN`'s.
//!
//! Everything [`crate::run::execute`] measures is measured here too and
//! judged by the same [`SloConfig`]; on top of that the post-storm
//! probe gains a *peer-fill leg*: after the probe spec is computed on
//! its serving shard, a second shard is asked for it directly and must
//! answer with a byte-identical cached copy it pulled from the first
//! shard's cache — so every cluster run deterministically exercises (and
//! counts) at least one `bfdn_peer_fill_hit_total`.
//!
//! Shard lifecycle is abstracted behind [`ShardBreaker`] so the binary
//! can SIGKILL real child processes ([`ChildShard`]) while the
//! integration tests break in-process daemons; the storm cannot tell
//! the difference.

use crate::chaos;
use crate::measure::{Collector, DaemonStats, SloConfig};
use crate::run::{classify_error, fetch_daemon_stats, sleep_until, trace_id, RunOutcome};
use crate::workload::{Op, Plan};
use bfdn_cluster::{ClusterClient, ClusterConfig, ClusterError};
use bfdn_service::client::Client;
use bfdn_service::exec;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cluster-side facts for the report, next to the per-daemon scrape.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Shards the run routed over.
    pub shards: u64,
    /// Shards whose metrics answered the post-run scrape (a shard
    /// killed without restart is expected to be missing).
    pub shards_scraped: u64,
    /// `bfdn_peer_fill_hit_total` summed across scraped shards.
    pub peer_fill_hits: f64,
    /// `bfdn_peer_fill_miss_total` summed across scraped shards.
    pub peer_fill_misses: f64,
    /// Operations the failover clients served off their home shard.
    pub reroutes: u64,
    /// Facts read back from the federated fleet endpoint after the
    /// storm; `None` when the run had no `--fleet-metrics` collector.
    pub fleet: Option<FleetFacts>,
}

/// What the post-storm scrape of the fleet collector's aggregated
/// `/metrics` endpoint showed.
#[derive(Clone, Debug)]
pub struct FleetFacts {
    /// `bfdn_fleet_shards_up` — shards answering the collector's last
    /// scrape round.
    pub shards_up: u64,
    /// The fleet-wide `bfdn_bound_margin_worst{bound="theorem1_rounds"}`
    /// rollup (minimum over every shard, peer-filled copies included).
    pub worst_margin: Option<f64>,
    /// `bfdn_bound_violations_total` summed over the fleet — the SLO
    /// says this stays 0 through any storm.
    pub bound_violations: Option<f64>,
}

impl FleetFacts {
    /// Extracts the facts from the collector's aggregated exposition.
    pub fn from_exposition(text: &str) -> Self {
        let scrape = bfdn_obs::fleet::parse_exposition(text);
        FleetFacts {
            shards_up: scrape.value("bfdn_fleet_shards_up", &[]).unwrap_or(0.0) as u64,
            worst_margin: scrape.value("bfdn_bound_margin_worst", &[("bound", "theorem1_rounds")]),
            bound_violations: scrape.value("bfdn_bound_violations_total", &[]),
        }
    }
}

/// How a shard is broken and brought back. `kill` must be abrupt — the
/// storm is still running when it fires.
pub trait ShardBreaker: Send {
    /// Takes the shard down, hard.
    ///
    /// # Errors
    ///
    /// A message when the shard could not be taken down.
    fn kill(&mut self) -> Result<(), String>;
    /// Brings the same shard back on the same address and waits until
    /// it serves.
    ///
    /// # Errors
    ///
    /// A message when the shard did not come back.
    fn restart(&mut self) -> Result<(), String>;
}

/// When the shard-killer strikes, relative to storm start.
#[derive(Clone, Copy, Debug)]
pub struct ShardKillPlan {
    /// Storm offset of the kill, in milliseconds.
    pub at_ms: u64,
    /// When set, the shard is restarted this long after the kill; when
    /// `None` it stays dead for the rest of the run.
    pub restart_after_ms: Option<u64>,
}

/// A `bfdn-serve` child process the harness owns: spawned, killed with
/// SIGKILL (the only kind of kill [`std::process::Child`] offers, and
/// exactly what the breakdown persona wants), and respawned on the same
/// address.
pub struct ChildShard {
    bin: String,
    args: Vec<String>,
    addr: String,
    child: Option<Child>,
}

impl ChildShard {
    /// Spawns `bin args...` and waits until the wire address serves a
    /// Status request.
    ///
    /// # Errors
    ///
    /// A message when the spawn fails or readiness times out.
    pub fn spawn(bin: &str, args: &[String], addr: &str) -> Result<Self, String> {
        let mut shard = ChildShard {
            bin: bin.to_string(),
            args: args.to_vec(),
            addr: addr.to_string(),
            child: None,
        };
        shard.start()?;
        Ok(shard)
    }

    /// The wire address the shard serves on.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn start(&mut self) -> Result<(), String> {
        let child = Command::new(&self.bin)
            .args(&self.args)
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", self.bin))?;
        self.child = Some(child);
        self.wait_ready()
    }

    fn wait_ready(&mut self) -> Result<(), String> {
        for _ in 0..100 {
            if let Ok(mut client) = Client::connect(&self.addr) {
                let _ = client.set_read_timeout(Some(Duration::from_secs(5)));
                if client.status().is_ok() {
                    return Ok(());
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        Err(format!("shard on {} never became ready", self.addr))
    }

    /// Gracefully stops the shard when it still answers, reaps it
    /// either way. Used at teardown, not by the persona.
    pub fn stop(&mut self) {
        let Some(mut child) = self.child.take() else {
            return;
        };
        let acknowledged = Client::connect(&self.addr)
            .and_then(|mut c| {
                c.set_read_timeout(Some(Duration::from_secs(10)))?;
                c.shutdown()
            })
            .is_ok();
        if !acknowledged {
            let _ = child.kill();
        }
        let _ = child.wait();
    }
}

impl ShardBreaker for ChildShard {
    fn kill(&mut self) -> Result<(), String> {
        let Some(mut child) = self.child.take() else {
            return Err("shard has no live child to kill".into());
        };
        child.kill().map_err(|e| format!("kill failed: {e}"))?;
        child.wait().map_err(|e| format!("reap failed: {e}"))?;
        Ok(())
    }

    fn restart(&mut self) -> Result<(), String> {
        if self.child.is_some() {
            return Err("shard is already running".into());
        }
        self.start()
    }
}

impl Drop for ChildShard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One failover client, configured like every other in the run but with
/// its own derived jitter seed (reproducible, decorrelated).
fn cluster_client(shards: &[String], seed: u64, read_timeout_ms: u64) -> ClusterClient {
    let mut config = ClusterConfig::new(shards.iter().cloned());
    config.jitter_seed = seed;
    config.read_timeout_ms = read_timeout_ms;
    ClusterClient::new(config)
}

fn classify_cluster_error(e: &ClusterError) -> String {
    match e.as_server_error() {
        Some(wire) => format!("error:{}", wire.code.as_str()),
        None => "io_error".into(),
    }
}

fn issue_cluster(client: &mut ClusterClient, op: &Op, trace: u64) -> String {
    client.set_trace(Some(trace));
    let result = match op {
        Op::Explore(spec) => client.explore(spec).map(|_| ()),
        Op::Batch(specs) => client.batch(specs).map(|_| ()),
    };
    match result {
        Ok(()) => "ok".into(),
        Err(e) => classify_cluster_error(&e),
    }
}

/// Runs the plan against a shard cluster: same schedule, same SLOs,
/// ring-routed failover clients, the optional shard-killer, the
/// peer-fill probe, and a scrape summed over every answering shard.
///
/// `metrics_http` pairs with `shards` index-by-index (`None` entries
/// scrape over the wire protocol). `kill` arms the shard-killer against
/// `shards[kill_index]` — the breaker does the breaking so the harness
/// works identically on child processes and in-process daemons.
pub fn execute_cluster(
    shards: &[String],
    metrics_http: &[Option<String>],
    plan: &Plan,
    slo: &SloConfig,
    collector: &Collector,
    kill: Option<(usize, ShardKillPlan, &mut dyn ShardBreaker)>,
) -> RunOutcome {
    let started = Instant::now();
    let chaos_unexpected = AtomicU64::new(0);
    let reroutes = AtomicU64::new(0);
    let fingerprint = plan.fingerprint();
    let killed_for_good = kill
        .as_ref()
        .filter(|(_, plan, _)| plan.restart_after_ms.is_none())
        .map(|&(index, _, _)| index);

    // Chaos personas speak raw bytes at single sockets; spread them
    // round-robin over the shards so every daemon sees abuse.
    let chaos_addrs: Vec<SocketAddr> = shards
        .iter()
        .filter_map(|s| s.to_socket_addrs().ok().and_then(|mut a| a.next()))
        .collect();

    std::thread::scope(|scope| {
        for (client_index, script) in plan.closed_loop.iter().enumerate() {
            let reroutes = &reroutes;
            scope.spawn(move || {
                let mut client = cluster_client(
                    shards,
                    fingerprint.wrapping_add(client_index as u64),
                    30_000,
                );
                for (op_index, op) in script.iter().enumerate() {
                    let trace = trace_id(
                        fingerprint,
                        "closed",
                        (client_index as u64) << 32 | op_index as u64,
                    );
                    let t0 = Instant::now();
                    let outcome = issue_cluster(&mut client, op, trace);
                    collector.record_traced(
                        "closed",
                        &outcome,
                        Some(t0.elapsed().as_secs_f64()),
                        Some(trace),
                    );
                }
                reroutes.fetch_add(client.reroutes(), Ordering::Relaxed);
            });
        }
        if !chaos_addrs.is_empty() {
            for (index, client) in plan.chaos.iter().enumerate() {
                let chaos_unexpected = &chaos_unexpected;
                let addr = chaos_addrs[index % chaos_addrs.len()];
                scope.spawn(move || {
                    sleep_until(started, client.at_ms);
                    let t0 = Instant::now();
                    let outcome = chaos::run_client(addr, client);
                    if !client.persona.expects(&outcome) {
                        chaos_unexpected.fetch_add(1, Ordering::Relaxed);
                    }
                    collector.record(
                        &format!("chaos:{}", client.persona.as_str()),
                        &outcome.label(),
                        Some(t0.elapsed().as_secs_f64()),
                    );
                });
            }
        }
        if let Some((_, kill_plan, breaker)) = kill {
            let chaos_unexpected = &chaos_unexpected;
            scope.spawn(move || {
                sleep_until(started, kill_plan.at_ms);
                let t0 = Instant::now();
                let outcome = match breaker.kill() {
                    Ok(()) => "killed",
                    Err(e) => {
                        eprintln!("shard-killer: {e}");
                        chaos_unexpected.fetch_add(1, Ordering::Relaxed);
                        "kill_failed"
                    }
                };
                collector.record(
                    "chaos:shard_killer",
                    outcome,
                    Some(t0.elapsed().as_secs_f64()),
                );
                if let Some(after_ms) = kill_plan.restart_after_ms {
                    sleep_until(started, kill_plan.at_ms.saturating_add(after_ms));
                    let t0 = Instant::now();
                    let outcome = match breaker.restart() {
                        Ok(()) => "restarted",
                        Err(e) => {
                            eprintln!("shard-killer: {e}");
                            chaos_unexpected.fetch_add(1, Ordering::Relaxed);
                            "restart_failed"
                        }
                    };
                    collector.record(
                        "chaos:shard_killer",
                        outcome,
                        Some(t0.elapsed().as_secs_f64()),
                    );
                }
            });
        }
        for (index, arrival) in plan.big_instance.iter().enumerate() {
            let reroutes = &reroutes;
            scope.spawn(move || {
                sleep_until(started, arrival.at_ms);
                let trace = trace_id(fingerprint, "big-instance", index as u64);
                let mut client = cluster_client(
                    shards,
                    fingerprint.wrapping_mul(31).wrapping_add(index as u64),
                    180_000,
                );
                let t0 = Instant::now();
                let outcome = issue_cluster(&mut client, &arrival.op, trace);
                collector.record_traced(
                    "big-instance",
                    &outcome,
                    Some(t0.elapsed().as_secs_f64()),
                    Some(trace),
                );
                reroutes.fetch_add(client.reroutes(), Ordering::Relaxed);
            });
        }
        for (index, arrival) in plan.open_loop.iter().enumerate() {
            sleep_until(started, arrival.at_ms);
            let reroutes = &reroutes;
            scope.spawn(move || {
                let trace = trace_id(fingerprint, "open", index as u64);
                let mut client = cluster_client(
                    shards,
                    fingerprint.rotate_left(17).wrapping_add(index as u64),
                    30_000,
                );
                let t0 = Instant::now();
                let outcome = issue_cluster(&mut client, &arrival.op, trace);
                collector.record_traced(
                    "open",
                    &outcome,
                    Some(t0.elapsed().as_secs_f64()),
                    Some(trace),
                );
                reroutes.fetch_add(client.reroutes(), Ordering::Relaxed);
            });
        }
    });

    let (probe_consistent, probe_reroutes) =
        run_cluster_probe(shards, killed_for_good, plan, collector);
    reroutes.fetch_add(probe_reroutes, Ordering::Relaxed);

    // Scrape every shard that answers and sum the counters: the SLO
    // judgement (`bound_violations == 0`, hit-ratio floor) then covers
    // everything any surviving shard served.
    let mut scraped = 0u64;
    let mut daemon: Option<DaemonStats> = None;
    let mut peer_fill_hits = 0.0f64;
    let mut peer_fill_misses = 0.0f64;
    let mut trace_counters: Option<(u64, u64)> = None;
    for (index, shard) in shards.iter().enumerate() {
        let Some(addr) = resolve(shard) else { continue };
        let http = metrics_http.get(index).and_then(|h| h.as_deref());
        let Some(stats) = fetch_daemon_stats(addr, http) else {
            continue;
        };
        scraped += 1;
        let total = daemon.get_or_insert(DaemonStats {
            bound_checked: Some(0.0),
            bound_violations: Some(0.0),
            cache_hits: Some(0.0),
            cache_misses: Some(0.0),
            ..DaemonStats::default()
        });
        let add = |into: &mut Option<f64>, v: Option<f64>| {
            if let (Some(into), Some(v)) = (into.as_mut(), v) {
                *into += v;
            }
        };
        add(&mut total.bound_checked, stats.bound_checked);
        add(&mut total.bound_violations, stats.bound_violations);
        add(&mut total.cache_hits, stats.cache_hits);
        add(&mut total.cache_misses, stats.cache_misses);
        if let Some(exposition) = scrape_exposition(addr, http) {
            peer_fill_hits += crate::measure::metric_value(&exposition, "bfdn_peer_fill_hit_total")
                .unwrap_or(0.0);
            peer_fill_misses +=
                crate::measure::metric_value(&exposition, "bfdn_peer_fill_miss_total")
                    .unwrap_or(0.0);
        }
        if let Some((recorded, dropped)) = Client::connect(addr)
            .ok()
            .and_then(|mut c| c.trace_spans(None).ok())
            .map(|t| (t.recorded, t.dropped))
        {
            let (r, d) = trace_counters.get_or_insert((0, 0));
            *r += recorded;
            *d += dropped;
        }
    }

    let duration_s = started.elapsed().as_secs_f64();
    let summaries = collector.snapshot();
    let workload_ops: u64 = summaries
        .iter()
        .filter(|s| s.is_workload())
        .map(|s| s.count)
        .sum();
    let workload_ok: u64 = summaries
        .iter()
        .filter(|s| s.is_workload())
        .map(|s| s.ok)
        .sum();
    let chaos_unexpected = chaos_unexpected.load(Ordering::Relaxed);
    let violations = slo.violations(
        &summaries,
        daemon.as_ref(),
        chaos_unexpected,
        probe_consistent,
    );

    RunOutcome {
        duration_s,
        workload_ops,
        workload_ok,
        chaos_unexpected,
        daemon,
        probe_consistent,
        trace_counters,
        cluster: Some(ClusterStats {
            shards: shards.len() as u64,
            shards_scraped: scraped,
            peer_fill_hits,
            peer_fill_misses,
            reroutes: reroutes.load(Ordering::Relaxed),
            // Filled by the binary after the run when a fleet collector
            // was attached.
            fleet: None,
        }),
        pass: violations.is_empty(),
        violations,
    }
}

fn resolve(shard: &str) -> Option<SocketAddr> {
    shard.to_socket_addrs().ok().and_then(|mut a| a.next())
}

fn scrape_exposition(addr: SocketAddr, http: Option<&str>) -> Option<String> {
    match http {
        Some(http_addr) => crate::measure::scrape_http_metrics(http_addr).ok(),
        None => {
            let mut client = Client::connect(addr).ok()?;
            client
                .set_read_timeout(Some(Duration::from_secs(10)))
                .ok()?;
            client.metrics().ok()
        }
    }
}

/// The cluster probe: the single-daemon cold/warm consistency check,
/// routed through a failover client, plus the peer-fill leg — a shard
/// that did *not* serve the probe must answer it with a byte-identical
/// cached copy pulled from the shard that did, without executing.
/// Returns `(all legs consistent, reroutes the probe client made)`.
fn run_cluster_probe(
    shards: &[String],
    killed_for_good: Option<usize>,
    plan: &Plan,
    collector: &Collector,
) -> (Option<bool>, u64) {
    let Ok((local, _)) = exec::run_spec(&plan.probe) else {
        collector.record("probe", "local_exec_failed", None);
        return (Some(false), 0);
    };
    let expected = local.payload_json();
    let mut client = cluster_client(shards, plan.fingerprint() ^ 0x70726f6265, 30_000);
    let issue = |client: &mut ClusterClient, expect_cached: bool| -> bool {
        let t0 = Instant::now();
        let (outcome, good) = match client.explore(&plan.probe) {
            Ok(result) => {
                let consistent =
                    result.payload_json() == expected && result.cached == expect_cached;
                (
                    if consistent { "ok" } else { "inconsistent" }.to_string(),
                    consistent,
                )
            }
            Err(e) => (classify_cluster_error(&e), false),
        };
        collector.record("probe", &outcome, Some(t0.elapsed().as_secs_f64()));
        good
    };
    let cold = issue(&mut client, false);
    let warm = issue(&mut client, true);

    // Peer-fill leg: ask a different, live shard directly (plain
    // client, no ring) — it must copy the serving shard's cached result
    // rather than recompute, which is what bumps its
    // `bfdn_peer_fill_hit_total`.
    let serving = client.last_shard().map(str::to_string);
    let t0 = Instant::now();
    let peer_outcome = match &serving {
        None => "peer_fill_unroutable".to_string(),
        Some(serving) => {
            let target = shards
                .iter()
                .enumerate()
                .find(|&(index, addr)| addr != serving && killed_for_good != Some(index));
            match target {
                // A 1-shard "cluster" has no peer to fill from; that is
                // a configuration without the feature, not a failure.
                None => "peer_fill_no_peer".to_string(),
                Some((_, target)) => match Client::connect(target).and_then(|mut c| {
                    c.set_read_timeout(Some(Duration::from_secs(30)))?;
                    c.explore(plan.probe.clone())
                }) {
                    Ok(result) if result.payload_json() == expected && result.cached => {
                        "ok".to_string()
                    }
                    Ok(_) => "peer_fill_inconsistent".to_string(),
                    Err(e) => classify_error(&e),
                },
            }
        }
    };
    let peer_ok = peer_outcome == "ok" || peer_outcome == "peer_fill_no_peer";
    collector.record("probe", &peer_outcome, Some(t0.elapsed().as_secs_f64()));
    (Some(cold && warm && peer_ok), client.reroutes())
}
