//! `bfdn-load` — drive a deterministic load/chaos plan against a
//! running `bfdn-serve`, or against a shard cluster it spawns itself.
//!
//! ```text
//! bfdn-load [--addr HOST:PORT] [--profile quick|standard|chaos|flood]
//!           [--seed N] [--report-json PATH] [--metrics-http HOST:PORT]
//!           [--resident-budget BYTES]
//!           [--cluster-shards N --shard-bin PATH [--base-port P]
//!            [--kill-shard IDX [--kill-at-ms MS] [--restart-after-ms MS]]
//!            [--fleet-metrics HOST:PORT] [--shard-profile-dir DIR]]
//! ```
//!
//! The request sequence is a pure function of `(profile, seed)`; the
//! wall clock only paces it. `--metrics-http` points at the daemon's
//! `--metrics-addr` so the end-of-run SLO check can scrape
//! `bfdn_bound_violations_total` and the cache counters the way a real
//! monitoring stack would; without it the exposition is fetched over
//! the wire protocol. The JSON report goes to `--report-json` (and a
//! human summary to stderr). Exit codes: `0` SLO pass, `1` SLO fail,
//! `2` usage error. Hand-rolled flag parsing — the workspace carries no
//! CLI dependency.
//!
//! **Cluster mode** (`--cluster-shards N`): the harness spawns N
//! `bfdn-serve` children from `--shard-bin`, each listing the others as
//! peers (shard `i` serves on `base_port + 2i`, exports metrics on
//! `base_port + 2i + 1`), routes the same plan through ring-routed
//! failover clients, and tears the cluster down afterwards. With
//! `--kill-shard IDX` the shard-killer persona SIGKILLs that child
//! `--kill-at-ms` into the storm and, when `--restart-after-ms` is
//! given, respawns it on the same address — the SLOs (including
//! `bfdn_bound_violations_total == 0`, summed over every shard that
//! still answers) must hold regardless: the serving-layer analogue of
//! the paper's Proposition 7 breakdown tolerance.
//!
//! With `--fleet-metrics` the harness also runs the federated fleet
//! collector over the shards for the storm's duration and reads the
//! aggregated endpoint back into the report (`cluster.fleet`): shards
//! up, fleet-worst bound margin, summed bound violations. With
//! `--shard-profile-dir` every spawned shard writes its sampled worker
//! profile to `DIR/shard-<i>.folded` (inferno/flamegraph input) on
//! drain.
//!
//! The `flood` profile is the cache-busting storm: every flood spec is
//! unique within the run, sized to overflow a daemon running with
//! `--store-budget-bytes`, and followed by a reheat leg expecting the
//! oldest (evicted) specs back cached and byte-identical — from the
//! disk tier when a store is attached. Pass `--resident-budget BYTES`
//! (normally the daemon's own budget) to additionally fail the run if
//! `bfdn_cache_resident_bytes` ever ends the storm above it. Flood is
//! single-daemon only: the reheat leg targets one store-backed daemon.
//!
//! The post-storm probe expects its spec cold; its seed is derived from
//! `--seed`, so re-running the same seed against a still-warm daemon
//! fails the probe's cold expectation by design. Use a fresh seed (or a
//! fresh daemon) per run.

use bfdn_cluster::fleet::{self, FleetConfig};
use bfdn_loadgen::{
    execute, execute_cluster, report, ChildShard, Collector, FleetFacts, Plan, Profile,
    ShardKillPlan,
};
use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

struct Invocation {
    addr: String,
    profile: Profile,
    seed: u64,
    report_json: Option<String>,
    metrics_http: Option<String>,
    cluster_shards: Option<usize>,
    shard_bin: Option<String>,
    base_port: u16,
    kill_shard: Option<usize>,
    kill_at_ms: u64,
    restart_after_ms: Option<u64>,
    fleet_metrics: Option<String>,
    shard_profile_dir: Option<String>,
    resident_budget: Option<u64>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Invocation, String> {
    let mut invocation = Invocation {
        addr: "127.0.0.1:4077".into(),
        profile: Profile::Quick,
        seed: 1,
        report_json: None,
        metrics_http: None,
        cluster_shards: None,
        shard_bin: None,
        base_port: 4270,
        kill_shard: None,
        kill_at_ms: 500,
        restart_after_ms: None,
        fleet_metrics: None,
        shard_profile_dir: None,
        resident_budget: None,
    };
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => invocation.addr = value("--addr")?,
            "--profile" => {
                let v = value("--profile")?;
                invocation.profile = Profile::parse(&v)
                    .ok_or_else(|| format!("bad --profile `{v}` (quick|standard|chaos|flood)"))?;
            }
            "--resident-budget" => {
                let v = value("--resident-budget")?;
                invocation.resident_budget = Some(
                    v.parse()
                        .map_err(|_| format!("bad --resident-budget `{v}`"))?,
                );
            }
            "--seed" => {
                let v = value("--seed")?;
                invocation.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--report-json" => invocation.report_json = Some(value("--report-json")?),
            "--metrics-http" => invocation.metrics_http = Some(value("--metrics-http")?),
            "--cluster-shards" => {
                let v = value("--cluster-shards")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --cluster-shards `{v}`"))?;
                if n < 2 {
                    return Err("--cluster-shards needs at least 2".into());
                }
                invocation.cluster_shards = Some(n);
            }
            "--shard-bin" => invocation.shard_bin = Some(value("--shard-bin")?),
            "--base-port" => {
                let v = value("--base-port")?;
                invocation.base_port = v.parse().map_err(|_| format!("bad --base-port `{v}`"))?;
            }
            "--kill-shard" => {
                let v = value("--kill-shard")?;
                invocation.kill_shard =
                    Some(v.parse().map_err(|_| format!("bad --kill-shard `{v}`"))?);
            }
            "--kill-at-ms" => {
                let v = value("--kill-at-ms")?;
                invocation.kill_at_ms = v.parse().map_err(|_| format!("bad --kill-at-ms `{v}`"))?;
            }
            "--restart-after-ms" => {
                let v = value("--restart-after-ms")?;
                invocation.restart_after_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --restart-after-ms `{v}`"))?,
                );
            }
            "--fleet-metrics" => invocation.fleet_metrics = Some(value("--fleet-metrics")?),
            "--shard-profile-dir" => {
                invocation.shard_profile_dir = Some(value("--shard-profile-dir")?);
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --addr --profile --seed \
                     --report-json --metrics-http --resident-budget \
                     --cluster-shards --shard-bin \
                     --base-port --kill-shard --kill-at-ms --restart-after-ms \
                     --fleet-metrics --shard-profile-dir)"
                ))
            }
        }
    }
    if invocation.cluster_shards.is_some() && invocation.shard_bin.is_none() {
        return Err("--cluster-shards needs --shard-bin PATH".into());
    }
    if invocation.cluster_shards.is_none()
        && (invocation.shard_bin.is_some() || invocation.kill_shard.is_some())
    {
        return Err("--shard-bin/--kill-shard only make sense with --cluster-shards".into());
    }
    if invocation.cluster_shards.is_none()
        && (invocation.fleet_metrics.is_some() || invocation.shard_profile_dir.is_some())
    {
        return Err(
            "--fleet-metrics/--shard-profile-dir only make sense with --cluster-shards".into(),
        );
    }
    if invocation.cluster_shards.is_some() && invocation.profile == Profile::Flood {
        return Err(
            "--profile flood is single-daemon only (its reheat leg targets one \
             store-backed daemon)"
                .into(),
        );
    }
    if invocation.cluster_shards.is_some() && invocation.resident_budget.is_some() {
        return Err("--resident-budget only makes sense against a single daemon".into());
    }
    if let (Some(kill), Some(count)) = (invocation.kill_shard, invocation.cluster_shards) {
        if kill >= count {
            return Err(format!(
                "--kill-shard {kill} out of range for {count} shards"
            ));
        }
    }
    Ok(invocation)
}

fn run_cluster(
    invocation: &Invocation,
    plan: &Plan,
    collector: &Collector,
) -> Result<bfdn_loadgen::RunOutcome, String> {
    let count = invocation.cluster_shards.expect("cluster mode");
    let bin = invocation.shard_bin.as_deref().expect("checked in parse");
    let addrs: Vec<String> = (0..count)
        .map(|i| format!("127.0.0.1:{}", invocation.base_port + 2 * i as u16))
        .collect();
    let metrics: Vec<Option<String>> = (0..count)
        .map(|i| {
            Some(format!(
                "127.0.0.1:{}",
                invocation.base_port + 2 * i as u16 + 1
            ))
        })
        .collect();

    if let Some(dir) = &invocation.shard_profile_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--shard-profile-dir {dir}: {e}"))?;
    }
    let mut shards: Vec<ChildShard> = Vec::with_capacity(count);
    for (i, addr) in addrs.iter().enumerate() {
        let peers: Vec<String> = addrs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a.clone())
            .collect();
        let mut args = vec![
            "--addr".to_string(),
            addr.clone(),
            "--metrics-addr".to_string(),
            metrics[i].clone().expect("metrics addr"),
            "--peers".to_string(),
            peers.join(","),
        ];
        if let Some(dir) = &invocation.shard_profile_dir {
            args.push("--profile-out".to_string());
            args.push(format!("{dir}/shard-{i}.folded"));
        }
        match ChildShard::spawn(bin, &args, addr) {
            Ok(shard) => shards.push(shard),
            Err(e) => {
                for mut shard in shards {
                    shard.stop();
                }
                return Err(format!("shard {i}: {e}"));
            }
        }
        eprintln!("bfdn-load: shard {i} serving on {addr}");
    }

    // The fleet collector watches the shards for the storm's whole
    // duration, so its shards-up gauge reflects the kill/restart
    // timeline, not just a final poll.
    const FLEET_INTERVAL_MS: u64 = 250;
    let fleet = match &invocation.fleet_metrics {
        Some(addr) => {
            let mut fleet_config = FleetConfig::new(addr.clone(), addrs.clone());
            fleet_config.interval_ms = FLEET_INTERVAL_MS;
            match fleet::spawn(fleet_config) {
                Ok(handle) => {
                    eprintln!(
                        "bfdn-load: fleet collector on http://{}/metrics",
                        handle.addr()
                    );
                    Some(handle)
                }
                Err(e) => {
                    for mut shard in shards {
                        shard.stop();
                    }
                    return Err(format!("fleet collector on {addr}: {e}"));
                }
            }
        }
        None => None,
    };

    let config = invocation.profile.config();
    let mut outcome = match invocation.kill_shard {
        Some(index) => {
            let kill_plan = ShardKillPlan {
                at_ms: invocation.kill_at_ms,
                restart_after_ms: invocation.restart_after_ms,
            };
            eprintln!(
                "bfdn-load: shard-killer armed against shard {index} at t={}ms{}",
                kill_plan.at_ms,
                match kill_plan.restart_after_ms {
                    Some(ms) => format!(" (restart {ms}ms later)"),
                    None => " (no restart)".into(),
                }
            );
            execute_cluster(
                &addrs,
                &metrics,
                plan,
                &config.slo,
                collector,
                Some((index, kill_plan, &mut shards[index])),
            )
        }
        None => execute_cluster(&addrs, &metrics, plan, &config.slo, collector, None),
    };

    if let Some(handle) = fleet {
        // Give the collector two full scrape rounds to observe the
        // post-storm state (restarted shards back up, final counters),
        // then read the aggregated endpoint back while the shards are
        // still alive.
        std::thread::sleep(Duration::from_millis(2 * FLEET_INTERVAL_MS + 100));
        match bfdn_loadgen::measure::scrape_http_metrics(&handle.addr().to_string()) {
            Ok(text) => {
                let facts = FleetFacts::from_exposition(&text);
                eprintln!(
                    "bfdn-load: fleet says shards_up={} worst_margin={} bound_violations={}",
                    facts.shards_up,
                    facts
                        .worst_margin
                        .map_or("n/a".to_string(), |v| format!("{v:.2}")),
                    facts
                        .bound_violations
                        .map_or("n/a".to_string(), |v| format!("{v}")),
                );
                if let Some(cluster) = outcome.cluster.as_mut() {
                    cluster.fleet = Some(facts);
                }
            }
            Err(e) => eprintln!("bfdn-load: fleet scrape failed: {e}"),
        }
        handle.stop();
    }
    for mut shard in shards {
        shard.stop();
    }
    Ok(outcome)
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1)) {
        Ok(invocation) => invocation,
        Err(e) => {
            eprintln!("bfdn-load: {e}");
            return ExitCode::from(2);
        }
    };

    let mut config = invocation.profile.config();
    if let Some(budget) = invocation.resident_budget {
        config.slo.max_resident_bytes = Some(budget);
    }
    let plan = Plan::generate(&config, invocation.seed);
    eprintln!(
        "bfdn-load: profile={} seed={} fingerprint={:016x} — {} workload specs, {} chaos clients",
        plan.profile.as_str(),
        plan.seed,
        plan.fingerprint(),
        plan.total_specs(),
        plan.chaos.len()
    );

    let collector = Collector::new();
    let outcome = if invocation.cluster_shards.is_some() {
        match run_cluster(&invocation, &plan, &collector) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("bfdn-load: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let addr = match invocation
            .addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
        {
            Some(addr) => addr,
            None => {
                eprintln!("bfdn-load: cannot resolve `{}`", invocation.addr);
                return ExitCode::from(2);
            }
        };
        execute(
            addr,
            invocation.metrics_http.as_deref(),
            &plan,
            &config.slo,
            &collector,
        )
    };
    let summaries = collector.snapshot();

    for class in &summaries {
        eprintln!(
            "bfdn-load: {:<24} count={:<5} ok={:<5} p50={} p99={}",
            class.class,
            class.count,
            class.ok,
            fmt_latency(class.p50_s),
            fmt_latency(class.p99_s),
        );
        for entry in &class.slow_traces {
            eprintln!(
                "bfdn-load:   slowest {} trace={:016x}",
                fmt_latency(entry.latency_s),
                entry.trace
            );
        }
    }
    if let Some((recorded, dropped)) = outcome.trace_counters {
        eprintln!("bfdn-load: daemon spans recorded={recorded} dropped={dropped}");
    }
    if let Some(cluster) = &outcome.cluster {
        eprintln!(
            "bfdn-load: cluster {}/{} shards scraped, peer-fill hits={} misses={}, reroutes={}",
            cluster.shards_scraped,
            cluster.shards,
            cluster.peer_fill_hits,
            cluster.peer_fill_misses,
            cluster.reroutes
        );
    }
    eprintln!(
        "bfdn-load: {} ops in {:.2}s ({:.1} req/s), {} chaos outcomes unexplained",
        outcome.workload_ops,
        outcome.duration_s,
        outcome.workload_ops as f64 / outcome.duration_s.max(1e-9),
        outcome.chaos_unexpected
    );
    for violation in &outcome.violations {
        eprintln!("bfdn-load: SLO violation: {violation}");
    }

    let text = report::render(&plan, &outcome, &summaries);
    match &invocation.report_json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{text}\n")) {
                eprintln!("bfdn-load: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bfdn-load: report written to {path}");
        }
        None => println!("{text}"),
    }

    if outcome.pass {
        eprintln!("bfdn-load: SLO pass");
        ExitCode::SUCCESS
    } else {
        eprintln!("bfdn-load: SLO FAIL");
        ExitCode::FAILURE
    }
}

fn fmt_latency(seconds: f64) -> String {
    if seconds.is_finite() {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        "n/a".into()
    }
}
