//! `bfdn-load` — drive a deterministic load/chaos plan against a
//! running `bfdn-serve`.
//!
//! ```text
//! bfdn-load [--addr HOST:PORT] [--profile quick|standard|chaos]
//!           [--seed N] [--report-json PATH] [--metrics-http HOST:PORT]
//! ```
//!
//! The request sequence is a pure function of `(profile, seed)`; the
//! wall clock only paces it. `--metrics-http` points at the daemon's
//! `--metrics-addr` so the end-of-run SLO check can scrape
//! `bfdn_bound_violations_total` and the cache counters the way a real
//! monitoring stack would; without it the exposition is fetched over
//! the wire protocol. The JSON report goes to `--report-json` (and a
//! human summary to stderr). Exit codes: `0` SLO pass, `1` SLO fail,
//! `2` usage error. Hand-rolled flag parsing — the workspace carries no
//! CLI dependency.
//!
//! The post-storm probe expects its spec cold; its seed is derived from
//! `--seed`, so re-running the same seed against a still-warm daemon
//! fails the probe's cold expectation by design. Use a fresh seed (or a
//! fresh daemon) per run.

use bfdn_loadgen::{execute, report, Collector, Plan, Profile};
use std::net::ToSocketAddrs;
use std::process::ExitCode;

struct Invocation {
    addr: String,
    profile: Profile,
    seed: u64,
    report_json: Option<String>,
    metrics_http: Option<String>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<Invocation, String> {
    let mut invocation = Invocation {
        addr: "127.0.0.1:4077".into(),
        profile: Profile::Quick,
        seed: 1,
        report_json: None,
        metrics_http: None,
    };
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => invocation.addr = value("--addr")?,
            "--profile" => {
                let v = value("--profile")?;
                invocation.profile = Profile::parse(&v)
                    .ok_or_else(|| format!("bad --profile `{v}` (quick|standard|chaos)"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                invocation.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--report-json" => invocation.report_json = Some(value("--report-json")?),
            "--metrics-http" => invocation.metrics_http = Some(value("--metrics-http")?),
            other => {
                return Err(format!(
                    "unknown flag `{other}` (try --addr --profile --seed \
                     --report-json --metrics-http)"
                ))
            }
        }
    }
    Ok(invocation)
}

fn main() -> ExitCode {
    let invocation = match parse(std::env::args().skip(1)) {
        Ok(invocation) => invocation,
        Err(e) => {
            eprintln!("bfdn-load: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = match invocation
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("bfdn-load: cannot resolve `{}`", invocation.addr);
            return ExitCode::from(2);
        }
    };

    let config = invocation.profile.config();
    let plan = Plan::generate(&config, invocation.seed);
    eprintln!(
        "bfdn-load: profile={} seed={} fingerprint={:016x} — {} workload specs, {} chaos clients",
        plan.profile.as_str(),
        plan.seed,
        plan.fingerprint(),
        plan.total_specs(),
        plan.chaos.len()
    );

    let collector = Collector::new();
    let outcome = execute(
        addr,
        invocation.metrics_http.as_deref(),
        &plan,
        &config.slo,
        &collector,
    );
    let summaries = collector.snapshot();

    for class in &summaries {
        eprintln!(
            "bfdn-load: {:<24} count={:<5} ok={:<5} p50={} p99={}",
            class.class,
            class.count,
            class.ok,
            fmt_latency(class.p50_s),
            fmt_latency(class.p99_s),
        );
        for entry in &class.slow_traces {
            eprintln!(
                "bfdn-load:   slowest {} trace={:016x}",
                fmt_latency(entry.latency_s),
                entry.trace
            );
        }
    }
    if let Some((recorded, dropped)) = outcome.trace_counters {
        eprintln!("bfdn-load: daemon spans recorded={recorded} dropped={dropped}");
    }
    eprintln!(
        "bfdn-load: {} ops in {:.2}s ({:.1} req/s), {} chaos outcomes unexplained",
        outcome.workload_ops,
        outcome.duration_s,
        outcome.workload_ops as f64 / outcome.duration_s.max(1e-9),
        outcome.chaos_unexpected
    );
    for violation in &outcome.violations {
        eprintln!("bfdn-load: SLO violation: {violation}");
    }

    let text = report::render(&plan, &outcome, &summaries);
    match &invocation.report_json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{text}\n")) {
                eprintln!("bfdn-load: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("bfdn-load: report written to {path}");
        }
        None => println!("{text}"),
    }

    if outcome.pass {
        eprintln!("bfdn-load: SLO pass");
        ExitCode::SUCCESS
    } else {
        eprintln!("bfdn-load: SLO FAIL");
        ExitCode::FAILURE
    }
}

fn fmt_latency(seconds: f64) -> String {
    if seconds.is_finite() {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        "n/a".into()
    }
}
