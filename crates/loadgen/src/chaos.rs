//! The chaos layer: misbehaving client personas and their outcome
//! classification.
//!
//! Each persona abuses the wire protocol in one specific way and then
//! *classifies* what the daemon did about it. The invariant a chaos run
//! asserts is not "the persona was refused" — it is "nothing the
//! persona did was unexplained": every outcome lands in the persona's
//! expected set, the daemon never panics, and the workload sharing the
//! run keeps meeting its SLOs.

use bfdn_service::protocol::{read_frame, write_frame, Response, MAX_FRAME_LEN};
use rand::rngs::StdRng;
use rand::Rng;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// The misbehaving client personas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Persona {
    /// Announces a frame, then trickles bytes far slower than any sane
    /// client — the classic handler-pinning attack.
    SlowLoris,
    /// Sends a valid prefix and part of the payload, then vanishes.
    MidFrameDisconnect,
    /// Sends a cut-short length prefix, then vanishes.
    TruncatedPrefix,
    /// Announces a frame larger than [`MAX_FRAME_LEN`].
    OversizedPrefix,
    /// Sends correctly framed bytes that are not a request.
    GarbageBytes,
    /// Connects and never sends anything.
    ConnectIdle,
    /// Sends a valid request and slams the connection shut, racing the
    /// server's reply write.
    ReplyHangup,
}

impl Persona {
    pub const ALL: [Persona; 7] = [
        Persona::SlowLoris,
        Persona::MidFrameDisconnect,
        Persona::TruncatedPrefix,
        Persona::OversizedPrefix,
        Persona::GarbageBytes,
        Persona::ConnectIdle,
        Persona::ReplyHangup,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Persona::SlowLoris => "slow_loris",
            Persona::MidFrameDisconnect => "mid_frame_disconnect",
            Persona::TruncatedPrefix => "truncated_prefix",
            Persona::OversizedPrefix => "oversized_prefix",
            Persona::GarbageBytes => "garbage_bytes",
            Persona::ConnectIdle => "connect_idle",
            Persona::ReplyHangup => "reply_hangup",
        }
    }

    /// The persona's seeded payload, drawn at plan time so the run's
    /// byte sequence is part of the deterministic plan.
    pub fn payload(self, rng: &mut StdRng) -> Vec<u8> {
        match self {
            Persona::MidFrameDisconnect | Persona::GarbageBytes => {
                let len = rng.random_range(16..=64);
                (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Whether `outcome` is in this persona's expected set. `Failed` is
    /// never expected; everything else must match how the daemon is
    /// specified to treat the abuse.
    pub fn expects(self, outcome: &ChaosOutcome) -> bool {
        match (self, outcome) {
            (_, ChaosOutcome::Failed(_)) => false,
            // Cut off by the frame deadline, or we gave up trickling
            // into a daemon configured with a longer budget.
            (Persona::SlowLoris, ChaosOutcome::CutOff | ChaosOutcome::GaveUp) => true,
            (
                Persona::MidFrameDisconnect | Persona::TruncatedPrefix,
                ChaosOutcome::Disconnected,
            ) => true,
            // The structured reply can race our read against the drop.
            (Persona::OversizedPrefix, ChaosOutcome::StructuredError(code)) => code == "too_large",
            (Persona::OversizedPrefix, ChaosOutcome::Dropped) => true,
            (Persona::GarbageBytes, ChaosOutcome::StructuredError(_)) => true,
            // Reaped by the idle budget, or still idling when we left.
            (Persona::ConnectIdle, ChaosOutcome::Reaped | ChaosOutcome::Idled) => true,
            (Persona::ReplyHangup, ChaosOutcome::Hungup) => true,
            _ => false,
        }
    }
}

/// What happened to one chaos client, as observed from its side of the
/// socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The daemon answered a structured error with this wire code.
    StructuredError(String),
    /// The daemon dropped the connection before any reply.
    Dropped,
    /// The slow trickle was cut off mid-frame.
    CutOff,
    /// The trickle cap elapsed with the daemon still reading.
    GaveUp,
    /// The persona disconnected itself as scripted.
    Disconnected,
    /// The idle socket was reaped by the daemon.
    Reaped,
    /// The idle window elapsed without a reap; the persona left.
    Idled,
    /// The persona hung up on the reply as scripted.
    Hungup,
    /// Infrastructure failure (e.g. connect refused) — never expected.
    Failed(String),
}

impl ChaosOutcome {
    /// Stable label for tallies and the JSON report.
    pub fn label(&self) -> String {
        match self {
            ChaosOutcome::StructuredError(code) => format!("error:{code}"),
            ChaosOutcome::Dropped => "dropped".into(),
            ChaosOutcome::CutOff => "cut_off".into(),
            ChaosOutcome::GaveUp => "gave_up".into(),
            ChaosOutcome::Disconnected => "disconnected".into(),
            ChaosOutcome::Reaped => "reaped".into(),
            ChaosOutcome::Idled => "idled".into(),
            ChaosOutcome::Hungup => "hungup".into(),
            ChaosOutcome::Failed(reason) => format!("failed:{reason}"),
        }
    }
}

/// One scheduled chaos client.
#[derive(Clone, Debug)]
pub struct ChaosClient {
    pub persona: Persona,
    /// Injection offset from the start of the run.
    pub at_ms: u64,
    /// Seeded persona payload (empty for payload-free personas).
    pub payload: Vec<u8>,
}

/// How long personas wait on the daemon before classifying the outcome
/// themselves (trickle caps, idle windows, reply reads).
const PATIENCE: Duration = Duration::from_millis(3_000);

/// Runs one chaos client against the daemon and classifies the result.
pub fn run_client(addr: SocketAddr, client: &ChaosClient) -> ChaosOutcome {
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => return ChaosOutcome::Failed(format!("connect: {e}")),
    };
    if let Err(e) = stream.set_read_timeout(Some(PATIENCE)) {
        return ChaosOutcome::Failed(format!("timeout: {e}"));
    }
    match client.persona {
        Persona::SlowLoris => slow_loris(stream),
        Persona::MidFrameDisconnect => {
            let mut bytes = 200u32.to_be_bytes().to_vec();
            bytes.extend_from_slice(&client.payload);
            send_and_vanish(stream, &bytes)
        }
        Persona::TruncatedPrefix => send_and_vanish(stream, &64u32.to_be_bytes()[..2]),
        Persona::OversizedPrefix => expect_reply(stream, &(MAX_FRAME_LEN + 1).to_be_bytes()),
        Persona::GarbageBytes => {
            let mut bytes = (client.payload.len() as u32).to_be_bytes().to_vec();
            bytes.extend_from_slice(&client.payload);
            expect_reply(stream, &bytes)
        }
        Persona::ConnectIdle => connect_idle(stream),
        Persona::ReplyHangup => reply_hangup(stream),
    }
}

fn slow_loris(mut stream: TcpStream) -> ChaosOutcome {
    if stream.write_all(&2_048u32.to_be_bytes()).is_err() {
        return ChaosOutcome::CutOff;
    }
    let tick = Duration::from_millis(50);
    let ticks = (PATIENCE.as_millis() / tick.as_millis()) as u32;
    for _ in 0..ticks {
        std::thread::sleep(tick);
        if stream
            .write_all(b"z")
            .and_then(|()| stream.flush())
            .is_err()
        {
            return ChaosOutcome::CutOff;
        }
    }
    ChaosOutcome::GaveUp
}

fn send_and_vanish(mut stream: TcpStream, bytes: &[u8]) -> ChaosOutcome {
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
    ChaosOutcome::Disconnected
}

fn expect_reply(mut stream: TcpStream, bytes: &[u8]) -> ChaosOutcome {
    if stream
        .write_all(bytes)
        .and_then(|()| stream.flush())
        .is_err()
    {
        return ChaosOutcome::Dropped;
    }
    let _ = stream.shutdown(Shutdown::Write);
    match read_frame(&mut stream) {
        Ok(reply) => match Response::from_json(&reply) {
            Ok(Response::Error(e)) => ChaosOutcome::StructuredError(e.code.as_str().to_string()),
            Ok(_) => ChaosOutcome::StructuredError("unexpected_ok".into()),
            Err(_) => ChaosOutcome::Failed("reply frame did not decode".into()),
        },
        Err(_) => ChaosOutcome::Dropped,
    }
}

fn connect_idle(mut stream: TcpStream) -> ChaosOutcome {
    // Never send; wait out the patience window watching for the reap.
    let mut probe = [0u8; 8];
    match std::io::Read::read(&mut stream, &mut probe) {
        Ok(0) => ChaosOutcome::Reaped,
        Ok(_) => ChaosOutcome::Failed("daemon sent unsolicited bytes".into()),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            ChaosOutcome::Idled
        }
        Err(_) => ChaosOutcome::Reaped,
    }
}

fn reply_hangup(mut stream: TcpStream) -> ChaosOutcome {
    // A valid request the daemon will answer — we are gone before the
    // reply write lands.
    let request = r#"{"v":1,"type":"status"}"#;
    let _ = write_frame(&mut stream, request);
    let _ = stream.shutdown(Shutdown::Both);
    ChaosOutcome::Hungup
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn payloads_are_deterministic_per_seed() {
        for persona in Persona::ALL {
            let a = persona.payload(&mut StdRng::seed_from_u64(9));
            let b = persona.payload(&mut StdRng::seed_from_u64(9));
            assert_eq!(a, b, "{persona:?}");
        }
        let garbage = Persona::GarbageBytes.payload(&mut StdRng::seed_from_u64(9));
        assert!((16..=64).contains(&garbage.len()));
        assert!(Persona::SlowLoris
            .payload(&mut StdRng::seed_from_u64(9))
            .is_empty());
    }

    #[test]
    fn expected_sets_accept_the_scripted_outcomes_only() {
        assert!(Persona::SlowLoris.expects(&ChaosOutcome::CutOff));
        assert!(Persona::SlowLoris.expects(&ChaosOutcome::GaveUp));
        assert!(!Persona::SlowLoris.expects(&ChaosOutcome::Hungup));
        assert!(
            Persona::OversizedPrefix.expects(&ChaosOutcome::StructuredError("too_large".into()))
        );
        assert!(
            !Persona::OversizedPrefix.expects(&ChaosOutcome::StructuredError("bad_request".into()))
        );
        assert!(Persona::GarbageBytes.expects(&ChaosOutcome::StructuredError("bad_request".into())));
        assert!(Persona::ConnectIdle.expects(&ChaosOutcome::Reaped));
        assert!(Persona::ConnectIdle.expects(&ChaosOutcome::Idled));
        for persona in Persona::ALL {
            assert!(
                !persona.expects(&ChaosOutcome::Failed("connect refused".into())),
                "{persona:?}"
            );
        }
    }
}
