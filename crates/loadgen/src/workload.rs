//! The workload model: profiles, request mixes, and deterministic plan
//! generation.
//!
//! A [`Plan`] is a pure function of `(profile, seed)`: every spec,
//! batch size, arrival offset, and chaos payload is drawn from one
//! seeded [`StdRng`] stream in a fixed order. Two invocations with the
//! same profile and seed therefore produce byte-identical request
//! sequences — which is what makes a chaos run reproducible enough to
//! file as a bug report.

use crate::chaos::{ChaosClient, Persona};
use crate::measure::{ClassSlo, SloConfig};
use bfdn_service::protocol::ExploreSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Algorithms the generator draws from. The daemon re-checks the
/// single-layer Theorem 1 envelope on every run it serves and the SLO
/// asserts `bfdn_bound_violations_total == 0`, so the mix must stay
/// inside that envelope: the multi-layer variants (`bfdn-l2`,
/// `bfdn-l3`) trade the Theorem 1 constant for lower communication and
/// plain `dfs` carries no collaborative guarantee — all three exceed
/// the bound on parts of this grid, so they are excluded by design.
const ALGO_CHOICES: [&str; 5] = ["bfdn", "bfdn-robust", "bfdn-shortcut", "write-read", "cte"];

/// Tree families in the mix: the adversarial shapes from the paper's
/// experiments plus the random families.
const FAMILY_CHOICES: [&str; 5] = [
    "comb",
    "binary",
    "spider",
    "random-recursive",
    "caterpillar",
];

/// The `big-instance` request class: single explores near the daemon's
/// validation caps (`MAX_N` = 2·10⁶, `MAX_K` = 65 536), drawn
/// round-robin. Only the shallow families are tractable at this size —
/// rounds grow at least linearly in depth — and each request is heavy
/// enough that the daemon's per-request `--round-threads` budget is
/// what keeps its latency inside the class SLO.
const BIG_INSTANCE_CHOICES: [(&str, &str, u64, u64); 2] = [
    ("bfdn", "random-recursive", 1_500_000, 4_096),
    ("bfdn", "binary", 1_000_000, 8_192),
];

/// Mean gap between `flood` arrivals — deliberately much tighter than
/// the open-loop mix, so the storm outruns eviction rather than
/// trickling in.
const FLOOD_MEAN_GAP_MS: u64 = 5;

/// The four shipped load profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// A few seconds of light traffic — the CI smoke profile.
    Quick,
    /// A sustained mixed workload sized for a laptop-class daemon.
    Standard,
    /// The standard workload with every misbehaving persona injected.
    Chaos,
    /// A cache-busting storm of unique specs sized past a resident-bytes
    /// budget, plus a reheat leg proving the overflow serves from the
    /// store. Single-daemon only.
    Flood,
}

impl Profile {
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "quick" => Some(Profile::Quick),
            "standard" => Some(Profile::Standard),
            "chaos" => Some(Profile::Chaos),
            "flood" => Some(Profile::Flood),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Standard => "standard",
            Profile::Chaos => "chaos",
            Profile::Flood => "flood",
        }
    }

    /// The shipped configuration for this profile.
    pub fn config(self) -> ProfileConfig {
        match self {
            Profile::Quick => ProfileConfig {
                profile: self,
                open_loop_requests: 24,
                open_loop_mean_gap_ms: 25,
                closed_loop_clients: 2,
                closed_loop_ops: 12,
                chaos_rotations: 0,
                big_instance_requests: 0,
                flood_requests: 0,
                mix: MixConfig::default(),
                slo: SloConfig::default(),
            },
            Profile::Standard => ProfileConfig {
                profile: self,
                open_loop_requests: 96,
                open_loop_mean_gap_ms: 15,
                closed_loop_clients: 4,
                closed_loop_ops: 32,
                chaos_rotations: 0,
                big_instance_requests: 2,
                flood_requests: 0,
                mix: MixConfig::default(),
                slo: SloConfig {
                    // Near-cap requests are legitimately thousands of
                    // times heavier than the mix; they get their own
                    // latency budget instead of the global 2s p99.
                    class_slos: vec![ClassSlo {
                        class: "big-instance".into(),
                        max_p50_s: 20.0,
                        max_p99_s: 60.0,
                    }],
                    ..SloConfig::default()
                },
            },
            Profile::Chaos => ProfileConfig {
                profile: self,
                open_loop_requests: 48,
                open_loop_mean_gap_ms: 20,
                closed_loop_clients: 3,
                closed_loop_ops: 16,
                chaos_rotations: 2,
                big_instance_requests: 0,
                flood_requests: 0,
                mix: MixConfig::default(),
                slo: SloConfig::default(),
            },
            Profile::Flood => ProfileConfig {
                profile: self,
                open_loop_requests: 12,
                open_loop_mean_gap_ms: 15,
                closed_loop_clients: 2,
                closed_loop_ops: 8,
                chaos_rotations: 0,
                big_instance_requests: 0,
                flood_requests: 48,
                mix: MixConfig::default(),
                slo: SloConfig {
                    // The storm is unique-spec by design: nearly every
                    // memory-tier lookup must miss, so the warm-mix hit
                    // floor does not apply. Pair the run with
                    // `--resident-budget` to assert the hard bound the
                    // profile exists to stress.
                    min_cache_hit_ratio: 0.0,
                    ..SloConfig::default()
                },
            },
        }
    }
}

/// The request mix: how the generator shapes individual operations.
#[derive(Clone, Debug)]
pub struct MixConfig {
    /// Probability an op re-issues a spec this run already sent (a
    /// guaranteed daemon cache hit once the first issue completed).
    pub warm_ratio: f64,
    /// Probability an op is a `Batch` instead of a single `Explore`.
    pub batch_ratio: f64,
    /// Batch sizes are drawn uniformly from `2..=max_batch`.
    pub max_batch: usize,
    /// Spec-size distribution: tree sizes drawn uniformly from this set.
    pub n_choices: &'static [u64],
    /// Robot-count distribution.
    pub k_choices: &'static [u64],
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            warm_ratio: 0.35,
            batch_ratio: 0.25,
            max_batch: 6,
            n_choices: &[200, 400, 800],
            k_choices: &[2, 4, 8, 16],
        }
    }
}

/// Everything needed to generate and judge one load run.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    pub profile: Profile,
    /// Arrivals on the open-loop driver (fired on schedule, completion
    /// not awaited before the next send).
    pub open_loop_requests: usize,
    /// Mean gap between open-loop arrivals; actual gaps are uniform on
    /// `0..=2·mean`.
    pub open_loop_mean_gap_ms: u64,
    /// Closed-loop clients, each issuing ops back-to-back.
    pub closed_loop_clients: usize,
    /// Ops per closed-loop client.
    pub closed_loop_ops: usize,
    /// Full rotations of [`Persona::ALL`] injected into the run.
    pub chaos_rotations: usize,
    /// Requests in the `big-instance` class — near-cap single explores
    /// drawn from [`BIG_INSTANCE_CHOICES`] and scattered over the
    /// open-loop window, judged by their own [`ClassSlo`].
    pub big_instance_requests: usize,
    /// Requests in the `flood` class: an open-loop storm of specs that
    /// are unique within the run (every one a guaranteed cache miss),
    /// sized to overflow a configured resident-bytes budget so the
    /// daemon's disk tier has to absorb the working set. The driver
    /// follows the storm with a reheat leg over the oldest flood specs,
    /// expecting them cached and byte-identical.
    pub flood_requests: usize,
    pub mix: MixConfig,
    pub slo: SloConfig,
}

/// One operation against the daemon.
#[derive(Clone, Debug)]
pub enum Op {
    Explore(ExploreSpec),
    Batch(Vec<ExploreSpec>),
}

impl Op {
    /// Specs carried by this op.
    pub fn len(&self) -> usize {
        match self {
            Op::Explore(_) => 1,
            Op::Batch(specs) => specs.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A scheduled open-loop send.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Offset from the start of the run.
    pub at_ms: u64,
    pub op: Op,
}

/// The fully materialized run: replaying it is exactly the load test.
#[derive(Clone, Debug)]
pub struct Plan {
    pub profile: Profile,
    pub seed: u64,
    /// Open-loop arrivals in schedule order.
    pub open_loop: Vec<Arrival>,
    /// One script per closed-loop client.
    pub closed_loop: Vec<Vec<Op>>,
    /// The `big-instance` arrivals: near-cap single explores with their
    /// own latency class, scattered over the open-loop window.
    pub big_instance: Vec<Arrival>,
    /// The `flood` arrivals: run-unique single explores fired as a
    /// tightly paced open-loop storm (cache-busting by construction).
    pub flood: Vec<Arrival>,
    /// Chaos clients with their injection offsets.
    pub chaos: Vec<ChaosClient>,
    /// The post-storm consistency probe: a spec no workload op uses, so
    /// its first issue after the chaos is a fresh execution whose
    /// payload must be byte-identical to a local run.
    pub probe: ExploreSpec,
}

impl Plan {
    /// Generates the plan for `(config, seed)` — deterministic, no
    /// wall-clock input.
    pub fn generate(config: &ProfileConfig, seed: u64) -> Plan {
        let mut rng = StdRng::seed_from_u64(seed);
        // Spec seeds are namespaced by the run seed so two runs with
        // different seeds hit a shared daemon cache cold.
        let mut pool = SpecPool::new(config.mix.clone(), seed.wrapping_mul(1_000_003));

        let mut open_loop = Vec::with_capacity(config.open_loop_requests);
        let mut at_ms = 0u64;
        for _ in 0..config.open_loop_requests {
            let gap = rng.random_range(0..=2 * config.open_loop_mean_gap_ms as usize) as u64;
            at_ms += gap;
            open_loop.push(Arrival {
                at_ms,
                op: pool.next_op(&mut rng),
            });
        }
        let span_ms = at_ms.max(1);

        let closed_loop = (0..config.closed_loop_clients)
            .map(|_| {
                (0..config.closed_loop_ops)
                    .map(|_| pool.next_op(&mut rng))
                    .collect()
            })
            .collect();

        // Big-instance seeds live far outside the pool's namespace
        // (`base..base+ops`) and below the probe's (`base + 2³²−1`), so
        // neither the mix nor the probe can ever have warmed them.
        let mut big_instance = Vec::with_capacity(config.big_instance_requests);
        for i in 0..config.big_instance_requests {
            let (algo, family, n, k) = BIG_INSTANCE_CHOICES[i % BIG_INSTANCE_CHOICES.len()];
            let at_ms = rng.random_range(0..=span_ms as usize) as u64;
            let spec_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add(0x00B1_6000 + i as u64);
            big_instance.push(Arrival {
                at_ms,
                op: Op::Explore(ExploreSpec::new(algo, family, n, k, spec_seed)),
            });
        }

        // Flood seeds get their own namespace slice (above big-instance,
        // below the probe), so no mix op, near-cap request, or probe can
        // ever have warmed a flood spec — and each index is distinct, so
        // the storm never repeats a spec within the run either.
        let mut flood = Vec::with_capacity(config.flood_requests);
        let mut flood_at_ms = 0u64;
        for i in 0..config.flood_requests {
            flood_at_ms += rng.random_range(0..=2 * FLOOD_MEAN_GAP_MS as usize) as u64;
            let spec_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add(0x00F1_0000 + i as u64);
            let family = FAMILY_CHOICES[i % FAMILY_CHOICES.len()];
            let n = 300 + (i as u64 % 3) * 100;
            flood.push(Arrival {
                at_ms: flood_at_ms,
                op: Op::Explore(ExploreSpec::new("bfdn", family, n, 4, spec_seed)),
            });
        }

        let mut chaos = Vec::new();
        for _ in 0..config.chaos_rotations {
            // A full rotation guarantees every persona appears; offsets
            // scatter them across the workload window.
            for persona in Persona::ALL {
                let at_ms = rng.random_range(0..=span_ms as usize) as u64;
                let payload = persona.payload(&mut rng);
                chaos.push(ChaosClient {
                    persona,
                    at_ms,
                    payload,
                });
            }
        }

        // The probe spec's seed is outside the pool's namespace, so no
        // workload op can have warmed it.
        let probe = ExploreSpec::new(
            "bfdn",
            "comb",
            300,
            4,
            seed.wrapping_mul(1_000_003)
                .wrapping_add(u64::from(u32::MAX)),
        );

        Plan {
            profile: config.profile,
            seed,
            open_loop,
            closed_loop,
            big_instance,
            flood,
            chaos,
            probe,
        }
    }

    /// Workload specs in the plan (chaos clients carry none).
    pub fn total_specs(&self) -> usize {
        self.open_loop.iter().map(|a| a.op.len()).sum::<usize>()
            + self
                .closed_loop
                .iter()
                .flatten()
                .map(Op::len)
                .sum::<usize>()
            + self.big_instance.iter().map(|a| a.op.len()).sum::<usize>()
            + self.flood.iter().map(|a| a.op.len()).sum::<usize>()
    }

    /// A compact deterministic fingerprint of the request sequence,
    /// used by tests (and bug reports) to pin two runs to the same
    /// plan.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        for arrival in &self.open_loop {
            text.push_str(&arrival.at_ms.to_string());
            push_op(&mut text, &arrival.op);
        }
        for script in &self.closed_loop {
            text.push('|');
            for op in script {
                push_op(&mut text, op);
            }
        }
        for arrival in &self.big_instance {
            text.push('!');
            text.push_str(&arrival.at_ms.to_string());
            push_op(&mut text, &arrival.op);
        }
        for arrival in &self.flood {
            text.push('~');
            text.push_str(&arrival.at_ms.to_string());
            push_op(&mut text, &arrival.op);
        }
        for client in &self.chaos {
            text.push_str(client.persona.as_str());
            text.push_str(&client.at_ms.to_string());
            for b in &client.payload {
                text.push((b'a' + (b % 26)) as char);
            }
        }
        push_spec(&mut text, &self.probe);
        bfdn_service::protocol::fnv1a(text.as_bytes())
    }
}

fn push_op(text: &mut String, op: &Op) {
    match op {
        Op::Explore(spec) => push_spec(text, spec),
        Op::Batch(specs) => {
            text.push('[');
            for spec in specs {
                push_spec(text, spec);
            }
            text.push(']');
        }
    }
}

fn push_spec(text: &mut String, spec: &ExploreSpec) {
    text.push_str(&spec.canonical());
    text.push(';');
}

/// Draws specs for the mix, tracking what was already issued so the
/// warm ratio can re-issue guaranteed-cacheable work.
struct SpecPool {
    mix: MixConfig,
    issued: Vec<ExploreSpec>,
    next_seed: u64,
}

impl SpecPool {
    fn new(mix: MixConfig, seed_base: u64) -> Self {
        SpecPool {
            mix,
            issued: Vec::new(),
            next_seed: seed_base,
        }
    }

    /// A spec never issued before in this run (distinct seed field).
    fn fresh(&mut self, rng: &mut StdRng) -> ExploreSpec {
        let algo = ALGO_CHOICES[rng.random_range(0..ALGO_CHOICES.len())];
        let family = FAMILY_CHOICES[rng.random_range(0..FAMILY_CHOICES.len())];
        let n = self.mix.n_choices[rng.random_range(0..self.mix.n_choices.len())];
        let k = self.mix.k_choices[rng.random_range(0..self.mix.k_choices.len())];
        let seed = self.next_seed;
        self.next_seed = self.next_seed.wrapping_add(1);
        ExploreSpec::new(algo, family, n, k, seed)
    }

    fn next_spec(&mut self, rng: &mut StdRng) -> ExploreSpec {
        if !self.issued.is_empty() && rng.random::<f64>() < self.mix.warm_ratio {
            let i = rng.random_range(0..self.issued.len());
            return self.issued[i].clone();
        }
        let spec = self.fresh(rng);
        self.issued.push(spec.clone());
        spec
    }

    fn next_op(&mut self, rng: &mut StdRng) -> Op {
        if rng.random::<f64>() < self.mix.batch_ratio {
            let len = rng.random_range(2..=self.mix.max_batch);
            Op::Batch((0..len).map(|_| self.next_spec(rng)).collect())
        } else {
            Op::Explore(self.next_spec(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfdn_service::exec;

    #[test]
    fn plans_are_deterministic_in_profile_and_seed() {
        for profile in [
            Profile::Quick,
            Profile::Standard,
            Profile::Chaos,
            Profile::Flood,
        ] {
            let a = Plan::generate(&profile.config(), 7);
            let b = Plan::generate(&profile.config(), 7);
            assert_eq!(a.fingerprint(), b.fingerprint(), "{profile:?}");
            let c = Plan::generate(&profile.config(), 8);
            assert_ne!(a.fingerprint(), c.fingerprint(), "{profile:?}");
        }
    }

    #[test]
    fn every_generated_spec_passes_daemon_validation() {
        let plan = Plan::generate(&Profile::Chaos.config(), 3);
        let check = |op: &Op| match op {
            Op::Explore(spec) => exec::validate(spec).expect("valid explore"),
            Op::Batch(specs) => {
                assert!(specs.len() >= 2);
                for spec in specs {
                    exec::validate(spec).expect("valid batch item");
                }
            }
        };
        for arrival in &plan.open_loop {
            check(&arrival.op);
        }
        for op in plan.closed_loop.iter().flatten() {
            check(op);
        }
        exec::validate(&plan.probe).expect("valid probe");
    }

    #[test]
    fn chaos_profile_includes_every_persona() {
        let plan = Plan::generate(&Profile::Chaos.config(), 1);
        for persona in Persona::ALL {
            let count = plan.chaos.iter().filter(|c| c.persona == persona).count();
            assert_eq!(count, 2, "{persona:?} appears once per rotation");
        }
        assert!(Plan::generate(&Profile::Quick.config(), 1).chaos.is_empty());
    }

    #[test]
    fn standard_profile_carries_validated_big_instance_requests() {
        let config = Profile::Standard.config();
        let plan = Plan::generate(&config, 11);
        assert_eq!(plan.big_instance.len(), 2);
        for arrival in &plan.big_instance {
            let Op::Explore(spec) = &arrival.op else {
                panic!("big-instance ops are single explores");
            };
            exec::validate(spec).expect("near-cap spec passes daemon validation");
            assert!(spec.n >= 1_000_000, "big means big: n={}", spec.n);
            assert!(spec.k >= 4_096, "big means big: k={}", spec.k);
        }
        // Its own SLO class exists, so the run is judged on the right
        // budget rather than the global p99.
        assert!(config
            .slo
            .class_slos
            .iter()
            .any(|slo| slo.class == "big-instance"));
        // The quick (CI) profile stays light.
        assert!(Plan::generate(&Profile::Quick.config(), 11)
            .big_instance
            .is_empty());
    }

    #[test]
    fn flood_profile_is_a_run_unique_validated_storm() {
        let config = Profile::Flood.config();
        let plan = Plan::generate(&config, 13);
        assert_eq!(plan.flood.len(), 48);
        let mut keys = std::collections::HashSet::new();
        for arrival in &plan.flood {
            let Op::Explore(spec) = &arrival.op else {
                panic!("flood ops are single explores");
            };
            exec::validate(spec).expect("flood spec passes daemon validation");
            assert!(
                keys.insert(spec.canonical()),
                "every flood spec is unique: {}",
                spec.canonical()
            );
        }
        // The storm shares no spec with the mix or the probe — every
        // flood request is a guaranteed first issue.
        let clash = |op: &Op| match op {
            Op::Explore(spec) => keys.contains(&spec.canonical()),
            Op::Batch(specs) => specs.iter().any(|s| keys.contains(&s.canonical())),
        };
        assert!(!plan.open_loop.iter().any(|a| clash(&a.op)));
        assert!(!plan.closed_loop.iter().flatten().any(clash));
        assert!(!keys.contains(&plan.probe.canonical()));
        // The warm-mix hit floor is lifted: the storm misses by design.
        assert_eq!(config.slo.min_cache_hit_ratio, 0.0);
        // The other profiles carry no storm.
        assert!(Plan::generate(&Profile::Quick.config(), 13)
            .flood
            .is_empty());
        assert!(Plan::generate(&Profile::Chaos.config(), 13)
            .flood
            .is_empty());
    }

    #[test]
    fn probe_spec_is_never_part_of_the_workload() {
        let plan = Plan::generate(&Profile::Chaos.config(), 5);
        let probe_key = plan.probe.canonical();
        let clash = |op: &Op| match op {
            Op::Explore(spec) => spec.canonical() == probe_key,
            Op::Batch(specs) => specs.iter().any(|s| s.canonical() == probe_key),
        };
        assert!(!plan.open_loop.iter().any(|a| clash(&a.op)));
        assert!(!plan.closed_loop.iter().flatten().any(clash));
    }

    #[test]
    fn warm_ratio_produces_repeat_specs() {
        let plan = Plan::generate(&Profile::Standard.config(), 2);
        let mut keys = std::collections::HashSet::new();
        let mut repeats = 0usize;
        let mut total = 0usize;
        let mut visit = |spec: &ExploreSpec| {
            total += 1;
            if !keys.insert(spec.canonical()) {
                repeats += 1;
            }
        };
        for arrival in &plan.open_loop {
            match &arrival.op {
                Op::Explore(s) => visit(s),
                Op::Batch(specs) => specs.iter().for_each(&mut visit),
            }
        }
        for op in plan.closed_loop.iter().flatten() {
            match op {
                Op::Explore(s) => visit(s),
                Op::Batch(specs) => specs.iter().for_each(&mut visit),
            }
        }
        assert!(total > 100, "standard profile is a real workload: {total}");
        assert!(
            repeats * 5 > total,
            "~35% warm ratio yields plenty of repeats: {repeats}/{total}"
        );
    }
}
