//! The JSON run report consumed by CI's `load-smoke` job and by
//! `sweep --loadgen-report`.
//!
//! One object per run: identity (profile, seed, plan fingerprint),
//! aggregate throughput, the SLO verdict with every violation named,
//! daemon-side facts from the scrape (including the span recorder's
//! recorded/dropped counters), and one entry per client class with its
//! outcome tallies, latency quantiles, and the trace ids of its slowest
//! operations — ready to drill into via `bfdn-request trace --id` or
//! the daemon's Perfetto export.

use crate::measure::{ClassSummary, DaemonStats};
use crate::run::RunOutcome;
use crate::workload::Plan;
use bfdn_obs::json::JsonObject;

/// Renders the full report. The field set is part of the tooling
/// contract: CI greps `pass`, `throughput_rps`, and the per-class
/// quantiles.
pub fn render(plan: &Plan, outcome: &RunOutcome, summaries: &[ClassSummary]) -> String {
    let mut o = JsonObject::new();
    o.str("profile", plan.profile.as_str())
        .u64("seed", plan.seed)
        .str("plan_fingerprint", &format!("{:016x}", plan.fingerprint()))
        .u64("planned_specs", plan.total_specs() as u64)
        .f64("duration_s", outcome.duration_s)
        .u64("workload_ops", outcome.workload_ops)
        .u64("workload_ok", outcome.workload_ok)
        .f64(
            "throughput_rps",
            if outcome.duration_s > 0.0 {
                outcome.workload_ops as f64 / outcome.duration_s
            } else {
                f64::NAN
            },
        )
        .u64("chaos_clients", plan.chaos.len() as u64)
        .u64("chaos_unexpected", outcome.chaos_unexpected);
    match outcome.probe_consistent {
        Some(v) => o.bool("probe_consistent", v),
        None => o.raw("probe_consistent", "null"),
    };
    match &outcome.daemon {
        Some(stats) => o.raw("daemon", &daemon_json(stats)),
        None => o.raw("daemon", "null"),
    };
    match outcome.trace_counters {
        Some((recorded, dropped)) => o
            .u64("trace_recorded", recorded)
            .u64("trace_dropped", dropped),
        None => o.raw("trace_recorded", "null").raw("trace_dropped", "null"),
    };
    match &outcome.cluster {
        Some(stats) => o.raw("cluster", &cluster_json(stats)),
        None => o.raw("cluster", "null"),
    };
    o.raw("classes", &classes_json(summaries));
    o.raw("violations", &string_array(&outcome.violations));
    o.bool("pass", outcome.pass);
    o.finish()
}

fn daemon_json(stats: &DaemonStats) -> String {
    let mut o = JsonObject::new();
    for (key, value) in [
        ("bound_checked", stats.bound_checked),
        ("bound_violations", stats.bound_violations),
        ("cache_hits", stats.cache_hits),
        ("cache_misses", stats.cache_misses),
        ("resident_bytes", stats.resident_bytes),
        ("store_hits", stats.store_hits),
    ] {
        match value {
            Some(v) => o.f64(key, v),
            None => o.raw(key, "null"),
        };
    }
    match stats.cache_hit_ratio() {
        Some(ratio) => o.f64("cache_hit_ratio", ratio),
        None => o.raw("cache_hit_ratio", "null"),
    };
    o.finish()
}

fn cluster_json(stats: &crate::cluster::ClusterStats) -> String {
    let mut o = JsonObject::new();
    o.u64("shards", stats.shards)
        .u64("shards_scraped", stats.shards_scraped)
        .f64("peer_fill_hits", stats.peer_fill_hits)
        .f64("peer_fill_misses", stats.peer_fill_misses)
        .u64("reroutes", stats.reroutes);
    match &stats.fleet {
        Some(fleet) => {
            let mut f = JsonObject::new();
            f.u64("shards_up", fleet.shards_up);
            match fleet.worst_margin {
                Some(v) => f.f64("worst_margin", v),
                None => f.raw("worst_margin", "null"),
            };
            match fleet.bound_violations {
                Some(v) => f.f64("bound_violations", v),
                None => f.raw("bound_violations", "null"),
            };
            o.raw("fleet", &f.finish())
        }
        None => o.raw("fleet", "null"),
    };
    o.finish()
}

fn classes_json(summaries: &[ClassSummary]) -> String {
    let mut out = String::from("[");
    for (i, class) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut outcomes = JsonObject::new();
        for (label, count) in &class.outcomes {
            outcomes.u64(label, *count);
        }
        let mut slow = String::from("[");
        for (i, entry) in class.slow_traces.iter().enumerate() {
            if i > 0 {
                slow.push(',');
            }
            let mut t = JsonObject::new();
            t.str("trace", &format!("{:016x}", entry.trace))
                .f64("latency_s", entry.latency_s);
            slow.push_str(&t.finish());
        }
        slow.push(']');
        let mut o = JsonObject::new();
        o.str("class", &class.class)
            .u64("count", class.count)
            .u64("ok", class.ok)
            .raw("outcomes", &outcomes.finish())
            .raw("slow_traces", &slow)
            .u64("observed", class.observed)
            .f64("mean_s", class.mean_s)
            .f64("p50_s", class.p50_s)
            .f64("p95_s", class.p95_s)
            .f64("p99_s", class.p99_s);
        out.push_str(&o.finish());
    }
    out.push(']');
    out
}

fn string_array(values: &[String]) -> String {
    let mut out = String::from("[");
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        bfdn_obs::json::escape_into(&mut out, value);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Collector;
    use crate::workload::Profile;
    use bfdn_service::jsonval::Json;

    #[test]
    fn report_round_trips_through_the_workspace_json_parser() {
        let plan = Plan::generate(&Profile::Quick.config(), 1);
        let collector = Collector::new();
        for i in 0..10u64 {
            collector.record_traced("open", "ok", Some(0.004 + i as f64 / 1000.0), Some(i | 1));
        }
        collector.record("open", "error:busy", None);
        let outcome = RunOutcome {
            duration_s: 2.5,
            workload_ops: 11,
            workload_ok: 10,
            chaos_unexpected: 0,
            daemon: Some(DaemonStats {
                bound_checked: Some(8.0),
                bound_violations: Some(0.0),
                cache_hits: Some(3.0),
                cache_misses: Some(7.0),
                resident_bytes: Some(2048.0),
                store_hits: Some(5.0),
            }),
            probe_consistent: Some(true),
            trace_counters: Some((42, 0)),
            cluster: Some(crate::cluster::ClusterStats {
                shards: 3,
                shards_scraped: 2,
                peer_fill_hits: 1.0,
                peer_fill_misses: 4.0,
                reroutes: 6,
                fleet: Some(crate::cluster::FleetFacts {
                    shards_up: 2,
                    worst_margin: Some(12.5),
                    bound_violations: Some(0.0),
                }),
            }),
            violations: vec!["example \"quoted\" violation".into()],
            pass: false,
        };
        let text = render(&plan, &outcome, &collector.snapshot());

        let json = Json::parse(&text).expect("report is valid JSON");
        assert_eq!(json.get("profile").and_then(Json::as_str), Some("quick"));
        assert_eq!(json.get("seed").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("pass").and_then(Json::as_bool), Some(false));
        assert_eq!(
            json.get("throughput_rps").and_then(Json::as_f64),
            Some(11.0 / 2.5)
        );
        assert_eq!(
            json.get("probe_consistent").and_then(Json::as_bool),
            Some(true)
        );
        let daemon = json.get("daemon").expect("daemon object");
        assert_eq!(
            daemon.get("bound_violations").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            daemon.get("cache_hit_ratio").and_then(Json::as_f64),
            Some(0.3)
        );
        assert_eq!(
            daemon.get("resident_bytes").and_then(Json::as_f64),
            Some(2048.0)
        );
        assert_eq!(daemon.get("store_hits").and_then(Json::as_f64), Some(5.0));
        let classes = json.get("classes").and_then(Json::as_arr).expect("classes");
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].get("class").and_then(Json::as_str), Some("open"));
        assert_eq!(classes[0].get("count").and_then(Json::as_u64), Some(11));
        assert_eq!(
            classes[0]
                .get("outcomes")
                .and_then(|o| o.get("error:busy"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(json.get("trace_recorded").and_then(Json::as_u64), Some(42));
        assert_eq!(json.get("trace_dropped").and_then(Json::as_u64), Some(0));
        let cluster = json.get("cluster").expect("cluster object");
        assert_eq!(cluster.get("shards").and_then(Json::as_u64), Some(3));
        assert_eq!(
            cluster.get("shards_scraped").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            cluster.get("peer_fill_hits").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(cluster.get("reroutes").and_then(Json::as_u64), Some(6));
        let fleet = cluster.get("fleet").expect("fleet object");
        assert_eq!(fleet.get("shards_up").and_then(Json::as_u64), Some(2));
        assert_eq!(fleet.get("worst_margin").and_then(Json::as_f64), Some(12.5));
        assert_eq!(
            fleet.get("bound_violations").and_then(Json::as_f64),
            Some(0.0)
        );
        let slow = classes[0]
            .get("slow_traces")
            .and_then(Json::as_arr)
            .expect("slow_traces");
        assert_eq!(slow.len(), 5, "top five slowest survive");
        // Slowest first: the i=9 sample (0.013s, trace id 9).
        assert_eq!(
            slow[0].get("trace").and_then(Json::as_str),
            Some("0000000000000009")
        );
        assert_eq!(
            slow[0].get("latency_s").and_then(Json::as_f64),
            Some(0.004 + 9.0 / 1000.0)
        );
        let violations = json
            .get("violations")
            .and_then(Json::as_arr)
            .expect("violations");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].as_str(), Some("example \"quoted\" violation"));
        // The fingerprint is stable across renders of the same plan.
        let again = render(&plan, &outcome, &collector.snapshot());
        assert_eq!(
            Json::parse(&again)
                .unwrap()
                .get("plan_fingerprint")
                .and_then(Json::as_str)
                .map(str::to_string),
            json.get("plan_fingerprint")
                .and_then(Json::as_str)
                .map(str::to_string)
        );
    }
}
