//! The measurement core: per-class latency histograms and outcome
//! tallies on a [`bfdn_obs::Registry`], the daemon `/metrics` scrape,
//! and end-of-run SLO checks.
//!
//! Classes are client populations: `open`, `closed`, `big-instance`,
//! `flood` / `flood-reheat`, and one `chaos:<persona>` per misbehaving
//! persona. Latencies land in
//! the same histogram/quantile machinery the daemon itself exports, and
//! the harness's buckets are the daemon's
//! [`DEFAULT_LATENCY_BUCKETS`](bfdn_obs::metrics::DEFAULT_LATENCY_BUCKETS)
//! extended past 10s — the mix classes bucket identically to the
//! daemon, while the near-cap `big-instance` quantiles stay resolvable
//! instead of saturating at the daemon's top bucket.

use bfdn_obs::{Counter, Histogram, Registry};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Thread-safe collector for everything the drivers observe.
pub struct Collector {
    registry: Registry,
    state: Mutex<BTreeMap<String, ClassHandles>>,
}

struct ClassHandles {
    latency: Arc<Histogram>,
    outcomes: BTreeMap<String, Arc<Counter>>,
    /// The slowest traced operations seen so far, slowest first, capped
    /// at [`SLOW_TRACES_PER_CLASS`].
    slow: Vec<SlowTrace>,
}

/// How many slowest-trace entries each class keeps.
pub const SLOW_TRACES_PER_CLASS: usize = 5;

/// The daemon's latency buckets extended to 120s, so multi-second
/// `big-instance` requests still resolve to a quantile.
const LOAD_LATENCY_BUCKETS: [f64; 17] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0,
];

/// One slow operation worth drilling into: its latency and the trace id
/// to look up in the daemon's span ring or Perfetto timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowTrace {
    pub trace: u64,
    pub latency_s: f64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    pub fn new() -> Self {
        Collector {
            registry: Registry::new(),
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records one finished operation: its class, its outcome label
    /// (`ok`, `error:<code>`, `io_error`, a chaos label, …), and its
    /// latency when one is meaningful.
    pub fn record(&self, class: &str, outcome: &str, latency_s: Option<f64>) {
        self.record_traced(class, outcome, latency_s, None);
    }

    /// Like [`Collector::record`], additionally remembering the trace id
    /// when the operation carried one — the slowest
    /// [`SLOW_TRACES_PER_CLASS`] per class survive into the report.
    pub fn record_traced(
        &self,
        class: &str,
        outcome: &str,
        latency_s: Option<f64>,
        trace: Option<u64>,
    ) {
        let mut state = self.state.lock().expect("collector");
        let handles = state
            .entry(class.to_string())
            .or_insert_with(|| ClassHandles {
                latency: self.registry.histogram(
                    "bfdn_load_latency_seconds",
                    "Observed request latency per client class",
                    &[("class", class)],
                    &LOAD_LATENCY_BUCKETS,
                ),
                outcomes: BTreeMap::new(),
                slow: Vec::new(),
            });
        if let Some(latency) = latency_s {
            handles.latency.observe(latency);
            if let Some(trace) = trace {
                handles.slow.push(SlowTrace {
                    trace,
                    latency_s: latency,
                });
                handles
                    .slow
                    .sort_by(|a, b| b.latency_s.total_cmp(&a.latency_s));
                handles.slow.truncate(SLOW_TRACES_PER_CLASS);
            }
        }
        let counter = handles
            .outcomes
            .entry(outcome.to_string())
            .or_insert_with(|| {
                self.registry.counter(
                    "bfdn_load_outcomes_total",
                    "Operation outcomes per client class",
                    &[("class", class), ("outcome", outcome)],
                )
            });
        counter.inc();
    }

    /// Point-in-time summaries, one per class, in name order.
    pub fn snapshot(&self) -> Vec<ClassSummary> {
        let state = self.state.lock().expect("collector");
        state
            .iter()
            .map(|(class, handles)| {
                let outcomes: Vec<(String, u64)> = handles
                    .outcomes
                    .iter()
                    .map(|(label, counter)| (label.clone(), counter.get()))
                    .collect();
                let count: u64 = outcomes.iter().map(|(_, n)| n).sum();
                let ok = outcomes
                    .iter()
                    .find(|(label, _)| label == "ok")
                    .map_or(0, |(_, n)| *n);
                ClassSummary {
                    class: class.clone(),
                    count,
                    ok,
                    outcomes,
                    slow_traces: handles.slow.clone(),
                    observed: handles.latency.count(),
                    mean_s: if handles.latency.count() == 0 {
                        f64::NAN
                    } else {
                        handles.latency.sum() / handles.latency.count() as f64
                    },
                    p50_s: handles.latency.quantile(0.50),
                    p95_s: handles.latency.quantile(0.95),
                    p99_s: handles.latency.quantile(0.99),
                }
            })
            .collect()
    }

    /// The harness's own instruments in Prometheus text form.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

/// One class's end-of-run numbers.
#[derive(Clone, Debug)]
pub struct ClassSummary {
    pub class: String,
    /// All recorded outcomes.
    pub count: u64,
    /// Outcomes labelled exactly `ok`.
    pub ok: u64,
    /// `(label, count)` tallies in label order.
    pub outcomes: Vec<(String, u64)>,
    /// The slowest traced operations, slowest first (at most
    /// [`SLOW_TRACES_PER_CLASS`]); empty for untraced classes.
    pub slow_traces: Vec<SlowTrace>,
    /// Operations that contributed a latency sample.
    pub observed: u64,
    pub mean_s: f64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
}

impl ClassSummary {
    /// Whether this class is workload traffic (vs. a chaos persona).
    pub fn is_workload(&self) -> bool {
        !self.class.starts_with("chaos:")
    }
}

/// A latency objective for one named client class, overriding the
/// global `max_p99_s`. Exists for classes whose work is legitimately
/// orders of magnitude heavier than the mix — the `big-instance`
/// near-cap requests — where one global p99 would either mask a
/// regression in the small classes or permanently fail the big one.
#[derive(Clone, Debug)]
pub struct ClassSlo {
    /// The class label the override applies to.
    pub class: String,
    /// Highest tolerated p50 latency for this class.
    pub max_p50_s: f64,
    /// Highest tolerated p99 latency for this class.
    pub max_p99_s: f64,
}

/// End-of-run service-level objectives.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Highest tolerated `1 - ok/count` across workload classes.
    pub max_error_ratio: f64,
    /// Highest tolerated p99 latency on any workload class without a
    /// [`ClassSlo`] override.
    pub max_p99_s: f64,
    /// Per-class overrides; a listed class is judged on its own
    /// p50/p99 budgets instead of the global p99.
    pub class_slos: Vec<ClassSlo>,
    /// Lowest tolerated daemon cache hit ratio after the run (the warm
    /// share of the mix must actually be served from the cache).
    pub min_cache_hit_ratio: f64,
    /// Fail the run if the daemon reports any Theorem 1 / Lemma 2
    /// violation on work it served.
    pub require_zero_bound_violations: bool,
    /// When set, fail the run if `bfdn_cache_resident_bytes` exceeds
    /// this after the storm — the flood profile's hard-bound check
    /// against a daemon running with `--store-budget-bytes`. Missing
    /// evidence fails closed, like every other daemon-side objective.
    pub max_resident_bytes: Option<u64>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            max_error_ratio: 0.01,
            max_p99_s: 2.0,
            class_slos: Vec::new(),
            min_cache_hit_ratio: 0.05,
            require_zero_bound_violations: true,
            max_resident_bytes: None,
        }
    }
}

/// Daemon-side facts pulled from its Prometheus exposition.
#[derive(Clone, Debug, Default)]
pub struct DaemonStats {
    pub bound_checked: Option<f64>,
    pub bound_violations: Option<f64>,
    pub cache_hits: Option<f64>,
    pub cache_misses: Option<f64>,
    /// The memory tier's byte gauge — what a `--store-budget-bytes`
    /// daemon promises never to exceed.
    pub resident_bytes: Option<f64>,
    /// Memory misses answered from the persistent store's disk tier.
    pub store_hits: Option<f64>,
}

impl DaemonStats {
    pub fn parse(exposition: &str) -> DaemonStats {
        DaemonStats {
            bound_checked: metric_value(exposition, "bfdn_bound_checked_total"),
            bound_violations: metric_value(exposition, "bfdn_bound_violations_total"),
            cache_hits: metric_value(exposition, "bfdn_cache_hits_total"),
            cache_misses: metric_value(exposition, "bfdn_cache_misses_total"),
            resident_bytes: metric_value(exposition, "bfdn_cache_resident_bytes"),
            store_hits: metric_value(exposition, "bfdn_store_hits_total"),
        }
    }

    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let (hits, misses) = (self.cache_hits?, self.cache_misses?);
        let total = hits + misses;
        (total > 0.0).then(|| hits / total)
    }
}

/// The value of an unlabelled metric in a Prometheus text exposition.
pub fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Scrapes `http://{addr}/metrics` with a plain socket and returns the
/// body.
///
/// # Errors
///
/// I/O failure, a non-200 status, or a malformed response.
pub fn scrape_http_metrics(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: bfdn\r\nConnection: close\r\n\r\n")?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply)?;
    if !reply.starts_with("HTTP/1.1 200") {
        return Err(io::Error::other(format!(
            "scrape answered {}",
            reply.lines().next().unwrap_or("nothing")
        )));
    }
    let body = reply
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::other("scrape reply has no body"))?
        .1;
    Ok(body.to_string())
}

impl SloConfig {
    /// Evaluates the objectives; an empty vector is a pass. Inputs the
    /// evaluation cannot obtain (no scrape, empty classes) fail closed
    /// with an explicit violation rather than passing silently.
    pub fn violations(
        &self,
        summaries: &[ClassSummary],
        daemon: Option<&DaemonStats>,
        chaos_unexpected: u64,
        probe_consistent: Option<bool>,
    ) -> Vec<String> {
        let mut violations = Vec::new();

        let workload: Vec<&ClassSummary> = summaries.iter().filter(|s| s.is_workload()).collect();
        let total: u64 = workload.iter().map(|s| s.count).sum();
        let ok: u64 = workload.iter().map(|s| s.ok).sum();
        if total == 0 {
            violations.push("no workload operations completed".into());
        } else {
            let error_ratio = 1.0 - ok as f64 / total as f64;
            if error_ratio > self.max_error_ratio {
                violations.push(format!(
                    "workload error ratio {error_ratio:.4} exceeds {:.4}",
                    self.max_error_ratio
                ));
            }
        }
        for class in &workload {
            if class.observed == 0 {
                continue;
            }
            match self.class_slos.iter().find(|slo| slo.class == class.class) {
                Some(slo) => {
                    if class.p50_s > slo.max_p50_s {
                        violations.push(format!(
                            "class {} p50 {:.3}s exceeds {:.3}s",
                            class.class, class.p50_s, slo.max_p50_s
                        ));
                    }
                    if class.p99_s > slo.max_p99_s {
                        violations.push(format!(
                            "class {} p99 {:.3}s exceeds {:.3}s",
                            class.class, class.p99_s, slo.max_p99_s
                        ));
                    }
                }
                None => {
                    if class.p99_s > self.max_p99_s {
                        violations.push(format!(
                            "class {} p99 {:.3}s exceeds {:.3}s",
                            class.class, class.p99_s, self.max_p99_s
                        ));
                    }
                }
            }
        }

        if chaos_unexpected > 0 {
            violations.push(format!(
                "{chaos_unexpected} chaos outcomes outside their persona's expected set"
            ));
        }

        match daemon {
            None => violations.push("daemon /metrics was not scraped".into()),
            Some(stats) => {
                if self.require_zero_bound_violations {
                    match stats.bound_violations {
                        Some(0.0) => {}
                        Some(v) => violations
                            .push(format!("bfdn_bound_violations_total = {v} after the run")),
                        None => violations
                            .push("bfdn_bound_violations_total missing from scrape".into()),
                    }
                }
                match stats.cache_hit_ratio() {
                    Some(ratio) if ratio >= self.min_cache_hit_ratio => {}
                    Some(ratio) => violations.push(format!(
                        "cache hit ratio {ratio:.3} below {:.3}",
                        self.min_cache_hit_ratio
                    )),
                    None => violations.push("daemon served nothing from or past its cache".into()),
                }
                if let Some(budget) = self.max_resident_bytes {
                    match stats.resident_bytes {
                        Some(bytes) if bytes <= budget as f64 => {}
                        Some(bytes) => violations.push(format!(
                            "resident bytes {bytes:.0} exceed the {budget}-byte budget"
                        )),
                        None => {
                            violations.push("bfdn_cache_resident_bytes missing from scrape".into())
                        }
                    }
                }
            }
        }

        match probe_consistent {
            Some(true) => {}
            Some(false) => violations
                .push("post-storm probe payload differs from fresh local execution".into()),
            None => violations.push("post-storm probe did not run".into()),
        }

        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_tallies_outcomes_and_quantiles_per_class() {
        let collector = Collector::new();
        for ms in [1u64, 2, 3, 4, 100] {
            collector.record("open", "ok", Some(ms as f64 / 1000.0));
        }
        collector.record("open", "error:busy", None);
        collector.record("chaos:slow_loris", "cut_off", Some(0.4));

        let summaries = collector.snapshot();
        assert_eq!(summaries.len(), 2);
        let chaos = &summaries[0];
        assert_eq!(chaos.class, "chaos:slow_loris");
        assert!(!chaos.is_workload());
        assert_eq!(chaos.count, 1);
        assert_eq!(chaos.ok, 0);
        let open = &summaries[1];
        assert_eq!(open.class, "open");
        assert!(open.is_workload());
        assert_eq!((open.count, open.ok, open.observed), (6, 5, 5));
        assert_eq!(
            open.outcomes,
            vec![("error:busy".into(), 1), ("ok".into(), 5)]
        );
        assert!(open.p50_s < open.p99_s, "{} {}", open.p50_s, open.p99_s);
        assert!(open.p99_s <= 0.25, "100ms sample lands in the ≤0.25 bucket");

        let text = collector.render();
        assert!(text.contains(r#"bfdn_load_outcomes_total{class="open",outcome="ok"} 5"#));
        assert!(text.contains(r#"bfdn_load_latency_seconds_count{class="open"} 5"#));
    }

    #[test]
    fn metric_parsing_reads_unlabelled_values() {
        let text = "# HELP x y\nbfdn_bound_checked_total 12\nbfdn_bound_violations_total 0\n\
                    bfdn_cache_hits_total 30\nbfdn_cache_misses_total 10\n\
                    bfdn_cache_resident_bytes 4000\nbfdn_store_hits_total 7\n";
        let stats = DaemonStats::parse(text);
        assert_eq!(stats.bound_checked, Some(12.0));
        assert_eq!(stats.bound_violations, Some(0.0));
        assert_eq!(stats.cache_hit_ratio(), Some(0.75));
        assert_eq!(stats.resident_bytes, Some(4000.0));
        assert_eq!(stats.store_hits, Some(7.0));
        assert_eq!(metric_value(text, "bfdn_cache"), None, "prefix only");
        assert_eq!(metric_value(text, "missing_metric"), None);
    }

    #[test]
    fn slo_passes_on_a_clean_run_and_names_each_violation() {
        let collector = Collector::new();
        for _ in 0..50 {
            collector.record("open", "ok", Some(0.002));
        }
        let summaries = collector.snapshot();
        let daemon = DaemonStats {
            bound_checked: Some(40.0),
            bound_violations: Some(0.0),
            cache_hits: Some(10.0),
            cache_misses: Some(40.0),
            ..DaemonStats::default()
        };
        let slo = SloConfig::default();
        let clean = slo.violations(&summaries, Some(&daemon), 0, Some(true));
        assert!(clean.is_empty(), "{clean:?}");

        // Every failure mode is named.
        let bad_daemon = DaemonStats {
            bound_violations: Some(2.0),
            cache_hits: Some(0.0),
            cache_misses: Some(50.0),
            ..daemon
        };
        let failures = slo.violations(&summaries, Some(&bad_daemon), 3, Some(false));
        assert_eq!(failures.len(), 4, "{failures:?}");
        assert!(failures.iter().any(|v| v.contains("bound_violations")));
        assert!(failures.iter().any(|v| v.contains("cache hit ratio")));
        assert!(failures.iter().any(|v| v.contains("chaos outcomes")));
        assert!(failures.iter().any(|v| v.contains("probe")));

        // Missing evidence fails closed.
        let missing = slo.violations(&summaries, None, 0, None);
        assert!(missing.iter().any(|v| v.contains("not scraped")));
        assert!(missing.iter().any(|v| v.contains("did not run")));
    }

    #[test]
    fn class_slo_overrides_judge_the_big_class_on_its_own_budget() {
        let collector = Collector::new();
        // The mix stays fast; the big class is slow but within its own
        // budget — and far past the global 2s p99.
        for _ in 0..20 {
            collector.record("open", "ok", Some(0.002));
            collector.record("big-instance", "ok", Some(8.0));
        }
        let daemon = DaemonStats {
            bound_checked: Some(40.0),
            bound_violations: Some(0.0),
            cache_hits: Some(10.0),
            cache_misses: Some(30.0),
            ..DaemonStats::default()
        };
        let mut slo = SloConfig::default();
        let failures = slo.violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert!(
            failures.iter().any(|v| v.contains("big-instance")),
            "without an override the global p99 trips: {failures:?}"
        );
        slo.class_slos = vec![ClassSlo {
            class: "big-instance".into(),
            max_p50_s: 30.0,
            max_p99_s: 60.0,
        }];
        let clean = slo.violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert!(clean.is_empty(), "{clean:?}");
        // The override judges p50 too, not just p99.
        slo.class_slos[0].max_p50_s = 1.0;
        let p50_trip = slo.violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert!(p50_trip.iter().any(|v| v.contains("p50")), "{p50_trip:?}");
    }

    #[test]
    fn resident_budget_slo_judges_the_gauge_and_fails_closed() {
        let collector = Collector::new();
        for _ in 0..10 {
            collector.record("flood", "ok", Some(0.002));
        }
        let daemon = DaemonStats {
            bound_checked: Some(10.0),
            bound_violations: Some(0.0),
            cache_hits: Some(1.0),
            cache_misses: Some(9.0),
            resident_bytes: Some(4000.0),
            store_hits: Some(5.0),
        };
        let mut slo = SloConfig {
            min_cache_hit_ratio: 0.0,
            ..SloConfig::default()
        };
        // Unset budget: the gauge is informational only.
        let clean = slo.violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert!(clean.is_empty(), "{clean:?}");
        // Within budget passes; over budget is named.
        slo.max_resident_bytes = Some(4096);
        let clean = slo.violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert!(clean.is_empty(), "{clean:?}");
        slo.max_resident_bytes = Some(3000);
        let over = slo.violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert!(
            over.iter().any(|v| v.contains("resident bytes")),
            "{over:?}"
        );
        // A budget with no gauge in the scrape fails closed.
        let blind = DaemonStats {
            resident_bytes: None,
            ..daemon
        };
        let missing = slo.violations(&collector.snapshot(), Some(&blind), 0, Some(true));
        assert!(
            missing
                .iter()
                .any(|v| v.contains("bfdn_cache_resident_bytes missing")),
            "{missing:?}"
        );
    }

    #[test]
    fn error_ratio_slo_trips_on_busy_storms() {
        let collector = Collector::new();
        for _ in 0..90 {
            collector.record("closed", "ok", Some(0.001));
        }
        for _ in 0..10 {
            collector.record("closed", "error:busy", None);
        }
        let daemon = DaemonStats {
            bound_checked: Some(90.0),
            bound_violations: Some(0.0),
            cache_hits: Some(45.0),
            cache_misses: Some(45.0),
            ..DaemonStats::default()
        };
        let failures =
            SloConfig::default().violations(&collector.snapshot(), Some(&daemon), 0, Some(true));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("error ratio"));
    }
}
