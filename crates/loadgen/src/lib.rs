//! `bfdn-loadgen` — deterministic load generation and chaos testing for
//! the `bfdn-serve` daemon.
//!
//! The subsystem has three layers, mirroring how serving systems are
//! actually qualified:
//!
//! - **Workload model** ([`workload`]): a [`workload::Plan`] is a pure
//!   function of `(profile, seed)` — open-loop arrivals with seeded
//!   inter-arrival gaps, closed-loop client scripts, and a request mix
//!   (cold/warm ratio, batch sizes, spec-size distribution) drawn from
//!   the same `exec` registry the daemon validates against. Wall-clock
//!   time only *executes* the schedule; it never decides what is sent.
//! - **Chaos layer** ([`chaos`]): misbehaving client personas — the
//!   slow-loris writer, the mid-frame disconnect, truncated and
//!   oversized length prefixes, garbage payloads, connect-then-idle
//!   sockets, and the reply hangup racing the server's write — injected
//!   into the same run. Every persona classifies what happened to it,
//!   so a report never contains an unexplained outcome.
//! - **Measurement core** ([`measure`]): latency histograms and outcome
//!   tallies per client class, kept in a [`bfdn_obs::Registry`] so the
//!   harness's own numbers use the exact instruments the daemon
//!   exports, plus end-of-run SLO checks that scrape the daemon's
//!   `/metrics` and assert `bfdn_bound_violations_total == 0` — the
//!   paper's Theorem 1 / Lemma 2 guarantees hold on everything served
//!   under load or the run fails.
//!
//! [`run::execute`] drives a plan against a live daemon and
//! [`report::render`] emits the JSON consumed by CI's `load-smoke` job
//! and `sweep --loadgen-report`. [`cluster::execute_cluster`] drives
//! the same plan against a shard cluster through ring-routed failover
//! clients, adds the `shard-killer` persona (SIGKILL a daemon
//! mid-storm, optionally restart it) and a peer-fill probe leg, and
//! judges the run by the same SLOs — the systems analogue of the
//! paper's Proposition 7 breakdown tolerance.

pub mod chaos;
pub mod cluster;
pub mod measure;
pub mod report;
pub mod run;
pub mod workload;

pub use chaos::{ChaosClient, ChaosOutcome, Persona};
pub use cluster::{
    execute_cluster, ChildShard, ClusterStats, FleetFacts, ShardBreaker, ShardKillPlan,
};
pub use measure::{Collector, SloConfig};
pub use run::{execute, RunOutcome};
pub use workload::{Arrival, MixConfig, Op, Plan, Profile, ProfileConfig};
