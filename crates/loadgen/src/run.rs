//! The driver: executes a [`Plan`] against a live daemon.
//!
//! Several thread populations share one run: an open-loop scheduler
//! that fires arrivals at their planned offsets without waiting for
//! completions, closed-loop clients that issue their scripts
//! back-to-back over persistent connections, one thread per chaos
//! client, and (in the flood profile) one self-pacing thread per
//! cache-busting flood request, followed post-storm by a reheat leg
//! over the oldest flood specs. Wall-clock time only paces the
//! schedule — everything *sent* was fixed at plan time.
//!
//! Every workload operation carries a deterministic trace id — an
//! FNV-1a hash of `(plan fingerprint, class, operation index)`, forced
//! odd so it never collides with the reserved zero id. Client-supplied
//! ids are always traced server-side, so the report's slowest
//! operations per class can be drilled into via the daemon's span ring
//! or its Perfetto export. Chaos personas stay untraced: they speak raw
//! bytes, not the protocol.

use crate::chaos;
use crate::measure::{scrape_http_metrics, Collector, DaemonStats, SloConfig};
use crate::workload::{Op, Plan};
use bfdn_service::client::Client;
use bfdn_service::exec;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything the run learned, ready for reporting.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub duration_s: f64,
    /// Workload operations sent (chaos clients excluded).
    pub workload_ops: u64,
    pub workload_ok: u64,
    /// Chaos outcomes outside their persona's expected set.
    pub chaos_unexpected: u64,
    /// Daemon-side facts from the post-run scrape.
    pub daemon: Option<DaemonStats>,
    /// Post-storm consistency: the probe's served payload matched a
    /// fresh local execution, cold then cached.
    pub probe_consistent: Option<bool>,
    /// `(recorded, dropped)` from the daemon's span recorder after the
    /// run; `dropped == 0` certifies every span survived the ring.
    pub trace_counters: Option<(u64, u64)>,
    /// Cluster-mode facts (shard scrapes, peer-fill totals, reroutes);
    /// `None` for single-daemon runs.
    pub cluster: Option<crate::cluster::ClusterStats>,
    pub violations: Vec<String>,
    pub pass: bool,
}

/// Runs the plan, the post-storm probe, the scrape, and the SLO checks.
/// `metrics_http` is the daemon's `--metrics-addr`; without it the
/// exposition is fetched over the wire protocol instead.
pub fn execute(
    addr: SocketAddr,
    metrics_http: Option<&str>,
    plan: &Plan,
    slo: &SloConfig,
    collector: &Collector,
) -> RunOutcome {
    let started = Instant::now();
    let chaos_unexpected = AtomicU64::new(0);

    let fingerprint = plan.fingerprint();

    // First-issue payloads per flood index, parked by the storm threads
    // and read back by the post-storm reheat leg.
    let flood_payloads: Vec<Mutex<Option<String>>> =
        plan.flood.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (client_index, script) in plan.closed_loop.iter().enumerate() {
            scope.spawn(move || {
                closed_loop_client(addr, script, collector, fingerprint, client_index)
            });
        }
        for client in &plan.chaos {
            let chaos_unexpected = &chaos_unexpected;
            scope.spawn(move || {
                sleep_until(started, client.at_ms);
                let t0 = Instant::now();
                let outcome = chaos::run_client(addr, client);
                if !client.persona.expects(&outcome) {
                    chaos_unexpected.fetch_add(1, Ordering::Relaxed);
                }
                collector.record(
                    &format!("chaos:{}", client.persona.as_str()),
                    &outcome.label(),
                    Some(t0.elapsed().as_secs_f64()),
                );
            });
        }
        // Big-instance requests pace themselves: each thread sleeps to
        // its own offset so the heavyweight sends never delay the
        // open-loop schedule below.
        for (index, arrival) in plan.big_instance.iter().enumerate() {
            scope.spawn(move || {
                sleep_until(started, arrival.at_ms);
                let trace = trace_id(fingerprint, "big-instance", index as u64);
                let t0 = Instant::now();
                let outcome = one_shot_slow(addr, &arrival.op, trace);
                collector.record_traced(
                    "big-instance",
                    &outcome,
                    Some(t0.elapsed().as_secs_f64()),
                    Some(trace),
                );
            });
        }
        // Flood arrivals pace themselves like big-instance sends: one
        // thread per request, so the storm stays open-loop even when
        // the daemon lags under it.
        for (index, arrival) in plan.flood.iter().enumerate() {
            let slot = &flood_payloads[index];
            scope.spawn(move || {
                sleep_until(started, arrival.at_ms);
                let trace = trace_id(fingerprint, "flood", index as u64);
                let t0 = Instant::now();
                let outcome = flood_shot(addr, &arrival.op, trace, slot);
                collector.record_traced(
                    "flood",
                    &outcome,
                    Some(t0.elapsed().as_secs_f64()),
                    Some(trace),
                );
            });
        }
        // The open-loop scheduler fires each arrival on time and moves
        // on; completions are recorded by the per-request threads.
        for (index, arrival) in plan.open_loop.iter().enumerate() {
            sleep_until(started, arrival.at_ms);
            scope.spawn(move || {
                let trace = trace_id(fingerprint, "open", index as u64);
                let t0 = Instant::now();
                let outcome = one_shot(addr, &arrival.op, trace);
                collector.record_traced(
                    "open",
                    &outcome,
                    Some(t0.elapsed().as_secs_f64()),
                    Some(trace),
                );
            });
        }
    });

    flood_reheat(addr, plan, &flood_payloads, collector, fingerprint);

    let probe_consistent = Some(run_probe(addr, plan, collector));

    let daemon = fetch_daemon_stats(addr, metrics_http);
    let trace_counters = connect(addr)
        .and_then(|mut client| client.trace_spans(None).ok())
        .map(|t| (t.recorded, t.dropped));
    let duration_s = started.elapsed().as_secs_f64();

    let summaries = collector.snapshot();
    let workload_ops: u64 = summaries
        .iter()
        .filter(|s| s.is_workload())
        .map(|s| s.count)
        .sum();
    let workload_ok: u64 = summaries
        .iter()
        .filter(|s| s.is_workload())
        .map(|s| s.ok)
        .sum();
    let chaos_unexpected = chaos_unexpected.load(Ordering::Relaxed);
    let violations = slo.violations(
        &summaries,
        daemon.as_ref(),
        chaos_unexpected,
        probe_consistent,
    );

    RunOutcome {
        duration_s,
        workload_ops,
        workload_ok,
        chaos_unexpected,
        daemon,
        probe_consistent,
        trace_counters,
        cluster: None,
        pass: violations.is_empty(),
        violations,
    }
}

/// The deterministic trace id for one workload operation: FNV-1a over
/// `(plan fingerprint, class, index)`, forced odd so it can never be the
/// reserved zero id.
pub(crate) fn trace_id(fingerprint: u64, class: &str, index: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&fingerprint.to_le_bytes());
    eat(class.as_bytes());
    eat(&index.to_le_bytes());
    hash | 1
}

pub(crate) fn sleep_until(started: Instant, at_ms: u64) {
    let target = started + Duration::from_millis(at_ms);
    let now = Instant::now();
    if let Some(wait) = target.checked_duration_since(now) {
        std::thread::sleep(wait);
    }
}

/// The post-storm consistency check: a spec nothing in the workload
/// touched must execute fresh, match a local run byte for byte, and
/// then answer from the cache with the same bytes.
fn run_probe(addr: SocketAddr, plan: &Plan, collector: &Collector) -> bool {
    let Ok((local, _)) = exec::run_spec(&plan.probe) else {
        collector.record("probe", "local_exec_failed", None);
        return false;
    };
    let expected = local.payload_json();
    let issue = |expect_cached: bool| -> bool {
        let t0 = Instant::now();
        let (outcome, good) = match connect(addr) {
            None => ("io_error".to_string(), false),
            Some(mut client) => match client.explore(plan.probe.clone()) {
                Ok(result) => {
                    let consistent =
                        result.payload_json() == expected && result.cached == expect_cached;
                    (
                        if consistent { "ok" } else { "inconsistent" }.to_string(),
                        consistent,
                    )
                }
                Err(e) => (classify_error(&e), false),
            },
        };
        collector.record("probe", &outcome, Some(t0.elapsed().as_secs_f64()));
        good
    };
    let cold = issue(false);
    let warm = issue(true);
    cold && warm
}

/// A flood first issue: the spec is unique within the run, so a reply
/// with `cached == true` means something other than this run already
/// computed it — surfaced as its own outcome (`unexpected_warm`, a
/// non-`ok` label that trips the error-ratio SLO) instead of being
/// conflated with a fresh execution. The served payload is parked in
/// `slot` so the reheat leg can demand byte-identity later.
fn flood_shot(addr: SocketAddr, op: &Op, trace: u64, slot: &Mutex<Option<String>>) -> String {
    let Op::Explore(spec) = op else {
        return "not_an_explore".into();
    };
    let Some(mut client) = connect(addr) else {
        return "io_error".into();
    };
    client.set_trace(Some(trace));
    match client.explore(spec.clone()) {
        Ok(result) => {
            *slot.lock().expect("flood slot") = Some(result.payload_json());
            if result.cached {
                "unexpected_warm".into()
            } else {
                "ok".into()
            }
        }
        Err(e) => classify_error(&e),
    }
}

/// How many flood specs the reheat leg re-issues.
const FLOOD_REHEAT: usize = 8;

/// The post-storm reheat: re-issues the *oldest* flood specs — the
/// entries a resident-bytes budget is most likely to have evicted from
/// the memory tier — expecting each one served `cached == true` and
/// byte-identical to its first issue. Against a store-backed daemon
/// this is the overflow coming back from disk; any deviation lands as
/// a non-`ok` outcome in the `flood-reheat` class and trips the
/// error-ratio SLO.
fn flood_reheat(
    addr: SocketAddr,
    plan: &Plan,
    payloads: &[Mutex<Option<String>>],
    collector: &Collector,
    fingerprint: u64,
) {
    for (index, arrival) in plan.flood.iter().take(FLOOD_REHEAT).enumerate() {
        let Op::Explore(spec) = &arrival.op else {
            continue;
        };
        let expected = payloads[index].lock().expect("flood slot").clone();
        let trace = trace_id(fingerprint, "flood-reheat", index as u64);
        let t0 = Instant::now();
        let outcome = match (expected, connect(addr)) {
            (None, _) => "missing_first_issue".to_string(),
            (_, None) => "io_error".to_string(),
            (Some(expected), Some(mut client)) => {
                client.set_trace(Some(trace));
                match client.explore(spec.clone()) {
                    Ok(result) if !result.cached => "not_cached".into(),
                    Ok(result) if result.payload_json() != expected => "divergent_payload".into(),
                    Ok(_) => "ok".into(),
                    Err(e) => classify_error(&e),
                }
            }
        };
        collector.record_traced(
            "flood-reheat",
            &outcome,
            Some(t0.elapsed().as_secs_f64()),
            Some(trace),
        );
    }
}

pub(crate) fn fetch_daemon_stats(
    addr: SocketAddr,
    metrics_http: Option<&str>,
) -> Option<DaemonStats> {
    let exposition = match metrics_http {
        Some(http_addr) => scrape_http_metrics(http_addr).ok()?,
        None => connect(addr)?.metrics().ok()?,
    };
    Some(DaemonStats::parse(&exposition))
}

fn connect(addr: SocketAddr) -> Option<Client> {
    let client = Client::connect(addr).ok()?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    Some(client)
}

/// One open-loop request on a fresh connection.
fn one_shot(addr: SocketAddr, op: &Op, trace: u64) -> String {
    match connect(addr) {
        None => "io_error".into(),
        Some(mut client) => issue_on(&mut client, op, trace),
    }
}

/// A big-instance request: same shape as [`one_shot`], but the read
/// timeout matches the class's latency budget instead of the mix's —
/// a legitimate multi-second execution must not be misread as a dead
/// daemon.
fn one_shot_slow(addr: SocketAddr, op: &Op, trace: u64) -> String {
    let Some(mut client) = connect(addr) else {
        return "io_error".into();
    };
    if client
        .set_read_timeout(Some(Duration::from_secs(180)))
        .is_err()
    {
        return "io_error".into();
    }
    issue_on(&mut client, op, trace)
}

/// A closed-loop client: its script back-to-back over one connection,
/// reconnecting only after an I/O failure. Per-operation trace ids fold
/// in the client index so two clients' scripts never share an id.
fn closed_loop_client(
    addr: SocketAddr,
    script: &[Op],
    collector: &Collector,
    fingerprint: u64,
    client_index: usize,
) {
    let mut conn: Option<Client> = None;
    for (op_index, op) in script.iter().enumerate() {
        let trace = trace_id(
            fingerprint,
            "closed",
            (client_index as u64) << 32 | op_index as u64,
        );
        let t0 = Instant::now();
        let mut current = conn.take().or_else(|| connect(addr));
        let outcome = match current.as_mut() {
            None => "io_error".into(),
            Some(client) => issue_on(client, op, trace),
        };
        if outcome != "io_error" {
            conn = current;
        }
        collector.record_traced(
            "closed",
            &outcome,
            Some(t0.elapsed().as_secs_f64()),
            Some(trace),
        );
    }
}

fn issue_on(client: &mut Client, op: &Op, trace: u64) -> String {
    client.set_trace(Some(trace));
    let result = match op {
        Op::Explore(spec) => client.explore(spec.clone()).map(|_| ()),
        Op::Batch(specs) => client.batch(specs.clone()).map(|_| ()),
    };
    match result {
        Ok(()) => "ok".into(),
        Err(e) => classify_error(&e),
    }
}

pub(crate) fn classify_error(e: &bfdn_service::client::ClientError) -> String {
    match e.as_server_error() {
        Some(wire) => format!("error:{}", wire.code.as_str()),
        None => "io_error".into(),
    }
}
