//! `bfdn-store` — a log-structured, compressed, crash-tolerant result
//! store for the BFDN serving layer.
//!
//! The daemon's content-addressed cache is what lets one execution of a
//! spec (Theorem 1's `2n/k + O(D² · min(log D, log k))` rounds) serve
//! every repeat request; this crate is its persistence layer, replacing
//! the flat JSONL spill that had to be replayed line-by-line — and
//! loaded fully resident — on every restart. Three pieces:
//!
//! - [`codec`]: a self-contained LZ block codec using the
//!   compress-with-uncompressed-size-header pattern, CRC-32 checked
//!   record frames, and a scanner that treats a crash-truncated tail
//!   as data loss of *that tail only* — detected, dropped, never fatal.
//! - [`Store`]: append-only segments of those frames, an in-memory
//!   index (FNV-1a key hash → segment/offset, persisted on clean
//!   shutdown, rebuilt by segment scan when missing or stale) giving
//!   O(1) warm lookup of any single record without loading everything
//!   resident, and size-triggered compaction that folds superseded
//!   records into fresh segments.
//! - Revision refusal: a store stamped by a different known git
//!   revision is refused wholesale (results are byte-stable only
//!   within one build), mirroring the legacy spill's
//!   `revision_mismatch` semantics.
//!
//! Records are opaque `key → payload` strings: this crate knows nothing
//! about specs or results. The service layer keys by
//! `ExploreSpec::canonical()` and stores the cache-stable payload JSON,
//! which is what makes a warm `get` byte-identical to the original
//! response.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod store;

pub use store::{key_hash, CompactReport, OpenReport, PutOutcome, Store, StoreConfig, StoreStats};
