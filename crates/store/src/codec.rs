//! Self-contained compression and framing for store segments.
//!
//! Three layers, each checkable on its own:
//!
//! - **LZ block codec** ([`compress`] / [`decompress`]): a byte-oriented
//!   LZ77 variant (greedy hash-chain matching, 64 KiB window, minimum
//!   match 4) whose decompressor takes the *uncompressed size* as an
//!   argument — the compress-with-size-header pattern: the producer
//!   records the raw length next to the compressed bytes, and the
//!   consumer allocates exactly once and knows precisely when the
//!   stream must end.
//! - **CRC-32** ([`crc32`]): the IEEE polynomial, used to checksum every
//!   frame body so a crash-truncated or bit-flipped tail is *detected*
//!   (and dropped by the segment scanner) instead of decoded into
//!   garbage.
//! - **Record frames** ([`encode_record`] / [`decode_record`]): the
//!   length-prefixed on-disk unit. A frame stores its body length, the
//!   body checksum, the record key, the uncompressed payload length and
//!   the (possibly compressed) payload. Payloads that do not shrink
//!   under LZ are stored raw — a frame is never larger than
//!   `key + payload + FRAME_OVERHEAD`.
//!
//! Every decode path returns [`CodecError`] on malformed input; nothing
//! in this module panics on untrusted bytes. That invariant is what the
//! property tests fuzz.

use std::fmt;

/// Minimum match length the LZ tokenizer emits.
pub const MIN_MATCH: usize = 4;

/// Maximum back-reference distance (two-byte little-endian offset).
const MAX_OFFSET: usize = u16::MAX as usize;

/// log2 of the match-candidate hash table size.
const HASH_BITS: u32 = 13;

/// Fixed per-frame overhead: length prefix, CRC, encoding tag, key
/// length, raw payload length.
pub const FRAME_OVERHEAD: usize = 4 + 4 + 1 + 4 + 4;

/// Frames larger than this are rejected as corrupt by the scanner —
/// far above any real record, far below an accidental
/// garbage-length read of gigabytes.
pub const MAX_FRAME_BODY: usize = 1 << 26;

/// Payload stored verbatim (LZ did not shrink it).
const ENCODING_RAW: u8 = 0;
/// Payload stored as an LZ block.
const ENCODING_LZ: u8 = 1;

/// Why a decode failed. Carries a short human-readable cause; the
/// caller decides whether that means "truncated tail, stop scanning"
/// or "report corruption".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE)
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of `data` (the polynomial used by gzip and zip; check
/// value `crc32(b"123456789") == 0xCBF4_3926`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// LZ block codec
// ---------------------------------------------------------------------------

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Appends the extension bytes for a length nibble that saturated at 15
/// (LZ4-style 255-continuation encoding).
fn write_ext(out: &mut Vec<u8>, v: usize) {
    if v >= 15 {
        let mut rem = v - 15;
        while rem >= 255 {
            out.push(255);
            rem -= 255;
        }
        out.push(rem as u8);
    }
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    let ml = match_len - MIN_MATCH;
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = ml.min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    write_ext(out, literals.len());
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    write_ext(out, ml);
}

fn emit_trailing_literals(out: &mut Vec<u8>, literals: &[u8]) {
    if literals.is_empty() {
        return;
    }
    let lit_nibble = literals.len().min(15) as u8;
    out.push(lit_nibble << 4);
    write_ext(out, literals.len());
    out.extend_from_slice(literals);
}

/// Compresses `src` into an LZ block. The output does *not* carry the
/// uncompressed size — the producer stores it separately (the size
/// header) and passes it back to [`decompress`].
///
/// The tokenizer is greedy: at each position it probes one hashed
/// candidate, takes the first match of at least [`MIN_MATCH`] bytes
/// within the 64 KiB window, and extends it maximally. Repetitive
/// inputs (JSON payloads full of shared key names) compress well;
/// incompressible inputs cost at most one token byte per 15 literals.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    let mut table = vec![0usize; 1 << HASH_BITS]; // position + 1; 0 = empty
    let mut anchor = 0usize;
    let mut pos = 0usize;
    if src.len() >= MIN_MATCH {
        let limit = src.len() - MIN_MATCH;
        while pos <= limit {
            let h = hash4(&src[pos..]);
            let candidate = table[h];
            table[h] = pos + 1;
            if candidate != 0 {
                let cand = candidate - 1;
                if pos - cand <= MAX_OFFSET
                    && src[cand..cand + MIN_MATCH] == src[pos..pos + MIN_MATCH]
                {
                    let mut len = MIN_MATCH;
                    while pos + len < src.len() && src[cand + len] == src[pos + len] {
                        len += 1;
                    }
                    emit_sequence(&mut out, &src[anchor..pos], (pos - cand) as u16, len);
                    pos += len;
                    anchor = pos;
                    continue;
                }
            }
            pos += 1;
        }
    }
    emit_trailing_literals(&mut out, &src[anchor..]);
    out
}

fn read_ext(src: &[u8], i: &mut usize, mut len: usize) -> Result<usize, CodecError> {
    if len == 15 {
        loop {
            let Some(&b) = src.get(*i) else {
                return err("truncated length extension");
            };
            *i += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompresses an LZ block produced by [`compress`], given the exact
/// uncompressed size recorded next to it. Every read is bounds-checked;
/// malformed input yields [`CodecError`], never a panic or an
/// out-of-bounds copy.
pub fn decompress(src: &[u8], raw_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut dst: Vec<u8> = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    while dst.len() < raw_len {
        let Some(&token) = src.get(i) else {
            return err("truncated block: missing token");
        };
        i += 1;
        let lit_len = read_ext(src, &mut i, usize::from(token >> 4))?;
        let lit_end = match i.checked_add(lit_len) {
            Some(end) if end <= src.len() => end,
            _ => return err("truncated block: literals run past the input"),
        };
        if dst.len() + lit_len > raw_len {
            return err("literals overflow the declared size");
        }
        dst.extend_from_slice(&src[i..lit_end]);
        i = lit_end;
        if dst.len() == raw_len {
            break; // trailing literals-only sequence
        }
        if i + 2 > src.len() {
            return err("truncated block: missing match offset");
        }
        let offset = usize::from(u16::from_le_bytes([src[i], src[i + 1]]));
        i += 2;
        if offset == 0 || offset > dst.len() {
            return err("match offset outside the produced output");
        }
        let match_len = read_ext(src, &mut i, usize::from(token & 0x0F))? + MIN_MATCH;
        if dst.len() + match_len > raw_len {
            return err("match overflows the declared size");
        }
        let start = dst.len() - offset;
        for j in 0..match_len {
            let b = dst[start + j];
            dst.push(b);
        }
    }
    if i != src.len() {
        return err("trailing bytes after the declared size was reached");
    }
    Ok(dst)
}

// ---------------------------------------------------------------------------
// Record frames
// ---------------------------------------------------------------------------

/// Encodes one `key → payload` record as a complete on-disk frame:
///
/// ```text
/// frame := body_len:u32le  crc32(body):u32le  body
/// body  := encoding:u8  key_len:u32le  key  raw_len:u32le  data
/// ```
///
/// `data` is the LZ block when that is strictly smaller than the raw
/// payload, else the raw bytes (`encoding` says which); `raw_len` is
/// always the uncompressed payload length — the size header the
/// decoder allocates from.
pub fn encode_record(key: &str, payload: &str) -> Vec<u8> {
    let raw = payload.as_bytes();
    let compressed = compress(raw);
    let (encoding, data): (u8, &[u8]) = if compressed.len() < raw.len() {
        (ENCODING_LZ, &compressed)
    } else {
        (ENCODING_RAW, raw)
    };
    let mut body = Vec::with_capacity(1 + 4 + key.len() + 4 + data.len());
    body.push(encoding);
    body.extend_from_slice(&(key.len() as u32).to_le_bytes());
    body.extend_from_slice(key.as_bytes());
    body.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    body.extend_from_slice(data);

    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// A record decoded from a frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record's lookup key.
    pub key: String,
    /// The uncompressed payload.
    pub payload: String,
    /// The payload's uncompressed length (the size header), kept so
    /// callers can account raw-vs-stored bytes without re-measuring.
    pub raw_len: u32,
}

fn read_u32(body: &[u8], at: usize) -> Result<u32, CodecError> {
    match body.get(at..at + 4) {
        Some(b) => Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        None => err("frame body too short for a length field"),
    }
}

/// Decodes a frame *body* (the bytes after the length prefix and CRC —
/// the caller has already verified the checksum).
pub fn decode_record(body: &[u8]) -> Result<Record, CodecError> {
    let Some(&encoding) = body.first() else {
        return err("empty frame body");
    };
    let key_len = read_u32(body, 1)? as usize;
    let key_start = 1usize + 4;
    let key_end = match key_start.checked_add(key_len) {
        Some(end) if end <= body.len() => end,
        _ => return err("key runs past the frame body"),
    };
    let key = match std::str::from_utf8(&body[key_start..key_end]) {
        Ok(s) => s.to_string(),
        Err(_) => return err("key is not UTF-8"),
    };
    let raw_len = read_u32(body, key_end)?;
    let data = &body[key_end + 4..];
    let payload_bytes = match encoding {
        ENCODING_RAW => {
            if data.len() != raw_len as usize {
                return err("raw payload length disagrees with the size header");
            }
            data.to_vec()
        }
        ENCODING_LZ => decompress(data, raw_len as usize)?,
        other => return err(format!("unknown encoding tag {other}")),
    };
    let payload = match String::from_utf8(payload_bytes) {
        Ok(s) => s,
        Err(_) => return err("payload is not UTF-8"),
    };
    Ok(Record {
        key,
        payload,
        raw_len,
    })
}

/// Reads the next frame out of `bytes` starting at `at`.
///
/// Returns `Ok(Some((record, frame_len)))` for an intact frame,
/// `Ok(None)` when `at` is exactly the end of the input (clean EOF),
/// and `Err` for anything else — a partial header, a body shorter than
/// its length prefix, a CRC mismatch, an over-large length, or a body
/// that does not decode. The segment scanner treats any `Err` as the
/// crash-truncated tail: everything before `at` stays served,
/// everything from `at` on is dropped.
pub fn scan_frame(bytes: &[u8], at: usize) -> Result<Option<(Record, usize)>, CodecError> {
    if at == bytes.len() {
        return Ok(None);
    }
    let Some(header) = bytes.get(at..at + 8) else {
        return err("partial frame header at the tail");
    };
    let body_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if body_len > MAX_FRAME_BODY {
        return err(format!("frame length {body_len} exceeds the cap"));
    }
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let body_start = at + 8;
    let Some(body) = bytes.get(body_start..body_start + body_len) else {
        return err("frame body truncated");
    };
    if crc32(body) != crc {
        return err("frame CRC mismatch");
    }
    let record = decode_record(body)?;
    Ok(Some((record, 8 + body_len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_representative_inputs() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcd".to_vec(),
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            br#"{"spec":{"algorithm":"bfdn","family":"comb","n":300,"k":4,"seed":7},"nodes":300}"#
                .to_vec(),
            (0u8..=255).collect(),
            b"abcabcabcabcabcabcabcabcabcXabcabcabc".to_vec(),
            vec![0u8; 70_000], // long run, exercises extended lengths
        ];
        for case in cases {
            let packed = compress(&case);
            let unpacked = decompress(&packed, case.len()).expect("round trip");
            assert_eq!(unpacked, case);
        }
    }

    #[test]
    fn repetitive_payloads_actually_shrink() {
        let payload = r#"{"rounds":123,"moves":456,"idle":789}"#.repeat(50);
        let packed = compress(payload.as_bytes());
        assert!(
            packed.len() < payload.len() / 4,
            "{} vs {}",
            packed.len(),
            payload.len()
        );
    }

    /// The compressed byte stream is a stable format: a frozen input
    /// maps to frozen output. If this test ever fails, the on-disk
    /// format changed and old stores would no longer decode.
    #[test]
    fn golden_compressed_bytes_are_stable() {
        let input = b"to be or not to be, that is the question; to be or not";
        let packed = compress(input);
        let hex: String = packed.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "d1746f206265206f72206e6f74200d00f2082c2074686174206973207468\
             65207175657374696f6e3b1d00032a00"
                .replace(char::is_whitespace, ""),
            "compressed stream drifted"
        );
        assert_eq!(decompress(&packed, input.len()).unwrap(), input);
    }

    /// A frozen frame decodes to a frozen record — the frame layout
    /// (length prefix, CRC, encoding tag, key, size header) is pinned.
    #[test]
    fn golden_frame_layout_is_stable() {
        let frame = encode_record("k1", "payload");
        // body: enc=0 (raw; "payload" has no 4-byte match), key_len=2,
        // "k1", raw_len=7, "payload"
        assert_eq!(frame[0..4], (1 + 4 + 2 + 4 + 7u32).to_le_bytes());
        assert_eq!(frame[8], ENCODING_RAW);
        assert_eq!(frame[9..13], 2u32.to_le_bytes());
        assert_eq!(&frame[13..15], b"k1");
        assert_eq!(frame[15..19], 7u32.to_le_bytes());
        assert_eq!(&frame[19..], b"payload");
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        assert_eq!(crc, crc32(&frame[8..]));

        let (record, len) = scan_frame(&frame, 0).unwrap().unwrap();
        assert_eq!(len, frame.len());
        assert_eq!(record.key, "k1");
        assert_eq!(record.payload, "payload");
        assert_eq!(record.raw_len, 7);
    }

    #[test]
    fn incompressible_payloads_are_stored_raw_not_inflated() {
        let noise: String = (0..64u32)
            .map(|i| char::from_u32(0x21 + (i * 37) % 90).unwrap())
            .collect();
        let frame = encode_record("k", &noise);
        assert!(frame.len() <= noise.len() + "k".len() + FRAME_OVERHEAD);
        let (record, _) = scan_frame(&frame, 0).unwrap().unwrap();
        assert_eq!(record.payload, noise);
    }

    #[test]
    fn every_truncation_of_a_frame_is_an_error_never_a_panic() {
        let payload = r#"{"spec":"x","metrics":{"rounds":9,"moves":9,"rounds":9}}"#.repeat(4);
        let frame = encode_record("spec-key", &payload);
        for cut in 0..frame.len() {
            let result = scan_frame(&frame[..cut], 0);
            if cut == 0 {
                assert_eq!(result, Ok(None), "empty input is clean EOF");
            } else {
                assert!(result.is_err(), "cut at {cut} must be detected");
            }
        }
    }

    #[test]
    fn corrupted_bytes_fail_the_crc() {
        let frame = encode_record("key", "some payload some payload some payload");
        for flip in [8usize, 15, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[flip] ^= 0x40;
            assert!(scan_frame(&bad, 0).is_err(), "flip at {flip}");
        }
    }

    #[test]
    fn decompress_rejects_malformed_blocks() {
        // Offset pointing before the start of the output.
        assert!(decompress(&[0x04, 0xFF, 0xFF, 0x00], 8).is_err());
        // Offset of zero.
        let mut block = Vec::new();
        block.push(0x10); // 1 literal, match nibble 0
        block.push(b'a');
        block.extend_from_slice(&0u16.to_le_bytes());
        assert!(decompress(&block, 6).is_err());
        // Declared size smaller than the literals.
        let packed = compress(b"hello world hello world");
        assert!(decompress(&packed, 3).is_err());
        // Declared size larger than the stream produces.
        assert!(decompress(&packed, 1000).is_err());
    }

    #[test]
    fn frames_concatenate_and_scan_in_order() {
        let mut log = Vec::new();
        let records = [("a", "payload-a"), ("b", "payload-b"), ("c", "payload-c")];
        for (k, p) in records {
            log.extend_from_slice(&encode_record(k, p));
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((record, len)) = scan_frame(&log, at).unwrap() {
            seen.push((record.key, record.payload));
            at += len;
        }
        assert_eq!(at, log.len());
        assert_eq!(
            seen,
            records
                .iter()
                .map(|(k, p)| (k.to_string(), p.to_string()))
                .collect::<Vec<_>>()
        );
    }
}
