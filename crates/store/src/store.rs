//! The log-structured store: append-only segments, a persisted index,
//! and size-triggered compaction.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/meta.json      {"store":"bfdn-result-store","version":1,"revision":...}
//! <dir>/index.tsv      persisted key-hash → (segment, offset) index
//! <dir>/seg-00000000.log   append-only frames (see codec.rs)
//! <dir>/seg-00000001.log   ...
//! ```
//!
//! Records are opaque `key → payload` strings (the service layer keys
//! by the spec's canonical form and stores the cache-stable payload
//! JSON). Writes append [`crate::codec`] frames to the *active*
//! segment, rolling to a fresh file past a size threshold; every
//! process lifetime starts a fresh active segment, so a crash can only
//! ever damage one tail, and the CRC-checked scanner drops exactly
//! that tail on the next open. Lookups go through an in-memory index
//! (FNV-1a key hash → segment/offset) that is persisted on clean
//! shutdown and rebuilt by scanning the segments when missing or
//! stale — a warm open never loads payloads resident.
//!
//! Re-putting a key appends a superseding frame and marks the old one
//! dead; [`Store::maintain`] folds live records into fresh segments
//! once dead bytes cross the configured trigger, reclaiming the space.
//!
//! # Revision refusal
//!
//! `meta.json` records the git revision that wrote the store. Opening
//! with a *different known* revision refuses every record (results are
//! only byte-stable within one build) and restarts the directory cold;
//! unknown revisions on either side are accepted, mirroring the legacy
//! JSONL spill semantics.

use crate::codec::{self, Record};
use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// FNV-1a hash of a record key — the index's key space. Matches the
/// service layer's spec-key hashing so one hash can shard *and* index.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Tuning and identity for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding segments, index and meta (created if absent).
    pub dir: PathBuf,
    /// The revision stamped into `meta.json`; `None` means unknown.
    pub revision: Option<String>,
    /// Roll the active segment once it would exceed this many bytes.
    pub segment_roll_bytes: u64,
    /// [`Store::maintain`] compacts once dead bytes reach this many.
    pub compact_trigger_bytes: u64,
}

impl StoreConfig {
    /// Defaults: 4 MiB segment roll, 8 MiB compaction trigger.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            revision: None,
            segment_roll_bytes: 4 << 20,
            compact_trigger_bytes: 8 << 20,
        }
    }
}

/// What [`Store::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Live records indexed (after tail-drop and supersede folding).
    pub records: usize,
    /// Records refused because the store was written by another revision.
    pub refused: usize,
    /// True when the refusal path ran (the directory restarted cold).
    pub revision_mismatch: bool,
    /// Segments whose tail was crash-truncated and dropped.
    pub truncated_segments: usize,
    /// True when the index was absent or stale and a segment scan
    /// rebuilt it.
    pub index_rebuilt: bool,
}

/// What one [`Store::put`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutOutcome {
    /// Bytes appended to the active segment.
    pub appended_bytes: u64,
    /// True when the key already had a record (now dead, compactable).
    pub superseded: bool,
}

/// What one [`Store::compact`] reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Segment count before folding.
    pub segments_before: usize,
    /// Segment count after folding.
    pub segments_after: usize,
    /// On-disk bytes reclaimed (dead frames dropped).
    pub reclaimed_bytes: u64,
    /// Live records carried into the fresh segments.
    pub live_records: usize,
}

/// A point-in-time accounting snapshot, cheap to take.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (reachable) records.
    pub records: u64,
    /// Segment files.
    pub segments: u64,
    /// Logical bytes across all segments (live + dead frames).
    pub on_disk_bytes: u64,
    /// Bytes held by live frames.
    pub live_bytes: u64,
    /// Bytes held by superseded frames — compaction's reclaim target.
    pub dead_bytes: u64,
    /// Uncompressed payload bytes across live records.
    pub raw_payload_bytes: u64,
    /// Stored (post-codec) payload bytes across live records — the
    /// frame data portions only, framing and key bytes excluded.
    pub stored_payload_bytes: u64,
    /// Compactions run over this store's process lifetime.
    pub compactions: u64,
    /// Crash-truncated tails dropped over this process lifetime.
    pub truncated_segments: u64,
}

impl StoreStats {
    /// Uncompressed-to-stored payload ratio over live records: the
    /// codec's win, excluding per-frame framing and key overhead. The
    /// RAW fallback keeps this at or above 1.0 whenever records exist
    /// (0.0 on an empty store); `live_bytes` vs `raw_payload_bytes`
    /// is the figure that includes the framing.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_payload_bytes == 0 {
            0.0
        } else {
            self.raw_payload_bytes as f64 / self.stored_payload_bytes as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    segment: u64,
    offset: u64,
    frame_len: u32,
    raw_len: u32,
    key_len: u32,
}

impl IndexEntry {
    /// The frame's stored payload bytes: everything except the fixed
    /// framing and the key. What the codec actually wrote for the
    /// (possibly compressed) payload.
    fn stored_len(&self) -> u64 {
        u64::from(self.frame_len)
            .saturating_sub(codec::FRAME_OVERHEAD as u64)
            .saturating_sub(u64::from(self.key_len))
    }
}

/// The store handle. Not internally synchronized — the service wraps
/// it in a `Mutex` next to the cache shards.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    revision: Option<String>,
    segment_roll_bytes: u64,
    compact_trigger_bytes: u64,
    /// key-hash → newest frame. Hash collisions follow last-write-wins
    /// (the older key becomes unreachable and compacts away); lookups
    /// verify the stored key, so a collision reads as a miss, never as
    /// the wrong payload.
    index: HashMap<u64, IndexEntry>,
    /// segment id → logical length (bytes covered by intact frames).
    segments: BTreeMap<u64, u64>,
    next_segment_id: u64,
    active: Option<(u64, File)>,
    live_bytes: u64,
    raw_payload_bytes: u64,
    stored_payload_bytes: u64,
    compactions: u64,
    truncated_segments: u64,
}

const META_FILE: &str = "meta.json";
const INDEX_FILE: &str = "index.tsv";

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

fn write_meta(dir: &Path, revision: Option<&str>) -> io::Result<()> {
    let revision_json = match revision {
        // Git revisions are hex-ish; escape the two JSON-special
        // characters anyway so a hostile value cannot corrupt the file.
        Some(r) => format!("\"{}\"", r.replace('\\', "\\\\").replace('"', "\\\"")),
        None => "null".to_string(),
    };
    let text =
        format!("{{\"store\":\"bfdn-result-store\",\"version\":1,\"revision\":{revision_json}}}\n");
    fs::write(dir.join(META_FILE), text)
}

/// `Some(Some(rev))` = revision recorded, `Some(None)` = explicit null,
/// `None` = no meta file (or unparseable — treated as unknown).
fn read_meta(dir: &Path) -> Option<Option<String>> {
    let text = fs::read_to_string(dir.join(META_FILE)).ok()?;
    if !text.contains("\"store\":\"bfdn-result-store\"") {
        return None;
    }
    let tail = text.split("\"revision\":").nth(1)?;
    let tail = tail.trim_start();
    if tail.starts_with("null") {
        return Some(None);
    }
    let rest = tail.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(Some(out)),
            '\\' => out.push(chars.next()?),
            other => out.push(other),
        }
    }
    None
}

impl Store {
    /// Opens (or creates) the store at `config.dir`.
    ///
    /// A same-or-unknown-revision store warm-opens from the persisted
    /// index when it is fresh, scanning only bytes appended after the
    /// last [`Store::persist_index`]; a missing or stale index triggers
    /// a full segment scan. Crash-truncated tails are dropped and
    /// counted, never fatal. A store written by a *different known*
    /// revision is refused: its records are counted, the directory is
    /// cleared, and the report says so.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures (permissions, unreadable
    /// directory); corrupt *content* is handled, not raised.
    pub fn open(config: StoreConfig) -> io::Result<(Store, OpenReport)> {
        fs::create_dir_all(&config.dir)?;
        let mut report = OpenReport::default();

        let disk_revision = read_meta(&config.dir);
        let mismatch = matches!(
            (&disk_revision, &config.revision),
            (Some(Some(theirs)), Some(ours)) if theirs != ours
        );

        let mut store = Store {
            dir: config.dir.clone(),
            revision: config.revision.clone(),
            segment_roll_bytes: config.segment_roll_bytes.max(1),
            compact_trigger_bytes: config.compact_trigger_bytes.max(1),
            index: HashMap::new(),
            segments: BTreeMap::new(),
            next_segment_id: 0,
            active: None,
            live_bytes: 0,
            raw_payload_bytes: 0,
            stored_payload_bytes: 0,
            compactions: 0,
            truncated_segments: 0,
        };

        if mismatch {
            report.revision_mismatch = true;
            report.refused = store.count_records_on_disk();
            store.clear_directory()?;
            write_meta(&config.dir, config.revision.as_deref())?;
            return Ok((store, report));
        }
        if disk_revision.is_none() {
            write_meta(&config.dir, config.revision.as_deref())?;
        }

        let segment_ids = store.list_segment_ids()?;
        store.next_segment_id = segment_ids.iter().max().map_or(0, |max| max + 1);

        let loaded = store.load_index(&segment_ids, &mut report)?;
        if !loaded {
            store.index.clear();
            store.segments.clear();
            store.live_bytes = 0;
            store.raw_payload_bytes = 0;
            store.stored_payload_bytes = 0;
            for &id in &segment_ids {
                store.scan_segment(id, 0, &mut report)?;
            }
            report.index_rebuilt = !segment_ids.is_empty();
        }
        report.records = store.index.len();
        store.truncated_segments = report.truncated_segments as u64;
        Ok((store, report))
    }

    /// The revision this store is stamped with.
    pub fn revision(&self) -> Option<&str> {
        self.revision.as_deref()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no record is reachable.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when `key` (almost certainly) has a live record. Hash-based:
    /// a 64-bit collision can make this a false positive.
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(&key_hash(key))
    }

    /// Bytes a compaction would currently reclaim.
    pub fn dead_bytes(&self) -> u64 {
        self.on_disk_bytes() - self.live_bytes
    }

    /// Logical bytes across every segment.
    pub fn on_disk_bytes(&self) -> u64 {
        self.segments.values().sum()
    }

    /// Accounting snapshot for telemetry.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: self.index.len() as u64,
            segments: self.segments.len() as u64,
            on_disk_bytes: self.on_disk_bytes(),
            live_bytes: self.live_bytes,
            dead_bytes: self.dead_bytes(),
            raw_payload_bytes: self.raw_payload_bytes,
            stored_payload_bytes: self.stored_payload_bytes,
            compactions: self.compactions,
            truncated_segments: self.truncated_segments,
        }
    }

    /// Appends a record. A key that already has a record is superseded:
    /// the new frame wins, the old one becomes dead bytes for
    /// [`Store::maintain`] to reclaim.
    ///
    /// # Errors
    ///
    /// Propagates segment create/append failures; on error the index is
    /// left unchanged (the partial frame, if any, is dropped as a
    /// truncated tail on the next open).
    pub fn put(&mut self, key: &str, payload: &str) -> io::Result<PutOutcome> {
        let frame = codec::encode_record(key, payload);
        let frame_len = frame.len() as u64;

        let needs_roll = match &self.active {
            None => true,
            Some((id, _)) => {
                let len = self.segments.get(id).copied().unwrap_or(0);
                len > 0 && len + frame_len > self.segment_roll_bytes
            }
        };
        if needs_roll {
            let id = self.next_segment_id;
            self.next_segment_id += 1;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, id))?;
            self.segments.insert(id, 0);
            self.active = Some((id, file));
        }
        let (id, file) = self.active.as_mut().expect("active segment");
        file.write_all(&frame)?;
        file.flush()?;
        let id = *id;
        let offset = {
            let len = self.segments.get_mut(&id).expect("active segment length");
            let offset = *len;
            *len += frame_len;
            offset
        };

        let entry = IndexEntry {
            segment: id,
            offset,
            frame_len: frame.len() as u32,
            raw_len: payload.len() as u32,
            key_len: key.len() as u32,
        };
        let old = self.index.insert(key_hash(key), entry);
        if let Some(old) = old {
            self.live_bytes -= u64::from(old.frame_len);
            self.raw_payload_bytes -= u64::from(old.raw_len);
            self.stored_payload_bytes -= old.stored_len();
        }
        self.live_bytes += frame_len;
        self.raw_payload_bytes += u64::from(entry.raw_len);
        self.stored_payload_bytes += entry.stored_len();
        Ok(PutOutcome {
            appended_bytes: frame_len,
            superseded: old.is_some(),
        })
    }

    /// Appends only when `key` has no live record; returns whether a
    /// frame was written. This is the service cache's write-through
    /// path — payloads are deterministic in their key, so re-writing an
    /// indexed key would only manufacture dead bytes.
    ///
    /// # Errors
    ///
    /// See [`Store::put`].
    pub fn put_if_absent(&mut self, key: &str, payload: &str) -> io::Result<bool> {
        if self.contains(key) {
            return Ok(false);
        }
        self.put(key, payload)?;
        Ok(true)
    }

    /// Reads one record's payload from disk (an indexed seek-and-read
    /// of a single frame — never a segment replay). Returns `None` for
    /// unindexed keys, hash collisions (the stored key is verified) and
    /// frames that fail their CRC.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures; corrupt frames read as `None`.
    pub fn get(&self, key: &str) -> io::Result<Option<String>> {
        let Some(entry) = self.index.get(&key_hash(key)) else {
            return Ok(None);
        };
        let Some(record) = self.read_entry(entry)? else {
            return Ok(None);
        };
        if record.key != key {
            return Ok(None);
        }
        Ok(Some(record.payload))
    }

    fn read_entry(&self, entry: &IndexEntry) -> io::Result<Option<Record>> {
        let path = segment_path(&self.dir, entry.segment);
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        file.seek(SeekFrom::Start(entry.offset))?;
        let mut frame = vec![0u8; entry.frame_len as usize];
        if file.read_exact(&mut frame).is_err() {
            return Ok(None);
        }
        match codec::scan_frame(&frame, 0) {
            Ok(Some((record, _))) => Ok(Some(record)),
            _ => Ok(None),
        }
    }

    /// Compacts when dead bytes have reached the configured trigger;
    /// the periodic maintenance entry point (the daemon calls it from a
    /// background thread).
    ///
    /// # Errors
    ///
    /// See [`Store::compact`].
    pub fn maintain(&mut self) -> io::Result<Option<CompactReport>> {
        if self.dead_bytes() >= self.compact_trigger_bytes && self.dead_bytes() > 0 {
            return self.compact().map(Some);
        }
        Ok(None)
    }

    /// Folds every live record into fresh segments and deletes the old
    /// files, reclaiming all dead bytes. Frames are copied verbatim
    /// (no re-encode), in deterministic (segment, offset) order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the old segments are still on
    /// disk and the index still points at them.
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        let segments_before = self.segments.len();
        let reclaimable = self.dead_bytes();
        let old_ids: Vec<u64> = self.segments.keys().copied().collect();
        self.active = None; // never append to a segment being folded

        let mut order: Vec<(u64, IndexEntry)> = self
            .index
            .iter()
            .map(|(&hash, &entry)| (hash, entry))
            .collect();
        order.sort_by_key(|(_, e)| (e.segment, e.offset));

        // Copy live frames verbatim into fresh segments.
        let mut new_segments: BTreeMap<u64, u64> = BTreeMap::new();
        let mut new_entries: Vec<(u64, IndexEntry)> = Vec::with_capacity(order.len());
        let mut current: Option<(u64, File)> = None;
        for (hash, entry) in order {
            let path = segment_path(&self.dir, entry.segment);
            let mut src = File::open(&path)?;
            src.seek(SeekFrom::Start(entry.offset))?;
            let mut frame = vec![0u8; entry.frame_len as usize];
            src.read_exact(&mut frame)?;

            let roll = match &current {
                None => true,
                Some((id, _)) => {
                    let len = new_segments.get(id).copied().unwrap_or(0);
                    len > 0 && len + frame.len() as u64 > self.segment_roll_bytes
                }
            };
            if roll {
                let id = self.next_segment_id;
                self.next_segment_id += 1;
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(segment_path(&self.dir, id))?;
                new_segments.insert(id, 0);
                current = Some((id, file));
            }
            let (id, file) = current.as_mut().expect("compaction segment");
            file.write_all(&frame)?;
            let id = *id;
            let len = new_segments.get_mut(&id).expect("compaction length");
            let offset = *len;
            *len += frame.len() as u64;
            new_entries.push((
                hash,
                IndexEntry {
                    segment: id,
                    offset,
                    ..entry
                },
            ));
        }
        if let Some((_, file)) = &mut current {
            file.flush()?;
        }

        // Swap: new index first, then drop the old files.
        self.index = new_entries.into_iter().collect();
        self.segments = new_segments;
        for id in old_ids {
            let _ = fs::remove_file(segment_path(&self.dir, id));
        }
        self.compactions += 1;
        Ok(CompactReport {
            segments_before,
            segments_after: self.segments.len(),
            reclaimed_bytes: reclaimable,
            live_records: self.index.len(),
        })
    }

    /// Persists the index so the next open is a warm one (no segment
    /// replay). Written atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates write/rename failures.
    pub fn persist_index(&mut self) -> io::Result<()> {
        if let Some((_, file)) = &mut self.active {
            file.flush()?;
        }
        let mut text = String::from("bfdn-store-index v1\n");
        for (&id, &len) in &self.segments {
            text.push_str(&format!("seg {id} {len}\n"));
        }
        let mut entries: Vec<(&u64, &IndexEntry)> = self.index.iter().collect();
        entries.sort_by_key(|(&hash, _)| hash);
        for (hash, e) in entries {
            text.push_str(&format!(
                "rec {hash:016x} {} {} {} {} {}\n",
                e.segment, e.offset, e.frame_len, e.raw_len, e.key_len
            ));
        }
        text.push_str(&format!("end {}\n", self.index.len()));
        let tmp = self.dir.join("index.tsv.tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.dir.join(INDEX_FILE))
    }

    /// Loads `index.tsv` if present and trustworthy, then scans any
    /// bytes segments gained after it was written. Returns false when
    /// the caller should rebuild from scratch instead.
    fn load_index(&mut self, segment_ids: &[u64], report: &mut OpenReport) -> io::Result<bool> {
        let Ok(text) = fs::read_to_string(self.dir.join(INDEX_FILE)) else {
            return Ok(false);
        };
        let mut lines = text.lines();
        if lines.next() != Some("bfdn-store-index v1") {
            return Ok(false);
        }
        let mut covered: BTreeMap<u64, u64> = BTreeMap::new();
        let mut entries: Vec<(u64, IndexEntry)> = Vec::new();
        let mut declared_end: Option<usize> = None;
        for line in lines {
            let fields: Vec<&str> = line.split_ascii_whitespace().collect();
            match fields.as_slice() {
                ["seg", id, len] => {
                    let (Ok(id), Ok(len)) = (id.parse(), len.parse()) else {
                        return Ok(false);
                    };
                    covered.insert(id, len);
                }
                ["rec", hash, segment, offset, frame_len, raw_len, key_len] => {
                    let (
                        Ok(hash),
                        Ok(segment),
                        Ok(offset),
                        Ok(frame_len),
                        Ok(raw_len),
                        Ok(key_len),
                    ) = (
                        u64::from_str_radix(hash, 16),
                        segment.parse(),
                        offset.parse(),
                        frame_len.parse(),
                        raw_len.parse::<u32>(),
                        key_len.parse::<u32>(),
                    )
                    else {
                        return Ok(false);
                    };
                    // A frame is always at least overhead + key bytes;
                    // an entry claiming otherwise is garbage.
                    if u64::from(frame_len) < codec::FRAME_OVERHEAD as u64 + u64::from(key_len) {
                        return Ok(false);
                    }
                    entries.push((
                        hash,
                        IndexEntry {
                            segment,
                            offset,
                            frame_len,
                            raw_len,
                            key_len,
                        },
                    ));
                }
                ["end", count] => declared_end = count.parse().ok(),
                _ => return Ok(false),
            }
        }
        if declared_end != Some(entries.len()) {
            return Ok(false); // torn write — rebuild
        }
        // The index must only reference segments that exist, and never
        // claim more bytes than the file holds.
        for (&id, &len) in &covered {
            let Ok(meta) = fs::metadata(segment_path(&self.dir, id)) else {
                return Ok(false);
            };
            if meta.len() < len {
                return Ok(false);
            }
        }
        for (_, e) in &entries {
            if covered.get(&e.segment).copied().unwrap_or(0) < e.offset + u64::from(e.frame_len) {
                return Ok(false);
            }
        }

        self.segments = covered;
        for (hash, entry) in entries {
            self.index.insert(hash, entry);
            self.live_bytes += u64::from(entry.frame_len);
            self.raw_payload_bytes += u64::from(entry.raw_len);
            self.stored_payload_bytes += entry.stored_len();
        }
        // Pick up frames appended after the index was persisted, and
        // whole segments it never saw.
        for &id in segment_ids {
            let from = self.segments.get(&id).copied().unwrap_or(0);
            self.scan_segment(id, from, report)?;
        }
        Ok(true)
    }

    /// Scans one segment from byte `from`, indexing every intact frame;
    /// a decode failure marks the crash-truncated tail and stops.
    fn scan_segment(&mut self, id: u64, from: u64, report: &mut OpenReport) -> io::Result<()> {
        let path = segment_path(&self.dir, id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut at = from as usize;
        if at > bytes.len() {
            at = bytes.len();
        }
        let mut len = at as u64;
        loop {
            match codec::scan_frame(&bytes, at) {
                Ok(None) => break,
                Ok(Some((record, frame_len))) => {
                    let entry = IndexEntry {
                        segment: id,
                        offset: at as u64,
                        frame_len: frame_len as u32,
                        raw_len: record.raw_len,
                        key_len: record.key.len() as u32,
                    };
                    if let Some(old) = self.index.insert(key_hash(&record.key), entry) {
                        self.live_bytes -= u64::from(old.frame_len);
                        self.raw_payload_bytes -= u64::from(old.raw_len);
                        self.stored_payload_bytes -= old.stored_len();
                    }
                    self.live_bytes += u64::from(entry.frame_len);
                    self.raw_payload_bytes += u64::from(entry.raw_len);
                    self.stored_payload_bytes += entry.stored_len();
                    at += frame_len;
                    len = at as u64;
                }
                Err(_) => {
                    report.truncated_segments += 1;
                    break;
                }
            }
        }
        // `len` excludes any truncated tail: future appends go to new
        // segments, and a future warm open rescans only past `len`,
        // hitting the same tolerated tail.
        self.segments.insert(id, len);
        Ok(())
    }

    fn list_segment_ids(&self) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Counts frames across all segments (the refusal report's
    /// "records refused" figure).
    fn count_records_on_disk(&self) -> usize {
        let Ok(ids) = self.list_segment_ids() else {
            return 0;
        };
        let mut count = 0;
        for id in ids {
            let Ok(bytes) = fs::read(segment_path(&self.dir, id)) else {
                continue;
            };
            let mut at = 0;
            while let Ok(Some((_, frame_len))) = codec::scan_frame(&bytes, at) {
                count += 1;
                at += frame_len;
            }
        }
        count
    }

    fn clear_directory(&self) -> io::Result<()> {
        if let Ok(ids) = self.list_segment_ids() {
            for id in ids {
                let _ = fs::remove_file(segment_path(&self.dir, id));
            }
        }
        let _ = fs::remove_file(self.dir.join(INDEX_FILE));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bfdn-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> StoreConfig {
        let mut c = StoreConfig::new(dir);
        c.revision = Some("rev-a".into());
        c
    }

    fn payload(i: usize) -> String {
        format!(r#"{{"spec":"s{i}","rounds":{},"moves":{}}}"#, i * 7, i * 11).repeat(3)
    }

    #[test]
    fn put_get_survives_reopen_via_persisted_index() {
        let dir = fresh_dir("reopen");
        let (mut store, report) = Store::open(config(&dir)).unwrap();
        assert_eq!(report, OpenReport::default());
        for i in 0..50 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        assert_eq!(store.len(), 50);
        store.persist_index().unwrap();
        drop(store);

        let (store, report) = Store::open(config(&dir)).unwrap();
        assert_eq!(report.records, 50);
        assert!(!report.index_rebuilt, "persisted index should warm-open");
        assert_eq!(report.truncated_segments, 0);
        for i in 0..50 {
            assert_eq!(
                store.get(&format!("key-{i}")).unwrap().as_deref(),
                Some(payload(i).as_str()),
                "key-{i}"
            );
        }
        assert_eq!(store.get("never-stored").unwrap(), None);
    }

    #[test]
    fn missing_index_is_rebuilt_by_segment_scan() {
        let dir = fresh_dir("rebuild");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        for i in 0..20 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        store.persist_index().unwrap();
        drop(store);
        fs::remove_file(dir.join(INDEX_FILE)).unwrap();

        let (store, report) = Store::open(config(&dir)).unwrap();
        assert!(report.index_rebuilt);
        assert_eq!(report.records, 20);
        for i in 0..20 {
            assert_eq!(
                store.get(&format!("key-{i}")).unwrap(),
                Some(payload(i)),
                "key-{i}"
            );
        }
    }

    #[test]
    fn crash_truncated_tail_is_dropped_not_fatal() {
        let dir = fresh_dir("truncated");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        for i in 0..10 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        drop(store); // no persist_index — simulates the crash

        // Chop the active segment mid-frame, the way SIGKILL mid-write
        // leaves it.
        let seg = segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 11]).unwrap();

        let (store, report) = Store::open(config(&dir)).unwrap();
        assert_eq!(report.truncated_segments, 1);
        assert!(report.index_rebuilt);
        assert_eq!(report.records, 9, "all intact frames survive");
        for i in 0..9 {
            assert_eq!(store.get(&format!("key-{i}")).unwrap(), Some(payload(i)));
        }
        assert_eq!(store.get("key-9").unwrap(), None, "the torn frame is gone");
    }

    #[test]
    fn garbage_appended_after_valid_frames_is_tolerated() {
        let dir = fresh_dir("garbage");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        store.put("key", &payload(1)).unwrap();
        drop(store);
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0xAB; 37]);
        fs::write(&seg, bytes).unwrap();

        let (store, report) = Store::open(config(&dir)).unwrap();
        assert_eq!(report.truncated_segments, 1);
        assert_eq!(store.get("key").unwrap(), Some(payload(1)));
    }

    #[test]
    fn foreign_revision_store_is_refused_and_restarted_cold() {
        let dir = fresh_dir("revision");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        for i in 0..5 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        store.persist_index().unwrap();
        drop(store);

        let mut other = StoreConfig::new(&dir);
        other.revision = Some("rev-b".into());
        let (store, report) = Store::open(other).unwrap();
        assert!(report.revision_mismatch);
        assert_eq!(report.refused, 5);
        assert_eq!(report.records, 0);
        assert!(store.is_empty());
        assert_eq!(store.get("key-0").unwrap(), None);
        drop(store);

        // The directory now belongs to rev-b; reopening as rev-b is warm.
        let mut again = StoreConfig::new(&dir);
        again.revision = Some("rev-b".into());
        let (_, report) = Store::open(again).unwrap();
        assert!(!report.revision_mismatch);
    }

    #[test]
    fn unknown_revisions_are_accepted_in_both_directions() {
        let dir = fresh_dir("unknown-rev");
        let mut headerless = StoreConfig::new(&dir);
        headerless.revision = None;
        let (mut store, _) = Store::open(headerless).unwrap();
        store.put("key", &payload(0)).unwrap();
        store.persist_index().unwrap();
        drop(store);

        // Known current revision against a null-revision store: accept.
        let (store, report) = Store::open(config(&dir)).unwrap();
        assert!(!report.revision_mismatch);
        assert_eq!(report.records, 1);
        assert_eq!(store.get("key").unwrap(), Some(payload(0)));
    }

    #[test]
    fn superseded_records_become_dead_bytes_and_compact_away() {
        let dir = fresh_dir("compact");
        let mut cfg = config(&dir);
        cfg.compact_trigger_bytes = 1; // any dead byte triggers maintain
        let (mut store, _) = Store::open(cfg).unwrap();
        for i in 0..8 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        assert_eq!(store.dead_bytes(), 0);
        assert!(store.maintain().unwrap().is_none(), "nothing dead yet");

        let outcome = store.put("key-3", &payload(100)).unwrap();
        assert!(outcome.superseded);
        assert!(store.dead_bytes() > 0);
        let before = store.on_disk_bytes();

        let report = store.maintain().unwrap().expect("trigger crossed");
        assert_eq!(report.live_records, 8);
        assert!(report.reclaimed_bytes > 0);
        assert_eq!(store.dead_bytes(), 0);
        assert!(store.on_disk_bytes() < before);
        assert_eq!(store.stats().compactions, 1);

        // Every record still reads back, including the superseder.
        assert_eq!(store.get("key-3").unwrap(), Some(payload(100)));
        for i in [0usize, 1, 2, 4, 5, 6, 7] {
            assert_eq!(store.get(&format!("key-{i}")).unwrap(), Some(payload(i)));
        }

        // And the compacted layout reopens cleanly without an index.
        store.persist_index().unwrap();
        drop(store);
        let (store, report) = Store::open(config(&dir)).unwrap();
        assert_eq!(report.records, 8);
        assert_eq!(store.get("key-3").unwrap(), Some(payload(100)));
    }

    #[test]
    fn segments_roll_at_the_configured_size() {
        let dir = fresh_dir("roll");
        let mut cfg = config(&dir);
        cfg.segment_roll_bytes = 256;
        let (mut store, _) = Store::open(cfg).unwrap();
        for i in 0..30 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        let stats = store.stats();
        assert!(stats.segments > 1, "{stats:?}");
        assert_eq!(stats.records, 30);
        for i in 0..30 {
            assert_eq!(store.get(&format!("key-{i}")).unwrap(), Some(payload(i)));
        }
    }

    #[test]
    fn put_if_absent_skips_indexed_keys() {
        let dir = fresh_dir("if-absent");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        assert!(store.put_if_absent("key", &payload(0)).unwrap());
        assert!(!store.put_if_absent("key", &payload(0)).unwrap());
        assert_eq!(store.dead_bytes(), 0, "no superseding write happened");
    }

    #[test]
    fn compression_accounting_shows_the_size_header_win() {
        let dir = fresh_dir("ratio");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        let repetitive = r#"{"rounds":1,"moves":2,"idle":3,"stalled":4}"#.repeat(40);
        store.put("key", &repetitive).unwrap();
        let stats = store.stats();
        assert!(stats.raw_payload_bytes >= repetitive.len() as u64);
        assert!(
            stats.compression_ratio() > 2.0,
            "repetitive JSON should at least halve: {stats:?}"
        );
    }

    #[test]
    fn stale_index_covering_more_than_the_file_is_rebuilt() {
        let dir = fresh_dir("stale-index");
        let (mut store, _) = Store::open(config(&dir)).unwrap();
        for i in 0..6 {
            store.put(&format!("key-{i}"), &payload(i)).unwrap();
        }
        store.persist_index().unwrap();
        drop(store);
        // Shrink the segment behind the index's back.
        let seg = segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap();

        let (store, report) = Store::open(config(&dir)).unwrap();
        assert!(report.index_rebuilt, "stale index must not be trusted");
        assert!(report.records < 6);
        for i in 0..report.records {
            assert_eq!(store.get(&format!("key-{i}")).unwrap(), Some(payload(i)));
        }
    }
}
