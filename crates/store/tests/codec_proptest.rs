//! Property tests for the store's codec and for the store itself:
//! compression round-trips on arbitrary bytes, frames round-trip on
//! arbitrary records, corrupt input never panics, and a store built
//! from random operations always reads back what was last written.

use bfdn_store::codec::{compress, decompress, encode_record, scan_frame};
use bfdn_store::{Store, StoreConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn compress_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let packed = compress(&data);
        let unpacked = decompress(&packed, data.len());
        prop_assert_eq!(unpacked.as_deref(), Ok(data.as_slice()));
    }

    #[test]
    fn compress_round_trips_repetitive_bytes(
        unit in prop::collection::vec(any::<u8>(), 1..24),
        repeats in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * repeats).copied().collect();
        let packed = compress(&data);
        let unpacked = decompress(&packed, data.len());
        prop_assert_eq!(unpacked.as_deref(), Ok(data.as_slice()));
    }

    #[test]
    fn frames_round_trip_arbitrary_records(
        key_bytes in prop::collection::vec(0u8..128, 1..64),
        payload_bytes in prop::collection::vec(0u8..128, 0..1024),
    ) {
        // ASCII-restricted so both sides are valid UTF-8, like the
        // canonical spec keys and payload JSON the service stores.
        let key: String = key_bytes.iter().map(|&b| char::from(b)).collect();
        let payload: String = payload_bytes.iter().map(|&b| char::from(b)).collect();
        let frame = encode_record(&key, &payload);
        let (record, len) = scan_frame(&frame, 0).expect("intact frame").expect("one frame");
        prop_assert_eq!(len, frame.len());
        prop_assert_eq!(record.key, key);
        prop_assert_eq!(record.payload, payload);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking(
        payload_bytes in prop::collection::vec(0u8..128, 0..512),
        cut_fraction in 0u32..1000,
    ) {
        let payload: String = payload_bytes.iter().map(|&b| char::from(b)).collect();
        let frame = encode_record("spec-key", &payload);
        let cut = (frame.len() as u64 * u64::from(cut_fraction) / 1000) as usize;
        prop_assume!(cut < frame.len());
        let result = scan_frame(&frame[..cut], 0);
        if cut == 0 {
            prop_assert!(matches!(result, Ok(None)));
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn decompress_never_panics_on_arbitrary_input(
        data in prop::collection::vec(any::<u8>(), 0..512),
        claimed_len in 0usize..2048,
    ) {
        // Whatever it returns, returning is the property.
        let _ = decompress(&data, claimed_len);
    }

    #[test]
    fn store_reads_back_the_last_write_per_key(
        ops in prop::collection::vec((0u8..12, prop::collection::vec(97u8..123, 0..64)), 1..60),
        case_tag in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "bfdn-store-prop-{}-{case_tag:016x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = StoreConfig::new(&dir);
        config.segment_roll_bytes = 128; // force frequent rolls
        config.revision = Some("prop".into());
        let (mut store, _) = Store::open(config.clone()).expect("open");

        let mut model = std::collections::HashMap::new();
        for (key_id, payload_bytes) in &ops {
            let key = format!("key-{key_id}");
            let payload: String = payload_bytes.iter().map(|&b| char::from(b)).collect();
            store.put(&key, &payload).expect("put");
            model.insert(key, payload);
        }
        for (key, payload) in &model {
            let read = store.get(key).expect("get");
            prop_assert_eq!(read.as_deref(), Some(payload.as_str()));
        }

        // Compaction and a cold reopen both preserve the model.
        store.compact().expect("compact");
        store.persist_index().expect("persist");
        drop(store);
        let (reopened, report) = Store::open(config).expect("reopen");
        prop_assert_eq!(report.records, model.len());
        for (key, payload) in &model {
            let read = reopened.get(key).expect("get");
            prop_assert_eq!(read.as_deref(), Some(payload.as_str()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
