//! The partially explored tree (fog-of-war view) of Section 2.
//!
//! During online exploration, `V` is the set of *explored* nodes (occupied
//! by at least one robot in the past) and `E` the set of *discovered*
//! edges (at least one explored endpoint). Discovered edges with exactly
//! one explored endpoint are *dangling*. [`PartialTree`] maintains exactly
//! this information: an explorer that only reads a `PartialTree` provably
//! never sees beyond what the paper's model reveals.

use crate::{NodeId, Port};
use std::collections::BTreeSet;

/// Everything known about one explored node.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KnownNode {
    parent: Option<NodeId>,
    /// The port *at the parent* through which this node was discovered.
    parent_port: Option<Port>,
    depth: u32,
    degree: usize,
    /// Per down-port: `Some(child)` once that edge has been traversed,
    /// `None` while it is dangling. Index `i` corresponds to port `i + 1`
    /// at non-root nodes and port `i` at the root.
    down: Vec<Option<NodeId>>,
    dangling: usize,
    /// Index into `down` of the first dangling slot (== `down.len()` when
    /// none) — keeps repeated first-dangling queries amortized O(1).
    first_dangling: usize,
}

impl KnownNode {
    /// Parent of this node in the discovered tree (`None` for the root).
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Depth of this node.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Total number of ports (degree in the underlying tree — visible on
    /// arrival per the model of Section 2).
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of dangling edges still adjacent to this node.
    #[inline]
    pub fn dangling(&self) -> usize {
        self.dangling
    }

    #[inline]
    fn down_offset(&self) -> usize {
        usize::from(self.parent.is_some())
    }
}

/// The partially explored tree `T_online = (V, E)`.
///
/// Maintained by the simulator; read by explorers. All queries are indexed
/// by the ground-truth [`NodeId`]s, but information about a node is only
/// available once the node has been explored.
///
/// # Example
///
/// ```
/// use bfdn_trees::{NodeId, PartialTree, Port};
///
/// // The simulator reveals the root with 2 adjacent (dangling) edges.
/// let mut pt = PartialTree::new(10, 2);
/// assert_eq!(pt.total_dangling(), 2);
///
/// // A robot traverses the dangling edge at port 0 and discovers a leaf.
/// pt.attach(NodeId::ROOT, Port::new(0), NodeId::new(1), 1);
/// assert_eq!(pt.total_dangling(), 1);
/// assert!(pt.is_complete() == false);
/// ```
#[derive(Clone, Debug)]
pub struct PartialTree {
    nodes: Vec<Option<KnownNode>>,
    explored: Vec<NodeId>,
    total_dangling: usize,
    /// Open nodes (≥ 1 dangling edge) indexed by depth; sets keep
    /// iteration deterministic.
    open_by_depth: Vec<BTreeSet<NodeId>>,
    /// Cached lower bound on the minimum open depth. The true minimum
    /// never decreases over a run (new open nodes appear strictly below
    /// their parent), so a forward-advancing cursor makes
    /// [`PartialTree::min_open_depth`] amortized O(1).
    min_open_cursor: usize,
}

impl PartialTree {
    /// Starts an exploration: only the root is explored, with
    /// `root_degree` dangling edges. `capacity` is the number of nodes of
    /// the underlying tree (used only to size the arena; it carries no
    /// information an online algorithm could exploit, and explorers in
    /// this workspace never read it).
    pub fn new(capacity: usize, root_degree: usize) -> Self {
        let mut nodes = vec![None; capacity.max(1)];
        nodes[0] = Some(KnownNode {
            parent: None,
            parent_port: None,
            depth: 0,
            degree: root_degree,
            down: vec![None; root_degree],
            dangling: root_degree,
            first_dangling: 0,
        });
        let mut open_by_depth = vec![BTreeSet::new()];
        if root_degree > 0 {
            open_by_depth[0].insert(NodeId::ROOT);
        }
        PartialTree {
            nodes,
            explored: vec![NodeId::ROOT],
            total_dangling: root_degree,
            open_by_depth,
            min_open_cursor: 0,
        }
    }

    /// Records the traversal of the dangling edge at `(u, port)` leading
    /// to the newly explored node `child` of degree `child_degree`.
    ///
    /// Calling this for an edge that is already explored is a no-op (two
    /// robots may cross the same dangling edge in the same round under
    /// non-BFDN explorers).
    ///
    /// # Panics
    ///
    /// Panics if `u` is unexplored, `port` is not a downward port of `u`,
    /// or `child` is already explored via a different edge.
    pub fn attach(&mut self, u: NodeId, port: Port, child: NodeId, child_degree: usize) {
        let (u_depth, off) = {
            let ku = self.nodes[u.index()]
                .as_ref()
                .expect("attach below an unexplored node");
            (ku.depth, ku.down_offset())
        };
        let slot = port
            .index()
            .checked_sub(off)
            .expect("attach through the parent port");
        let ku = self.nodes[u.index()].as_mut().expect("checked above");
        match ku.down.get(slot) {
            Some(None) => {}
            Some(Some(existing)) => {
                assert_eq!(*existing, child, "port already leads to a different node");
                return;
            }
            None => panic!("port {port} out of range at node {u}"),
        }
        ku.down[slot] = Some(child);
        ku.dangling -= 1;
        while ku.first_dangling < ku.down.len() && ku.down[ku.first_dangling].is_some() {
            ku.first_dangling += 1;
        }
        let now_closed = ku.dangling == 0;
        self.total_dangling -= 1;
        if now_closed {
            self.open_by_depth[u_depth as usize].remove(&u);
        }

        assert!(
            self.nodes[child.index()].is_none(),
            "node {child} explored twice"
        );
        let child_depth = u_depth + 1;
        // All of child's ports except the parent port are dangling.
        let child_dangling = child_degree - 1;
        self.nodes[child.index()] = Some(KnownNode {
            parent: Some(u),
            parent_port: Some(port),
            depth: child_depth,
            degree: child_degree,
            down: vec![None; child_dangling],
            dangling: child_dangling,
            first_dangling: 0,
        });
        self.explored.push(child);
        self.total_dangling += child_dangling;
        let d = child_depth as usize;
        if self.open_by_depth.len() <= d {
            self.open_by_depth.resize_with(d + 1, BTreeSet::new);
        }
        if child_dangling > 0 {
            self.open_by_depth[d].insert(child);
        }
        // Keep the min-open cursor exact (see `min_open_depth`).
        while self.min_open_cursor < self.open_by_depth.len()
            && self.open_by_depth[self.min_open_cursor].is_empty()
        {
            self.min_open_cursor += 1;
        }
    }

    /// Everything known about node `v`, or `None` while unexplored.
    #[inline]
    pub fn known(&self, v: NodeId) -> Option<&KnownNode> {
        self.nodes.get(v.index()).and_then(|n| n.as_ref())
    }

    /// Returns `true` once `v` has been explored.
    #[inline]
    pub fn is_explored(&self, v: NodeId) -> bool {
        self.known(v).is_some()
    }

    /// Parent of an explored node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.expect_known(v).parent
    }

    /// Depth of an explored node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    #[inline]
    pub fn depth(&self, v: NodeId) -> usize {
        self.expect_known(v).depth()
    }

    /// The port *at the parent* through which `v` was discovered (`None`
    /// for the root).
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    #[inline]
    pub fn parent_port(&self, v: NodeId) -> Option<Port> {
        self.expect_known(v).parent_port
    }

    /// Degree of an explored node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.expect_known(v).degree
    }

    fn expect_known(&self, v: NodeId) -> &KnownNode {
        self.known(v)
            .unwrap_or_else(|| panic!("node {v} unexplored"))
    }

    /// The node behind down-port `port` of `v`: `Some(child)` if that edge
    /// has been traversed, `None` if it is dangling.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored or `port` is the parent port / out of
    /// range.
    pub fn child_at(&self, v: NodeId, port: Port) -> Option<NodeId> {
        let k = self.expect_known(v);
        let slot = port
            .index()
            .checked_sub(k.down_offset())
            .expect("parent port is not a down port");
        k.down[slot]
    }

    /// Iterates over the dangling ports of `v` in increasing port order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    pub fn dangling_ports(&self, v: NodeId) -> impl Iterator<Item = Port> + '_ {
        let k = self.expect_known(v);
        let off = k.down_offset();
        // Slots before `first_dangling` are all traversed; skip them.
        k.down[k.first_dangling..]
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(move |(i, _)| Port::new(i + k.first_dangling + off))
    }

    /// Iterates over the traversed downward edges of `v` as
    /// `(port, child)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    pub fn known_children(&self, v: NodeId) -> impl Iterator<Item = (Port, NodeId)> + '_ {
        let k = self.expect_known(v);
        let off = k.down_offset();
        k.down
            .iter()
            .enumerate()
            .filter_map(move |(i, c)| c.map(|c| (Port::new(i + off), c)))
    }

    /// Returns `true` if `v` is explored and still has a dangling edge
    /// ("open" in the terminology of Section 5).
    #[inline]
    pub fn is_open(&self, v: NodeId) -> bool {
        self.known(v).is_some_and(|k| k.dangling > 0)
    }

    /// Total number of dangling edges; exploration of the tree part is
    /// complete when this is zero.
    #[inline]
    pub fn total_dangling(&self) -> usize {
        self.total_dangling
    }

    /// Returns `true` when there are no dangling edges left.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.total_dangling == 0
    }

    /// Size of the node arena (the `capacity` passed to
    /// [`PartialTree::new`]). Every [`NodeId`] this tree will ever reveal
    /// is a dense index below this bound, so explorers can keep per-node
    /// state in flat arrays sized once instead of hash tables.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Number of explored nodes.
    #[inline]
    pub fn num_explored(&self) -> usize {
        self.explored.len()
    }

    /// Explored nodes in order of first exploration.
    #[inline]
    pub fn explored_nodes(&self) -> &[NodeId] {
        &self.explored
    }

    /// The minimum depth at which an open node exists.
    ///
    /// O(1): the minimum open depth never decreases over a run (new open
    /// nodes appear strictly below their parent), so [`PartialTree::attach`]
    /// keeps a cursor pointing at the first non-empty depth.
    pub fn min_open_depth(&self) -> Option<usize> {
        (self.min_open_cursor < self.open_by_depth.len()
            && !self.open_by_depth[self.min_open_cursor].is_empty())
        .then_some(self.min_open_cursor)
    }

    /// All open nodes as `(depth, node)` pairs in (depth, id) order —
    /// the snapshot `BFDN_ℓ` hands to its recursive instances.
    pub fn open_nodes_snapshot(&self) -> Vec<(usize, NodeId)> {
        self.open_by_depth
            .iter()
            .enumerate()
            .flat_map(|(d, set)| set.iter().map(move |&v| (d, v)))
            .collect()
    }

    /// Open nodes at a given depth, in increasing node-id order.
    pub fn open_nodes_at_depth(&self, depth: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.open_by_depth
            .get(depth)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// The open nodes of minimum depth — the candidate anchor set `U` of
    /// Algorithm 1, line 26 — with their shared depth.
    pub fn min_depth_open_nodes(&self) -> Option<(usize, Vec<NodeId>)> {
        let d = self.min_open_depth()?;
        Some((d, self.open_nodes_at_depth(d).collect()))
    }

    /// Open nodes at depth at most `max_depth` whose depth is minimal —
    /// the modified candidate set used by `BFDN₁(k, k, d)` in Section 5.
    pub fn min_depth_open_nodes_capped(&self, max_depth: usize) -> Option<(usize, Vec<NodeId>)> {
        let d = self.min_open_depth()?;
        if d > max_depth {
            return None;
        }
        Some((d, self.open_nodes_at_depth(d).collect()))
    }

    /// Walks up from `v` to the root in the discovered tree.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The sequence of edges (as `(node, port)` hops) leading from the
    /// root down to `v` through explored edges — what `BFDN` stacks into
    /// `S_i` on reanchoring.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unexplored.
    pub fn route_from_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = self.path_to_root(v);
        path.reverse();
        path
    }

    /// `true` if `anc` is an ancestor of `v` (or equal) in the discovered
    /// tree.
    ///
    /// # Panics
    ///
    /// Panics if either node is unexplored.
    pub fn is_ancestor(&self, anc: NodeId, v: NodeId) -> bool {
        let target = self.depth(anc);
        let mut cur = v;
        while self.depth(cur) > target {
            cur = self.parent(cur).expect("depth > 0 has a parent");
        }
        cur == anc
    }

    /// Checks internal invariants (counters vs. recomputed values); used
    /// in tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut dangling = 0usize;
        for v in &self.explored {
            let k = self
                .known(*v)
                .ok_or_else(|| format!("{v} listed explored but unknown"))?;
            let listed = k.down.iter().filter(|c| c.is_none()).count();
            if listed != k.dangling {
                return Err(format!("{v}: dangling counter mismatch"));
            }
            dangling += listed;
            let open = self
                .open_by_depth
                .get(k.depth())
                .is_some_and(|s| s.contains(v));
            if open != (k.dangling > 0) {
                return Err(format!("{v}: open-set membership mismatch"));
            }
        }
        if dangling != self.total_dangling {
            return Err("total dangling mismatch".into());
        }
        // The cached minimum-open-depth cursor must agree with a full
        // recomputation.
        let recomputed = self.open_by_depth.iter().position(|s| !s.is_empty());
        if self.min_open_depth() != recomputed {
            return Err(format!(
                "min-open cursor {:?} disagrees with recomputed {recomputed:?}",
                self.min_open_depth()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reveal a small tree by hand:
    /// root(2 ports) -> a(3 ports), b(1 port).
    fn two_level() -> PartialTree {
        let mut pt = PartialTree::new(8, 2);
        pt.attach(NodeId::ROOT, Port::new(0), NodeId::new(1), 3);
        pt.attach(NodeId::ROOT, Port::new(1), NodeId::new(2), 1);
        pt
    }

    #[test]
    fn initial_state() {
        let pt = PartialTree::new(4, 3);
        assert_eq!(pt.num_explored(), 1);
        assert_eq!(pt.total_dangling(), 3);
        assert_eq!(pt.min_open_depth(), Some(0));
        assert!(pt.is_open(NodeId::ROOT));
        assert!(pt.validate().is_ok());
    }

    #[test]
    fn attach_updates_counts() {
        let pt = two_level();
        // a has 2 dangling, b has 0.
        assert_eq!(pt.total_dangling(), 2);
        assert_eq!(pt.depth(NodeId::new(1)), 1);
        assert_eq!(pt.parent(NodeId::new(1)), Some(NodeId::ROOT));
        assert!(!pt.is_open(NodeId::ROOT));
        assert!(pt.is_open(NodeId::new(1)));
        assert!(!pt.is_open(NodeId::new(2)));
        assert_eq!(pt.min_open_depth(), Some(1));
        assert!(pt.validate().is_ok());
    }

    #[test]
    fn dangling_ports_listing() {
        let pt = two_level();
        let a = NodeId::new(1);
        let ports: Vec<_> = pt.dangling_ports(a).collect();
        // a is non-root: down ports are 1 and 2.
        assert_eq!(ports, vec![Port::new(1), Port::new(2)]);
        assert_eq!(pt.child_at(a, Port::new(1)), None);
    }

    #[test]
    fn completion() {
        let mut pt = two_level();
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(3), 1);
        pt.attach(NodeId::new(1), Port::new(2), NodeId::new(4), 1);
        assert!(pt.is_complete());
        assert_eq!(pt.min_open_depth(), None);
        assert_eq!(pt.num_explored(), 5);
        assert!(pt.validate().is_ok());
    }

    #[test]
    fn duplicate_attach_is_noop() {
        let mut pt = two_level();
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(3), 1);
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(3), 1);
        assert_eq!(pt.num_explored(), 4);
    }

    #[test]
    #[should_panic(expected = "different node")]
    fn conflicting_attach_panics() {
        let mut pt = two_level();
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(3), 1);
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(4), 1);
    }

    #[test]
    fn min_depth_open_nodes_is_candidate_set() {
        let pt = two_level();
        let (d, set) = pt.min_depth_open_nodes().unwrap();
        assert_eq!(d, 1);
        assert_eq!(set, vec![NodeId::new(1)]);
    }

    #[test]
    fn capped_candidates() {
        let pt = two_level();
        assert!(pt.min_depth_open_nodes_capped(0).is_none());
        assert!(pt.min_depth_open_nodes_capped(1).is_some());
    }

    #[test]
    fn ancestor_and_paths() {
        let mut pt = two_level();
        pt.attach(NodeId::new(1), Port::new(1), NodeId::new(3), 2);
        assert!(pt.is_ancestor(NodeId::ROOT, NodeId::new(3)));
        assert!(pt.is_ancestor(NodeId::new(1), NodeId::new(3)));
        assert!(!pt.is_ancestor(NodeId::new(2), NodeId::new(3)));
        assert_eq!(
            pt.route_from_root(NodeId::new(3)),
            vec![NodeId::ROOT, NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn known_children_lists_traversed_edges() {
        let mut pt = two_level();
        pt.attach(NodeId::new(1), Port::new(2), NodeId::new(3), 1);
        let kids: Vec<_> = pt.known_children(NodeId::new(1)).collect();
        assert_eq!(kids, vec![(Port::new(2), NodeId::new(3))]);
    }
}
