//! Adversarial families designed to separate BFDN from the CTE baseline
//! (experiment E6) and to exercise the deep-tree regime of `BFDN_ℓ`.
//!
//! Higashikawa et al. \[11\] show a tree with `n = kD` edges on which the
//! even-split CTE strategy needs `Θ(Dk/log₂ k)` rounds. Their adversarial
//! argument is adaptive; these families realize its two ingredients as
//! static trees — decoys that look identical to productive branches, and
//! work hidden far from where robots were sent — and the E6 harness
//! measures which produces the largest CTE/BFDN gap.

use crate::{Tree, TreeBuilder};

/// A spine with decoy paths: every `gap` spine levels the spine node forks
/// into `decoys` pendant paths, each as long as the remaining spine, plus
/// the true continuation. Online, decoys are indistinguishable from the
/// spine, so an even-split strategy keeps halving its force.
///
/// Depth is `depth`; size is `Θ(decoys · depth² / gap)`.
///
/// # Panics
///
/// Panics if `gap == 0`.
pub fn decoy_spine(depth: usize, gap: usize, decoys: usize) -> Tree {
    assert!(gap > 0, "gap must be positive");
    let mut b = TreeBuilder::new();
    let mut cur = b.root();
    let mut d = 0;
    while d < depth {
        if d % gap == 0 {
            let remaining = depth - d;
            for _ in 0..decoys {
                b.add_path(cur, remaining);
            }
        }
        cur = b.add_child(cur);
        d += 1;
    }
    b.build()
}

/// A star of paths with linearly ramped lengths: leg `i` (of `legs`) has
/// length `max(1, depth·(i+1)/legs)`. Paths serialize robots, so surplus
/// robots on short legs free up gradually and must relocate.
///
/// # Panics
///
/// Panics if `legs == 0`.
pub fn uneven_star(legs: usize, depth: usize) -> Tree {
    assert!(legs > 0, "need at least one leg");
    let mut b = TreeBuilder::new();
    let root = b.root();
    for i in 0..legs {
        let len = (depth * (i + 1) / legs).max(1);
        b.add_path(root, len);
    }
    b.build()
}

/// `dead_paths` dead-end paths of length `depth` from the root, plus one
/// more path of length `depth/2` ending in a bushy "pocket" of
/// `pocket_size` leaves. Robots committed to dead ends discover the real
/// work only after travelling `Θ(depth)`.
pub fn hidden_pocket(dead_paths: usize, depth: usize, pocket_size: usize) -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.root();
    for _ in 0..dead_paths {
        b.add_path(root, depth);
    }
    let hub = b.add_path(root, (depth / 2).max(1));
    for _ in 0..pocket_size {
        b.add_child(hub);
    }
    b.build()
}

/// A vine: a path of length `depth` where every internal node carries one
/// pendant leaf (`n = 2·depth + 1`). The minimal-work tree of maximal
/// depth with branching everywhere — a stress test for reanchoring.
pub fn lopsided_vine(depth: usize) -> Tree {
    let mut b = TreeBuilder::with_capacity(2 * depth + 1);
    let mut cur = b.root();
    for _ in 0..depth {
        b.add_child(cur);
        cur = b.add_child(cur);
    }
    b.build()
}

/// A spider whose `legs` equal-length legs each end in a "pocket" star of
/// hidden, geometrically varying size (`pocket_base·2^(i mod 8)` leaves on
/// leg `i`). All pocket hubs sit at the same depth, so they stay
/// minimum-depth anchor candidates together while holding wildly unequal
/// work — the workload that separates anchor-assignment rules (the
/// Theorem 3 game made into a tree).
///
/// # Panics
///
/// Panics if `legs == 0` or `leg_len == 0`.
pub fn spider_with_pockets(legs: usize, leg_len: usize, pocket_base: usize) -> Tree {
    assert!(legs > 0 && leg_len > 0, "need legs of positive length");
    let mut b = TreeBuilder::new();
    let root = b.root();
    for i in 0..legs {
        let hub = b.add_path(root, leg_len);
        let pocket = pocket_base.max(1) << (i % 8);
        for _ in 0..pocket {
            b.add_child(hub);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoy_spine_shape() {
        let t = decoy_spine(20, 5, 1);
        assert_eq!(t.depth(), 20);
        assert!(t.validate().is_ok());
        // Decoys at depths 0,5,10,15 of lengths 20,15,10,5 plus spine 20.
        assert_eq!(t.len(), 1 + 20 + 20 + 15 + 10 + 5);
    }

    #[test]
    fn decoy_spine_multiple_decoys() {
        let t = decoy_spine(10, 2, 3);
        assert_eq!(t.depth(), 10);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn uneven_star_shape() {
        let t = uneven_star(4, 8);
        assert_eq!(t.depth(), 8);
        // Legs of lengths 2, 4, 6, 8.
        assert_eq!(t.len(), 1 + 2 + 4 + 6 + 8);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn hidden_pocket_shape() {
        let t = hidden_pocket(3, 10, 50);
        assert_eq!(t.depth(), 10);
        assert_eq!(t.len(), 1 + 3 * 10 + 5 + 50);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn spider_with_pockets_shape() {
        let t = spider_with_pockets(4, 5, 2);
        assert_eq!(t.depth(), 6);
        // Legs: 4·5 edges; pockets: 2 + 4 + 8 + 16 leaves.
        assert_eq!(t.len(), 1 + 20 + 30);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn lopsided_vine_shape() {
        let t = lopsided_vine(7);
        assert_eq!(t.depth(), 7);
        assert_eq!(t.len(), 15);
        assert_eq!(t.max_degree(), 3);
        assert!(t.validate().is_ok());
    }
}
